//! Probe-isolating non-interference (PINI) — the paper's future-work
//! property, implemented and exercised on the canonical gadgets.
//!
//! ```text
//! cargo run --release --example pini
//! ```
//!
//! PINI (Cassiers–Standaert) makes composition *trivial*: PINI gadgets can
//! be wired share-index-to-share-index without refreshing. This example
//! shows that the HPC multipliers are PINI while ISW/DOM are not, and that
//! HPC2 stays PINI in the glitch-extended model thanks to its registers.

use walshcheck::prelude::*;
use walshcheck_gadgets::hpc::{hpc1_and, hpc2_and};
use walshcheck_gadgets::isw::isw_and;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<12} {:>10} {:>10} {:>16}",
        "gadget", "1-SNI", "1-PINI", "1-PINI (glitch)"
    );
    for (name, netlist) in [
        ("isw-1", isw_and(1)),
        ("dom-1", Benchmark::Dom(1).netlist()),
        ("hpc1-1", hpc1_and(1)),
        ("hpc2-1", hpc2_and(1)),
    ] {
        // One Session per gadget: the unfolding is shared by all three runs.
        let mut session = Session::new(&netlist)?.property(Property::Sni(1));
        let sni = session.run();
        session = session.property(Property::Pini(1));
        let pini = session.run();
        session = session.probe_model(ProbeModel::Glitch);
        let pini_glitch = session.run();
        println!(
            "{name:<12} {:>10} {:>10} {:>16}",
            sni.secure, pini.secure, pini_glitch.secure
        );
    }

    // The point of PINI: naive share-wise composition stays secure. Chain
    // two HPC2 multipliers without any refresh and check the result.
    use walshcheck_circuit::compose::{chain, Binding};
    use walshcheck_circuit::netlist::{OutputId, SecretId};
    let h = chain(
        &hpc2_and(1),
        &hpc2_and(1),
        &[Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        }],
    )?;
    let mut session = Session::new(&h)?.property(Property::Probing(1));
    let v = session.run();
    println!("\nhpc2 ∘ hpc2 (no refresh): {v}");
    let v = session.property(Property::Pini(1)).run();
    println!("hpc2 ∘ hpc2 (no refresh): {v}");
    Ok(())
}
