//! Generic threshold-implementation sharing of a custom S-box.
//!
//! ```text
//! cargo run --release --example sbox_ti
//! ```
//!
//! Demonstrates the full ANF pipeline: describe a quadratic function as
//! plain BDDs, extract its algebraic normal form (Möbius transform), derive
//! the 3-share direct TI automatically, and verify the TI theorem — the
//! result is first-order probing secure even under glitches, with zero
//! fresh randomness.

use walshcheck::prelude::*;
use walshcheck_dd::anf::anf_from_bdd;
use walshcheck_dd::bdd::BddManager;
use walshcheck_dd::VarId;
use walshcheck_gadgets::ti_general::{ti_share, ti_share_bdd, toffoli_spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom 3-bit quadratic S-box, described functionally.
    let mut m = BddManager::new(3);
    let x: Vec<_> = (0..3).map(|i| m.var(VarId(i))).collect();
    let x01 = m.and(x[0], x[1]);
    let y0 = m.xor(x[2], x01); // x2 ⊕ x0x1
    let x12 = m.and(x[1], x[2]);
    let t = m.xor(x[0], x12);
    let y1 = m.not(t); // 1 ⊕ x0 ⊕ x1x2
    let y2 = m.xor(x[1], x[2]); // linear

    println!("algebraic normal forms (Möbius transform of the BDDs):");
    for (name, f) in [("y0", y0), ("y1", y1), ("y2", y2)] {
        let anf = anf_from_bdd(&m, f);
        let mut mons: Vec<u128> = anf.monomials().collect();
        mons.sort();
        println!("  {name} = {:?}  (degree {})", mons, anf.degree());
    }

    // Derive the 3-share TI automatically.
    let netlist = ti_share_bdd("custom-sbox", &m, &[y0, y1, y2], 3)?;
    println!(
        "\ngenerated TI: {} cells, {} secrets × 3 shares, {} randoms",
        netlist.num_cells(),
        netlist.num_secrets(),
        netlist.randoms().len()
    );

    // The TI theorem, mechanically verified.
    for (label, options) in [
        ("standard", VerifyOptions::default()),
        (
            "glitch-extended",
            VerifyOptions::default().with_probe_model(ProbeModel::Glitch),
        ),
    ] {
        let v = Session::new(&netlist)?
            .options(options)
            .property(Property::Probing(1))
            .run();
        println!("  [{label}] {v}");
        assert!(v.secure);
    }

    // Degree-3 functions are rejected with a clear error.
    let xyz = m.and(x01, x[2]);
    match ti_share_bdd("cubic", &m, &[xyz], 3) {
        Err(e) => println!("\ncubic function correctly rejected: {e}"),
        Ok(_) => unreachable!("degree check must fire"),
    }

    // Library specs work too (Toffoli gate).
    let toffoli = ti_share(&toffoli_spec())?;
    let v = Session::new(&toffoli)?.property(Property::Probing(1)).run();
    println!("Toffoli TI — {v}");
    Ok(())
}
