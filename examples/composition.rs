//! The paper's composition example (Fig. 1 / Fig. 2).
//!
//! ```text
//! cargo run --release --example composition
//! ```
//!
//! Rebuilds `h = isw₂(refresh(a), a)` — an order-2 ISW multiplication whose
//! first operand went through a *non-SNI* refresh — prints the compact
//! correlation-matrix rows of the paper's probe pair, and lets the verifier
//! find the 2-NI violation ("one needs only two probed values to get three
//! shares"). The repaired composition (SNI refresh) is then proven 2-NI.

use walshcheck::prelude::*;
use walshcheck_core::mask::VarMap;
use walshcheck_dd::spectral::{walsh_sparse, SparseWalshCache};
use walshcheck_gadgets::composition::{composition_fig1, composition_fixed};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let h = composition_fig1();
    println!(
        "h = isw2(refresh(a), a): {} wires, {} cells",
        h.num_wires(),
        h.num_cells()
    );

    // --- Fig. 2 flavour: the correlation-matrix rows of the probe pair ---
    let unfolded = walshcheck::circuit::unfold(&h)?;
    let vm = VarMap::from_netlist(&h);
    let p_f = h
        .cells
        .iter()
        .find(|c| c.name == "p_f")
        .expect("probe present")
        .output;
    let p_g = h
        .cells
        .iter()
        .find(|c| c.name == "p_g")
        .expect("probe present")
        .output;
    let f1 = unfolded.wire_fn(p_f);
    let f2 = unfolded.wire_fn(p_g);
    let mut cache = SparseWalshCache::new();
    // The row of the pair (ω selecting both probes) is the convolution of
    // the base spectra — the paper's step (2).
    use walshcheck_core::spectrum::{MapSpectrum, Spectrum};
    let s1 = MapSpectrum::from_map(&walsh_sparse(&unfolded.bdds, f1, &mut cache));
    let s2 = MapSpectrum::from_map(&walsh_sparse(&unfolded.bdds, f2, &mut cache));
    let s12 = s1.convolve(&s2);

    println!("\ncompact correlation rows (ρ=0 coordinates only; α over shares of a):");
    for (label, spec) in [("p_f", &s1), ("p_g", &s2), ("p_f⊕p_g", &s12)] {
        let mut cells = Vec::new();
        spec.for_each(&mut |mask, c| {
            if vm.rho_is_zero(mask) {
                let shares: Vec<usize> = vm.share_part(mask).iter().collect();
                cells.push(format!("α={shares:?}: {c}"));
            }
        });
        cells.sort();
        println!(
            "  row {label:8}: {}",
            if cells.is_empty() {
                "all zero".into()
            } else {
                cells.join(", ")
            }
        );
    }

    // --- The exact verifier finds the witness ---
    let verdict = Session::new(&h)?.property(Property::Ni(2)).run();
    println!("\n{verdict}");
    let w = verdict.witness.expect("the composition is not 2-NI");
    let probes: Vec<&str> = w
        .combination
        .iter()
        .map(|p| h.wire_name(p.wire()))
        .collect();
    println!("  two probed values: {probes:?}");
    println!("  {}", w.reason);

    // --- Fig. 2's circled cell: the rows of the witness pair ---
    let w1 = MapSpectrum::from_map(&walsh_sparse(
        &unfolded.bdds,
        unfolded.wire_fn(w.combination[0].wire()),
        &mut cache,
    ));
    let w2 = MapSpectrum::from_map(&walsh_sparse(
        &unfolded.bdds,
        unfolded.wire_fn(w.combination[1].wire()),
        &mut cache,
    ));
    let w12 = w1.convolve(&w2);
    println!("\nwitness-pair correlation rows (ρ=0, α over shares of a):");
    for (label, spec) in [(probes[0], &w1), (probes[1], &w2), ("xor-row", &w12)] {
        let mut cells = Vec::new();
        spec.for_each(&mut |mask, c| {
            if vm.rho_is_zero(mask) {
                let shares: Vec<usize> = vm.share_part(mask).iter().collect();
                cells.push(format!("α={shares:?}: {c}"));
            }
        });
        cells.sort();
        println!(
            "  row {label:8}: {}",
            if cells.is_empty() {
                "all zero".into()
            } else {
                cells.join(", ")
            }
        );
    }

    // --- The repaired composition is 2-NI ---
    let fixed = composition_fixed();
    let verdict = Session::new(&fixed)?.property(Property::Ni(2)).run();
    println!("\nwith an SNI refresh instead — {verdict}");
    Ok(())
}
