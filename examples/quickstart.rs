//! Quickstart: verify a first-order DOM multiplier.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the DOM-1 AND gadget, proves it 1-SNI with the paper's MAPI
//! engine, shows that it is *not* second-order secure, and demonstrates a
//! broken gadget being caught with a concrete witness.

use walshcheck::prelude::*;
use walshcheck_gadgets::isw::isw_and_broken;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a benchmark gadget (or build your own with
    //    NetlistBuilder / parse one from ILANG text).
    let dom1 = Benchmark::Dom(1).netlist();
    println!(
        "dom-1: {} wires, {} cells, {} secrets, {} random bits",
        dom1.num_wires(),
        dom1.num_cells(),
        dom1.num_secrets(),
        dom1.randoms().len()
    );

    // 2. Check 1-SNI with the default engine (MAPI, joint mode). The
    //    Session owns the prepared verifier, so repeated runs on the same
    //    netlist reuse the symbolic unfolding.
    let mut session = Session::new(&dom1)?.property(Property::Sni(1));
    let verdict = session.run();
    println!("\n{verdict}");
    println!(
        "  {} combinations, {} convolutions, {:?} total ({:?} convolution, {:?} verification)",
        verdict.stats.combinations,
        verdict.stats.convolutions,
        verdict.stats.total_time,
        verdict.stats.convolution_time,
        verdict.stats.verification_time
    );

    // 3. A first-order gadget cannot resist two probes.
    let mut session = session.property(Property::Probing(2));
    let verdict = session.run();
    println!("\n{verdict}");
    if let Some(w) = &verdict.witness {
        let probes: Vec<&str> = w
            .combination
            .iter()
            .map(|p| dom1.wire_name(p.wire()))
            .collect();
        println!("  probed wires: {probes:?}");
    }

    // 4. Sabotaged masking is caught with an explanation.
    let broken = isw_and_broken(2);
    let verdict = Session::new(&broken)?.property(Property::Sni(2)).run();
    println!("\nbroken ISW-2 — {verdict}");
    if let Some(w) = &verdict.witness {
        let probes: Vec<&str> = w
            .combination
            .iter()
            .map(|p| broken.wire_name(p.wire()))
            .collect();
        println!("  probed wires: {probes:?}");
    }

    // 5. Engines are interchangeable; compare their timings.
    println!("\nengine comparison on dom-1 (1-SNI):");
    for engine in [
        EngineKind::Lil,
        EngineKind::Map,
        EngineKind::Mapi,
        EngineKind::Fujita,
    ] {
        let v = Session::new(&dom1)?
            .property(Property::Sni(1))
            .engine(engine)
            .run();
        println!(
            "  {engine:7}: secure={} in {:?}",
            v.secure, v.stats.total_time
        );
    }
    Ok(())
}
