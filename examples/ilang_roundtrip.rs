//! ILANG front-end round trip — the paper's Fig. 4/5 input path.
//!
//! ```text
//! cargo run --release --example ilang_roundtrip [path/to/module.il]
//! ```
//!
//! Without an argument, generates the Trichina gadget, dumps it in the
//! annotated ILANG dialect, re-parses the text and verifies the result —
//! showing the exact file format the tool consumes. With a path, reads and
//! verifies that file instead.

use walshcheck::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            println!("parsing {path} ...");
            parse_ilang(&text)?
        }
        None => {
            let gadget = Benchmark::Trichina1.netlist();
            let text = write_ilang(&gadget);
            println!(
                "--- generated ILANG ({} bytes) ---\n{text}--- end ---\n",
                text.len()
            );
            parse_ilang(&text)?
        }
    };

    println!(
        "module {}: {} secrets, {} random bits, {} shared outputs, {} cells",
        netlist.name,
        netlist.num_secrets(),
        netlist.randoms().len(),
        netlist.output_names.len(),
        netlist.num_cells()
    );

    // Verify at the order implied by the sharing (shares − 1 of the first
    // secret), in both the standard and the glitch-extended model.
    let shares = netlist.shares_of(walshcheck::circuit::SecretId(0)).len() as u32;
    let d = shares.saturating_sub(1).max(1);
    for (label, options) in [
        ("standard", VerifyOptions::default()),
        (
            "glitch-extended",
            VerifyOptions::default().with_probe_model(ProbeModel::Glitch),
        ),
    ] {
        let mut session = Session::new(&netlist)?.options(options);
        for property in [Property::Probing(d), Property::Ni(d), Property::Sni(d)] {
            session = session.property(property);
            let verdict = session.run();
            println!("  [{label}] {verdict}");
        }
    }
    Ok(())
}
