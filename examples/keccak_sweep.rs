//! Security-level sweep over the masked Keccak χ row — the paper's heaviest
//! benchmark family.
//!
//! ```text
//! cargo run --release --example keccak_sweep [max_order] [engine]
//! ```
//!
//! Verifies `keccak-d` for `d = 1..=max_order` (default 2; the paper goes to
//! 3) and prints the timing split the paper reports in Fig. 6. Engines:
//! `lil`, `map`, `mapi` (default), `fujita`.

use walshcheck::prelude::*;
use walshcheck_gadgets::keccak::keccak_chi;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let max_order: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let engine = match args.next().as_deref() {
        Some("lil") => EngineKind::Lil,
        Some("map") => EngineKind::Map,
        Some("fujita") => EngineKind::Fujita,
        _ => EngineKind::Mapi,
    };

    println!("engine: {engine}\n");
    println!(
        "{:<10} {:>7} {:>8} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "gadget", "inputs", "wires", "combos", "total", "convolution", "verification", "SNI?"
    );
    for d in 1..=max_order {
        let netlist = keccak_chi(d);
        let mut session = Session::new(&netlist)?
            .engine(engine)
            .property(Property::Sni(d));
        let verdict = session.run();
        println!(
            "{:<10} {:>7} {:>8} {:>10} {:>12.4?} {:>12.4?} {:>12.4?} {:>8}",
            format!("keccak-{d}"),
            netlist.inputs.len(),
            netlist.num_wires(),
            verdict.stats.combinations,
            verdict.stats.total_time,
            verdict.stats.convolution_time,
            verdict.stats.verification_time,
            verdict.secure
        );
        // The χ gadget must also remain d-probing secure.
        let verdict = session.property(Property::Probing(d)).run();
        assert!(verdict.secure, "keccak-{d} must be {d}-probing secure");
    }
    println!("\n(each gadget also re-checked d-probing secure)");
    Ok(())
}
