//! The named benchmark suite of the paper's evaluation.
//!
//! Tables I–III and Figures 6–7 of the paper run over ten gadgets from the
//! maskVerif repository. [`Benchmark`] enumerates them with their protection
//! order, and yields the generated netlist (see the crate-level docs for the
//! substitution rationale: the gadgets are rebuilt from their published
//! definitions instead of shipping the original Yosys dumps).

use walshcheck_circuit::netlist::Netlist;

use crate::{chi3, composition, dom, hpc, isw, keccak, refresh, ti, trichina};

/// One benchmark of the paper's evaluation (Table I, column "gadget").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// 3-share threshold-implementation AND (first order).
    Ti1,
    /// Trichina masked AND (first order).
    Trichina1,
    /// ISW multiplication at order 1.
    Isw1,
    /// DOM-indep AND at the given order (1–4 in the paper).
    Dom(u32),
    /// DOM-masked Keccak χ row at the given order (1–3 in the paper).
    Keccak(u32),
    /// HPC1 PINI multiplier at the given order (extension).
    Hpc1(u32),
    /// HPC2 PINI multiplier at the given order (extension).
    Hpc2(u32),
    /// 3-share TI of the 3-bit χ map (extension).
    Chi3Ti,
    /// ISW refresh gadget at the given order (extension).
    RefreshIsw(u32),
    /// The paper's Fig. 1 composition `isw₂(refresh(a), a)` (extension;
    /// intentionally **not** 2-NI).
    Fig1,
}

impl Benchmark {
    /// All ten benchmarks, in the row order of the paper's Table I.
    pub fn all() -> Vec<Benchmark> {
        vec![
            Benchmark::Ti1,
            Benchmark::Trichina1,
            Benchmark::Isw1,
            Benchmark::Dom(1),
            Benchmark::Keccak(1),
            Benchmark::Dom(2),
            Benchmark::Keccak(2),
            Benchmark::Dom(3),
            Benchmark::Keccak(3),
            Benchmark::Dom(4),
        ]
    }

    /// The benchmark subset that is fast enough for routine CI-style runs
    /// (everything up to second order).
    pub fn fast() -> Vec<Benchmark> {
        vec![
            Benchmark::Ti1,
            Benchmark::Trichina1,
            Benchmark::Isw1,
            Benchmark::Dom(1),
            Benchmark::Keccak(1),
            Benchmark::Dom(2),
        ]
    }

    /// Extension gadgets beyond the paper's table (HPC, TI χ3, refresh,
    /// the Fig. 1 composition), available to the CLI and harness.
    pub fn extensions() -> Vec<Benchmark> {
        vec![
            Benchmark::Hpc1(1),
            Benchmark::Hpc1(2),
            Benchmark::Hpc2(1),
            Benchmark::Hpc2(2),
            Benchmark::Chi3Ti,
            Benchmark::RefreshIsw(1),
            Benchmark::RefreshIsw(2),
            Benchmark::Fig1,
        ]
    }

    /// The gadget name as printed in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Benchmark::Ti1 => "ti-1".into(),
            Benchmark::Trichina1 => "trichina-1".into(),
            Benchmark::Isw1 => "isw-1".into(),
            Benchmark::Dom(d) => format!("dom-{d}"),
            Benchmark::Keccak(d) => format!("keccak-{d}"),
            Benchmark::Hpc1(d) => format!("hpc1-{d}"),
            Benchmark::Hpc2(d) => format!("hpc2-{d}"),
            Benchmark::Chi3Ti => "chi3-ti".into(),
            Benchmark::RefreshIsw(d) => format!("refresh-isw-{d}"),
            Benchmark::Fig1 => "fig1".into(),
        }
    }

    /// The security level (probing order `d`) the gadget targets; this is
    /// the `d` used for the `d`-SNI/`d`-probing checks in the evaluation.
    pub fn security_order(&self) -> u32 {
        match self {
            Benchmark::Ti1 | Benchmark::Trichina1 | Benchmark::Isw1 | Benchmark::Chi3Ti => 1,
            Benchmark::Dom(d)
            | Benchmark::Keccak(d)
            | Benchmark::Hpc1(d)
            | Benchmark::Hpc2(d)
            | Benchmark::RefreshIsw(d) => *d,
            Benchmark::Fig1 => 2,
        }
    }

    /// Generates the benchmark netlist.
    pub fn netlist(&self) -> Netlist {
        match self {
            Benchmark::Ti1 => ti::ti_and(),
            Benchmark::Trichina1 => trichina::trichina_and(),
            Benchmark::Isw1 => isw::isw_and(1),
            Benchmark::Dom(d) => dom::dom_and(*d),
            Benchmark::Keccak(d) => keccak::keccak_chi(*d),
            Benchmark::Hpc1(d) => hpc::hpc1_and(*d),
            Benchmark::Hpc2(d) => hpc::hpc2_and(*d),
            Benchmark::Chi3Ti => chi3::chi3_ti(),
            Benchmark::RefreshIsw(d) => refresh::refresh_isw(*d),
            Benchmark::Fig1 => composition::composition_fig1(),
        }
    }

    /// Looks a benchmark up by its table name (e.g. `"dom-3"`).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        match name {
            "ti-1" => Some(Benchmark::Ti1),
            "trichina-1" => Some(Benchmark::Trichina1),
            "isw-1" => Some(Benchmark::Isw1),
            "chi3-ti" => Some(Benchmark::Chi3Ti),
            "fig1" => Some(Benchmark::Fig1),
            _ => {
                let (family, d) = name.rsplit_once('-')?;
                let d: u32 = d.parse().ok()?;
                if !(1..=31).contains(&d) {
                    return None;
                }
                match family {
                    "dom" => Some(Benchmark::Dom(d)),
                    "keccak" => Some(Benchmark::Keccak(d)),
                    "hpc1" => Some(Benchmark::Hpc1(d)),
                    "hpc2" => Some(Benchmark::Hpc2(d)),
                    "refresh-isw" => Some(Benchmark::RefreshIsw(d)),
                    _ => None,
                }
            }
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_benchmarks_in_paper_order() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].name(), "ti-1");
        assert_eq!(all[9].name(), "dom-4");
    }

    #[test]
    fn extensions_generate_and_round_trip() {
        for b in Benchmark::extensions() {
            assert_eq!(Benchmark::from_name(&b.name()), Some(b));
            let n = b.netlist();
            assert!(n.validate().is_ok(), "{b}");
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::from_name(&b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nonesuch"), None);
        assert_eq!(Benchmark::from_name("dom-0"), None);
    }

    #[test]
    fn netlists_generate_and_validate() {
        for b in Benchmark::fast() {
            let n = b.netlist();
            assert!(n.validate().is_ok(), "{b} invalid");
            assert!(n.num_cells() > 0);
        }
    }

    #[test]
    fn security_orders_match_names() {
        assert_eq!(Benchmark::Dom(4).security_order(), 4);
        assert_eq!(Benchmark::Keccak(3).security_order(), 3);
        assert_eq!(Benchmark::Ti1.security_order(), 1);
    }
}
