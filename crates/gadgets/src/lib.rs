//! # walshcheck-gadgets — masked gadget benchmark generators
//!
//! From-scratch generators for the benchmark gadgets of the paper's
//! evaluation (originally taken from the maskVerif repository as Yosys
//! dumps):
//!
//! * [`isw`] — Ishai–Sahai–Wagner multiplication (any order) and a sabotaged
//!   variant for negative tests;
//! * [`dom`] — Domain-Oriented Masking AND (any order, with registers);
//! * [`trichina`] — the Trichina first-order AND;
//! * [`ti`] — the 3-share first-order threshold implementation AND;
//! * [`ti_general`] — generic 3-share direct TI of any quadratic function
//!   (from an ANF or BDD specification);
//! * [`keccak`] — the DOM-masked Keccak χ row (orders 1–3 in the paper);
//! * [`chi3`] — the 3-share TI of the 3-bit χ map (multi-output TI case);
//! * [`hpc`] — the HPC1/HPC2 probe-isolating (PINI) multipliers;
//! * [`refresh`] — mask refresh gadgets (the paper's Fig. 1 refresh,
//!   circular, ISW/SNI);
//! * [`composition`] — the paper's Fig. 1 composition `g ∘ f` with its
//!   non-2-NI witness, plus a fixed (SNI-refresh) variant;
//! * [`suite::Benchmark`] — the named list of all ten evaluation gadgets.
//!
//! Every generator is validated against a plain Boolean specification by
//! exhaustive (or sampled, beyond 22 inputs) simulation; see [`test_util`].
//!
//! ```
//! use walshcheck_gadgets::suite::Benchmark;
//!
//! let netlist = Benchmark::Dom(1).netlist();
//! assert_eq!(netlist.num_secrets(), 2);
//! assert_eq!(netlist.randoms().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops mirror the published i/j share-index formulas of the
// gadget definitions; iterator adapters would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

pub mod chi3;
pub mod composition;
pub mod dom;
pub mod hpc;
pub mod isw;
pub mod keccak;
pub mod refresh;
pub mod suite;
pub mod test_util;
pub mod ti;
pub mod ti_general;
pub mod trichina;

pub use suite::Benchmark;
