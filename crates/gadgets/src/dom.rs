//! The Domain-Oriented Masking (DOM) AND gadget.
//!
//! Gross, Mangard, Korak — *Domain-Oriented Masking: Compact Masked Hardware
//! Implementations with Arbitrary Protection Order*, TIS '16. The DOM-indep
//! multiplier at order `d` uses `n = d + 1` shares per operand and one fresh
//! random bit `z_{ij}` per unordered cross-domain pair `{i, j}`:
//!
//! ```text
//! c_i = a_i·b_i ⊕ ⊕_{j>i} Reg(a_i·b_j ⊕ z_{ij}) ⊕ ⊕_{j<i} Reg(a_i·b_j ⊕ z_{ji})
//! ```
//!
//! The registers after resharing are part of the published design (they stop
//! glitch propagation); functionally they are identities, and the
//! glitch-extended probing model in `walshcheck-circuit` treats them as cone
//! boundaries.

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::{Netlist, WireId};

/// Builds the DOM-indep AND gadget at protection order `order`
/// (`n = order + 1` shares, `n(n−1)/2` randoms).
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn dom_and(order: u32) -> Netlist {
    assert!(order >= 1, "DOM needs order ≥ 1");
    let n = (order + 1) as usize;
    let mut b = NetlistBuilder::new(format!("dom-{order}"));
    let sx = b.secret("x");
    let sy = b.secret("y");
    let x = b.shares(sx, n as u32);
    let y = b.shares(sy, n as u32);
    let mut z = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let r = b.random(format!("z[{i},{j}]"));
            z[i][j] = Some(r);
            z[j][i] = Some(r);
        }
    }
    let o = b.output("q");
    // Resharing terms Reg(x_i y_j ⊕ z_ij) are shared between domains i and
    // j only through the random; each domain sums its own row.
    let mut reshared = vec![vec![None; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let prod = b.and(x[i], y[j]);
            let masked = b.xor(prod, z[i][j].expect("random for cross pair"));
            reshared[i][j] = Some(b.reg(masked));
        }
    }
    for i in 0..n {
        let mut acc: WireId = b.and(x[i], y[i]);
        for j in 0..n {
            if i != j {
                acc = b.xor(acc, reshared[i][j].expect("reshared term"));
            }
        }
        b.output_share(acc, o, i as u32);
    }
    b.build().expect("DOM netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function;
    use walshcheck_circuit::netlist::Gate;

    #[test]
    fn dom1_computes_and() {
        check_gadget_function(&dom_and(1), &|s| s[0] & s[1]);
    }

    #[test]
    fn dom2_computes_and() {
        check_gadget_function(&dom_and(2), &|s| s[0] & s[1]);
    }

    #[test]
    fn dom3_computes_and() {
        check_gadget_function(&dom_and(3), &|s| s[0] & s[1]);
    }

    #[test]
    fn dom_structure() {
        let n = dom_and(1);
        // 4 products + 2 maskings + 2 registers + 2 output xors = 10 cells.
        assert_eq!(n.num_cells(), 10);
        assert_eq!(n.randoms().len(), 1);
        assert!(n.cells.iter().any(|c| c.gate == Gate::Dff));
        let n4 = dom_and(4);
        assert_eq!(n4.randoms().len(), 10);
        assert_eq!(n4.shares_of(walshcheck_circuit::SecretId(0)).len(), 5);
    }
}
