//! The first-order Threshold Implementation (TI) AND gadget.
//!
//! Nikova, Rijmen, Schläffer — *Secure Hardware Implementation of Nonlinear
//! Functions in the Presence of Glitches*, J. Cryptology 24(2). The 3-share
//! multiplication without fresh randomness:
//!
//! ```text
//! c_0 = a_1·b_1 ⊕ a_1·b_2 ⊕ a_2·b_1
//! c_1 = a_2·b_2 ⊕ a_2·b_0 ⊕ a_0·b_2
//! c_2 = a_0·b_0 ⊕ a_0·b_1 ⊕ a_1·b_0
//! ```
//!
//! Output share `c_i` avoids input shares with index `i` (non-completeness),
//! which gives first-order probing security even under glitches — but the
//! gadget is **not** 1-SNI (its output shares depend on two input shares
//! without internal randomness), which the verifier demonstrates.

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::Netlist;

/// Builds the 3-share first-order TI AND gadget (no randomness).
pub fn ti_and() -> Netlist {
    let mut b = NetlistBuilder::new("ti-1");
    let sa = b.secret("a");
    let sb = b.secret("b");
    let a = b.shares(sa, 3);
    let bs = b.shares(sb, 3);
    let o = b.output("c");
    // c_i uses only shares with index ≠ i.
    for i in 0..3usize {
        let j = (i + 1) % 3;
        let k = (i + 2) % 3;
        let p1 = b.and(a[j], bs[j]);
        let p2 = b.and(a[j], bs[k]);
        let p3 = b.and(a[k], bs[j]);
        let t = b.xor(p1, p2);
        let c = b.xor(t, p3);
        b.output_share(c, o, i as u32);
    }
    b.build().expect("TI netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function;
    use walshcheck_circuit::netlist::InputRole;

    #[test]
    fn ti_computes_and() {
        check_gadget_function(&ti_and(), &|s| s[0] & s[1]);
    }

    #[test]
    fn ti_is_non_complete() {
        // Output share i must not depend on input shares of index i.
        let n = ti_and();
        let unf = walshcheck_circuit::unfold(&n).expect("acyclic");
        for (w, role) in &n.outputs {
            let walshcheck_circuit::OutputRole::Share { index, .. } = role else {
                continue;
            };
            let sup = unf.bdds.support(unf.wire_fn(*w));
            for (pos, &(_, irole)) in n.inputs.iter().enumerate() {
                if let InputRole::Share { index: sidx, .. } = irole {
                    if sidx == *index {
                        assert!(
                            !sup.contains(walshcheck_dd::VarId(pos as u32)),
                            "share {sidx} leaks into output share {index}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ti_has_no_randomness() {
        assert!(ti_and().randoms().is_empty());
    }
}
