//! Generic first-order threshold-implementation sharing of quadratic
//! functions.
//!
//! Nikova–Rijmen–Schläffer direct sharing: any vectorial Boolean function of
//! algebraic degree ≤ 2 admits a 3-share TI in which output share `s` only
//! uses input shares with indices `≠ s` (non-completeness), hence is
//! first-order probing secure even under glitches — without any fresh
//! randomness. Monomial by monomial, with `j = s+1, k = s+2 (mod 3)`:
//!
//! ```text
//! constant 1      ↦ share 0 complemented
//! x_a             ↦ x_a⁽ʲ⁾
//! x_a·x_b         ↦ x_a⁽ʲ⁾x_b⁽ʲ⁾ ⊕ x_a⁽ʲ⁾x_b⁽ᵏ⁾ ⊕ x_a⁽ᵏ⁾x_b⁽ʲ⁾
//! ```
//!
//! [`ti_share`] turns a [`QuadraticSpec`] (outputs given as sparse ANFs,
//! see [`walshcheck_dd::anf`]) into an annotated netlist; [`ti_share_bdd`]
//! derives the spec from plain BDDs first, rejecting higher-degree
//! functions.

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::{Netlist, WireId};
use walshcheck_dd::anf::{anf_from_bdd, Anf};
use walshcheck_dd::bdd::{Bdd, BddManager};

/// A vectorial Boolean function of degree ≤ 2, outputs as ANFs over the
/// input variables `0..num_inputs`.
#[derive(Debug, Clone)]
pub struct QuadraticSpec {
    /// Gadget name (also the module name of the generated netlist).
    pub name: String,
    /// Number of (unshared) input bits.
    pub num_inputs: usize,
    /// One ANF per output bit.
    pub outputs: Vec<Anf>,
}

/// Error raised by [`ti_share`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TiShareError {
    /// An output has algebraic degree above 2 (no direct 3-share TI).
    DegreeTooHigh {
        /// The offending output index.
        output: usize,
        /// Its degree.
        degree: u32,
    },
    /// An output mentions a variable outside `0..num_inputs`.
    UnknownVariable {
        /// The offending output index.
        output: usize,
    },
}

impl std::fmt::Display for TiShareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiShareError::DegreeTooHigh { output, degree } => write!(
                f,
                "output {output} has degree {degree}; direct 3-share TI needs degree ≤ 2"
            ),
            TiShareError::UnknownVariable { output } => {
                write!(f, "output {output} uses an undeclared input variable")
            }
        }
    }
}

impl std::error::Error for TiShareError {}

/// Builds the 3-share direct TI of `spec`.
///
/// # Errors
///
/// Fails if an output exceeds degree 2 or references unknown variables.
pub fn ti_share(spec: &QuadraticSpec) -> Result<Netlist, TiShareError> {
    for (oidx, anf) in spec.outputs.iter().enumerate() {
        if anf.degree() > 2 {
            return Err(TiShareError::DegreeTooHigh {
                output: oidx,
                degree: anf.degree(),
            });
        }
        if anf.support().iter().any(|v| v.index() >= spec.num_inputs) {
            return Err(TiShareError::UnknownVariable { output: oidx });
        }
    }
    let mut b = NetlistBuilder::new(spec.name.clone());
    let x: Vec<Vec<WireId>> = (0..spec.num_inputs)
        .map(|i| {
            let s = b.secret(format!("x{i}"));
            b.shares(s, 3)
        })
        .collect();

    for (oidx, anf) in spec.outputs.iter().enumerate() {
        let o = b.output(format!("y{oidx}"));
        let mut monomials: Vec<u128> = anf.monomials().collect();
        monomials.sort();
        for s in 0..3usize {
            let j = (s + 1) % 3;
            let k = (s + 2) % 3;
            let mut terms: Vec<WireId> = Vec::new();
            let mut complement = false;
            for &mono in &monomials {
                let vars: Vec<usize> = (0..spec.num_inputs)
                    .filter(|i| mono >> i & 1 == 1)
                    .collect();
                match vars.as_slice() {
                    [] => {
                        // Constant term: complement share 0 once.
                        if s == 0 {
                            complement = !complement;
                        }
                    }
                    [a] => terms.push(x[*a][j]),
                    [a, c] => {
                        let t1 = b.and(x[*a][j], x[*c][j]);
                        let t2 = b.and(x[*a][j], x[*c][k]);
                        let t3 = b.and(x[*a][k], x[*c][j]);
                        terms.push(t1);
                        terms.push(t2);
                        terms.push(t3);
                    }
                    _ => unreachable!("degree checked above"),
                }
            }
            let mut acc = match terms.split_first() {
                Some((&first, rest)) => rest.iter().fold(first, |acc, &w| b.xor(acc, w)),
                None => {
                    // Constant-zero share: any wire xored with itself.
                    let w = x[0][j];
                    b.xor(w, w)
                }
            };
            if complement {
                acc = b.not(acc);
            }
            b.output_share(acc, o, s as u32);
        }
    }
    Ok(b.build()
        .expect("generated TI netlist is structurally valid"))
}

/// Derives a [`QuadraticSpec`] from BDD outputs and shares it.
///
/// # Errors
///
/// Fails if an output exceeds degree 2.
pub fn ti_share_bdd(
    name: &str,
    bdds: &BddManager,
    outputs: &[Bdd],
    num_inputs: usize,
) -> Result<Netlist, TiShareError> {
    let spec = QuadraticSpec {
        name: name.to_string(),
        num_inputs,
        outputs: outputs.iter().map(|&f| anf_from_bdd(bdds, f)).collect(),
    };
    ti_share(&spec)
}

/// The 3-bit χ map as a [`QuadraticSpec`] (`y_i = x_i ⊕ (1⊕x_{i+1})·x_{i+2}`).
pub fn chi3_spec() -> QuadraticSpec {
    let outputs = (0..3u32)
        .map(|i| {
            let a = 1u128 << i;
            let b = 1u128 << ((i + 1) % 3);
            let c = 1u128 << ((i + 2) % 3);
            // x_i ⊕ x_{i+2} ⊕ x_{i+1}x_{i+2}
            Anf::from_monomials([a, c, b | c])
        })
        .collect();
    QuadraticSpec {
        name: "chi3-spec".into(),
        num_inputs: 3,
        outputs,
    }
}

/// The Toffoli gate `(x0, x1, x2 ⊕ x0·x1)` as a [`QuadraticSpec`].
pub fn toffoli_spec() -> QuadraticSpec {
    QuadraticSpec {
        name: "toffoli".into(),
        num_inputs: 3,
        outputs: vec![
            Anf::from_monomials([0b001u128]),
            Anf::from_monomials([0b010u128]),
            Anf::from_monomials([0b100u128, 0b011]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function_multi;

    fn spec_eval(spec: &QuadraticSpec, inputs: &[bool]) -> Vec<bool> {
        let mut a = 0u128;
        for (i, &b) in inputs.iter().enumerate() {
            if b {
                a |= 1 << i;
            }
        }
        spec.outputs.iter().map(|anf| anf.eval(a)).collect()
    }

    fn check_spec(spec: &QuadraticSpec) {
        let n = ti_share(spec).expect("degree ≤ 2");
        check_gadget_function_multi(&n, &|secrets, oidx| spec_eval(spec, secrets)[oidx]);
    }

    #[test]
    fn toffoli_ti_is_correct() {
        check_spec(&toffoli_spec());
    }

    #[test]
    fn chi3_spec_ti_is_correct() {
        check_spec(&chi3_spec());
        // And the spec agrees with the plain χ formula.
        let spec = chi3_spec();
        for a in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| a >> i & 1 == 1).collect();
            let out = spec_eval(&spec, &inputs);
            for i in 0..3 {
                assert_eq!(
                    out[i],
                    inputs[i] ^ (!inputs[(i + 1) % 3] & inputs[(i + 2) % 3])
                );
            }
        }
    }

    #[test]
    fn constant_and_zero_outputs_are_handled() {
        let spec = QuadraticSpec {
            name: "consts".into(),
            num_inputs: 2,
            outputs: vec![Anf::one(), Anf::zero(), Anf::from_monomials([0b01u128, 0])],
        };
        check_spec(&spec);
    }

    #[test]
    fn cubic_functions_are_rejected() {
        let spec = QuadraticSpec {
            name: "cubic".into(),
            num_inputs: 3,
            outputs: vec![Anf::from_monomials([0b111u128])],
        };
        assert!(matches!(
            ti_share(&spec),
            Err(TiShareError::DegreeTooHigh {
                output: 0,
                degree: 3
            })
        ));
        let bad_var = QuadraticSpec {
            name: "oob".into(),
            num_inputs: 2,
            outputs: vec![Anf::from_monomials([0b100u128])],
        };
        assert!(matches!(
            ti_share(&bad_var),
            Err(TiShareError::UnknownVariable { output: 0 })
        ));
    }

    #[test]
    fn ti_share_bdd_round_trip() {
        // Build χ3 as BDDs, extract ANF, share, and compare against the
        // handwritten chi3_ti generator's function.
        let mut m = BddManager::new(3);
        let x: Vec<_> = (0..3).map(|i| m.var(walshcheck_dd::VarId(i))).collect();
        let outs: Vec<Bdd> = (0..3usize)
            .map(|i| {
                let nb = m.not(x[(i + 1) % 3]);
                let t = m.and(nb, x[(i + 2) % 3]);
                m.xor(x[i], t)
            })
            .collect();
        let n = ti_share_bdd("chi3-from-bdd", &m, &outs, 3).expect("quadratic");
        check_gadget_function_multi(&n, &|s, i| s[i] ^ (!s[(i + 1) % 3] & s[(i + 2) % 3]));
    }

    #[test]
    fn generated_sharings_are_non_complete() {
        let n = ti_share(&toffoli_spec()).expect("quadratic");
        let unf = walshcheck_circuit::unfold(&n).expect("acyclic");
        for (w, role) in &n.outputs {
            let walshcheck_circuit::netlist::OutputRole::Share { index, .. } = role else {
                continue;
            };
            let sup = unf.bdds.support(unf.wire_fn(*w));
            for (pos, &(_, irole)) in n.inputs.iter().enumerate() {
                if let walshcheck_circuit::netlist::InputRole::Share { index: sidx, .. } = irole {
                    if sidx == *index {
                        assert!(
                            !sup.contains(walshcheck_dd::VarId(pos as u32)),
                            "share index {sidx} leaks into output share {index}"
                        );
                    }
                }
            }
        }
    }
}
