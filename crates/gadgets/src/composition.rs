//! The composition example of the paper (Fig. 1) — `g ∘ f` with a non-SNI
//! inner refresh.
//!
//! The paper's Fig. 1 (derived from Coron, *Higher Order Masking of Look-Up
//! Tables* \[2\]) composes a 3-share refresh `f` that is d-NI but **not**
//! d-SNI (`o_f = [a₀⊕r₀⊕r₁, a₁⊕r₀, a₂⊕r₁]`, with the internal probe
//! `p_f = a₀ ⊕ r₀`) into an order-2 ISW multiplication `g` (d-SNI, with the
//! probe `p_g` on a cross-domain product). Because the refresh is only NI,
//! the classical `x·R(x)` flaw applies when the multiplier's second operand
//! carries the *same* secret: two probed values (`p_f` together with the
//! `o_{f,2}·a₁` accumulation inside `g`) jointly depend on all three shares
//! of `a` — the witness of the paper's Fig. 2 ("one needs only two probed
//! values to get three shares"), so the composition is **not 2-NI**.
//!
//! Three variants are provided and cross-checked in the test-suite:
//!
//! * [`composition_fig1`] — `isw₂(refresh_fig1(a), a)`: **not** 2-NI;
//! * [`composition_fixed`] — the same with an SNI (ISW) refresh: 2-NI, as
//!   the composition theorem (SNI ∘ anything) predicts;
//! * [`composition_independent`] — `isw₂(refresh_fig1(a), b)` with an
//!   independent second operand: 2-NI (the flaw needs the shared operand).

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::{Netlist, WireId};

/// Shared tail: order-2 ISW multiplication of sharings `u × v`, probing
/// conventions of the paper (the `o_{f,2}·v₁` product is named `p_g`).
fn isw2_tail(b: &mut NetlistBuilder, u: [WireId; 3], v: [WireId; 3]) {
    let n = 3usize;
    let mut rg = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            rg[i][j] = Some(b.random(format!("rg[{i},{j}]")));
        }
    }
    let mut z: Vec<Vec<Option<WireId>>> = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let rij = rg[i][j].expect("random present");
            z[i][j] = Some(rij);
            let uivj = b.and(u[i], v[j]);
            let t = b.xor(rij, uivj);
            // The paper's probe p_g = o_{f,2} ∧ b₁ is the (2,1) product.
            let ujvi = if (j, i) == (2, 1) {
                b.gate_named(walshcheck_circuit::Gate::And, &[u[j], v[i]], "p_g")
            } else {
                b.and(u[j], v[i])
            };
            z[j][i] = Some(b.xor(t, ujvi));
        }
    }
    let o = b.output("c");
    for i in 0..n {
        let mut acc: WireId = b.and(u[i], v[i]);
        for j in 0..n {
            if i != j {
                acc = b.xor(acc, z[i][j].expect("z defined"));
            }
        }
        b.output_share(acc, o, i as u32);
    }
}

/// The paper's Fig. 1 refresh of `a` with two randoms; the intermediate
/// `t₀ = a₀ ⊕ r₀` is the probe `p_f`.
fn refresh_tail(b: &mut NetlistBuilder, a: [WireId; 3], rf: [WireId; 2]) -> [WireId; 3] {
    let t0 = b.gate_named(walshcheck_circuit::Gate::Xor, &[a[0], rf[0]], "p_f");
    let of0 = b.xor(t0, rf[1]);
    let of1 = b.xor(a[1], rf[0]);
    let of2 = b.xor(a[2], rf[1]);
    [of0, of1, of2]
}

/// Builds the paper's composed circuit `h = isw₂(refresh_fig1(a), a)`.
///
/// **Not 2-NI**: the probes `p_f = a₀⊕r₀` and the `o_{f,2}·a₁` accumulation
/// jointly depend on all three shares of `a`.
pub fn composition_fig1() -> Netlist {
    let mut b = NetlistBuilder::new("fig1-composition");
    let sa = b.secret("a");
    let a = b.shares(sa, 3);
    let rf = b.randoms("rf", 2);
    let a = [a[0], a[1], a[2]];
    let of = refresh_tail(&mut b, a, [rf[0], rf[1]]);
    isw2_tail(&mut b, of, a);
    b.build()
        .expect("composition netlist is structurally valid")
}

/// The same composition with the inner refresh upgraded to an ISW (SNI)
/// refresh: 2-NI by the composition theorem — the positive counterpart.
pub fn composition_fixed() -> Netlist {
    let mut b = NetlistBuilder::new("fig1-composition-fixed");
    let sa = b.secret("a");
    let a = b.shares(sa, 3);
    let a = [a[0], a[1], a[2]];
    let mut of = a;
    for i in 0..3 {
        for j in (i + 1)..3 {
            let r = b.random(format!("rf[{i},{j}]"));
            of[i] = b.xor(of[i], r);
            of[j] = b.xor(of[j], r);
        }
    }
    isw2_tail(&mut b, of, a);
    b.build()
        .expect("composition netlist is structurally valid")
}

/// `isw₂(refresh_fig1(a), b)` with an *independent* second operand: 2-NI —
/// the `x·R(x)` flaw needs both multiplier inputs to carry the same secret.
pub fn composition_independent() -> Netlist {
    let mut b = NetlistBuilder::new("fig1-composition-independent");
    let sa = b.secret("a");
    let sb = b.secret("b");
    let a = b.shares(sa, 3);
    let bs = b.shares(sb, 3);
    let rf = b.randoms("rf", 2);
    let a = [a[0], a[1], a[2]];
    let of = refresh_tail(&mut b, a, [rf[0], rf[1]]);
    isw2_tail(&mut b, of, [bs[0], bs[1], bs[2]]);
    b.build()
        .expect("composition netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function;

    #[test]
    fn compositions_compute_their_products() {
        // x·R(x) computes a∧a = a.
        check_gadget_function(&composition_fig1(), &|s| s[0]);
        check_gadget_function(&composition_fixed(), &|s| s[0]);
        // The independent variant computes a∧b.
        check_gadget_function(&composition_independent(), &|s| s[0] & s[1]);
    }

    #[test]
    fn named_probe_wires_exist() {
        for n in [composition_fig1(), composition_independent()] {
            assert!(n.cells.iter().any(|c| c.name == "p_f"));
            assert!(n.cells.iter().any(|c| c.name == "p_g"));
        }
    }

    #[test]
    fn randomness_budgets() {
        assert_eq!(composition_fig1().randoms().len(), 5); // 2 + 3
        assert_eq!(composition_fixed().randoms().len(), 6); // 3 + 3
        assert_eq!(composition_independent().randoms().len(), 5);
    }
}
