//! Functional-correctness oracles for gadgets.
//!
//! Every generator in this crate is checked against a plain Boolean
//! specification: the XOR of the output shares must equal the specified
//! function of the XOR-reconstructed secrets, for *every* assignment of
//! shares and randoms (exhaustively up to 22 inputs, deterministic sampling
//! beyond). These helpers are public so integration tests and downstream
//! crates can reuse the oracle.

use walshcheck_circuit::netlist::{InputRole, Netlist, OutputId};
use walshcheck_circuit::sim::Simulator;

/// Checks a single-output gadget: XOR of output shares ==
/// `expected(secrets)` under every (sampled) assignment.
///
/// # Panics
///
/// Panics if the gadget mis-computes its function, has no outputs, or has
/// more than one shared output (use [`check_gadget_function_multi`]).
pub fn check_gadget_function(netlist: &Netlist, expected: &dyn Fn(&[bool]) -> bool) {
    assert_eq!(
        netlist.output_names.len(),
        1,
        "use check_gadget_function_multi for multi-output gadgets"
    );
    check_gadget_function_multi(netlist, &|secrets, _| expected(secrets));
}

/// Checks a multi-output gadget: for each shared output `o`, the XOR of its
/// shares must equal `expected(secrets, o)`.
///
/// # Panics
///
/// Panics on the first mismatching assignment.
pub fn check_gadget_function_multi(netlist: &Netlist, expected: &dyn Fn(&[bool], usize) -> bool) {
    let sim = Simulator::new(netlist).expect("gadget is acyclic");
    let num_inputs = netlist.inputs.len();
    let num_secrets = netlist.num_secrets();
    let outputs: Vec<_> = (0..netlist.output_names.len())
        .map(|o| netlist.output_shares_of(OutputId(o as u32)))
        .collect();
    assert!(!outputs.is_empty(), "gadget has no outputs");

    let check = |assignment: u128| {
        let values = sim.eval_all(assignment);
        let mut secrets = vec![false; num_secrets];
        for (pos, &(_, role)) in netlist.inputs.iter().enumerate() {
            if let InputRole::Share { secret, .. } = role {
                if assignment >> pos & 1 == 1 {
                    secrets[secret.0 as usize] ^= true;
                }
            }
        }
        for (oidx, shares) in outputs.iter().enumerate() {
            let got = shares
                .iter()
                .fold(false, |acc, w| acc ^ values[w.0 as usize]);
            assert_eq!(
                got,
                expected(&secrets, oidx),
                "output {oidx} wrong under assignment {assignment:b} (secrets {secrets:?})"
            );
        }
    };

    if num_inputs <= 22 {
        for a in 0..1u128 << num_inputs {
            check(a);
        }
    } else {
        // Deterministic multiplicative-congruential sampling.
        let mut state = 0x9e3779b97f4a7c15u128;
        for _ in 0..4096 {
            state = state.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(1);
            check(state & ((1u128 << num_inputs) - 1));
        }
    }
}
