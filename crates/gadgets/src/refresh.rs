//! Mask-refreshing gadgets.
//!
//! Refreshing re-randomizes a sharing without changing the encoded value;
//! it is the glue that makes gadget composition secure (Coron, *Higher Order
//! Masking of Look-Up Tables*). Three variants are provided:
//!
//! * [`refresh_paper`] — the exact 3-share refresh of the paper's Fig. 1
//!   (`o = [a₀⊕r₀⊕r₁, a₁⊕r₀, a₂⊕r₁]`), used by the composition example;
//! * [`refresh_circular`] — the cheap circular refresh with `n` randoms
//!   (`o_i = a_i ⊕ r_i ⊕ r_{i+1 mod n}`), NI but not SNI;
//! * [`refresh_isw`] — the ISW-style full refresh with `n(n−1)/2` randoms,
//!   `d`-SNI.

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::Netlist;

/// The 3-share refresh used in the paper's composition example (Fig. 1):
/// `o₀ = a₀ ⊕ r₀ ⊕ r₁`, `o₁ = a₁ ⊕ r₀`, `o₂ = a₂ ⊕ r₁`.
pub fn refresh_paper() -> Netlist {
    let mut b = NetlistBuilder::new("refresh-fig1");
    let sa = b.secret("a");
    let a = b.shares(sa, 3);
    let r0 = b.random("r0");
    let r1 = b.random("r1");
    let o = b.output("o");
    let t = b.xor(a[0], r0); // the probe location p_f = a₀ ⊕ r₀
    let o0 = b.xor(t, r1);
    let o1 = b.xor(a[1], r0);
    let o2 = b.xor(a[2], r1);
    b.output_share(o0, o, 0);
    b.output_share(o1, o, 1);
    b.output_share(o2, o, 2);
    b.build().expect("refresh netlist is structurally valid")
}

/// Circular refresh with `n = order + 1` shares and `n` randoms:
/// `o_i = a_i ⊕ r_i ⊕ r_{(i+1) mod n}`.
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn refresh_circular(order: u32) -> Netlist {
    assert!(order >= 1, "refresh needs order ≥ 1");
    let n = (order + 1) as usize;
    let mut b = NetlistBuilder::new(format!("refresh-circ-{order}"));
    let sa = b.secret("a");
    let a = b.shares(sa, n as u32);
    let r = b.randoms("r", n as u32);
    let o = b.output("o");
    for i in 0..n {
        let t = b.xor(a[i], r[i]);
        let oi = b.xor(t, r[(i + 1) % n]);
        b.output_share(oi, o, i as u32);
    }
    b.build().expect("refresh netlist is structurally valid")
}

/// ISW-style full refresh with `n = order + 1` shares and `n(n−1)/2`
/// randoms; each pairwise random is added to both endpoints. `d`-SNI.
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn refresh_isw(order: u32) -> Netlist {
    assert!(order >= 1, "refresh needs order ≥ 1");
    let n = (order + 1) as usize;
    let mut b = NetlistBuilder::new(format!("refresh-isw-{order}"));
    let sa = b.secret("a");
    let a = b.shares(sa, n as u32);
    let mut acc = a.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            let r = b.random(format!("r[{i},{j}]"));
            acc[i] = b.xor(acc[i], r);
            acc[j] = b.xor(acc[j], r);
        }
    }
    let o = b.output("o");
    for (i, &w) in acc.iter().enumerate() {
        b.output_share(w, o, i as u32);
    }
    b.build().expect("refresh netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function;

    #[test]
    fn refreshes_preserve_the_value() {
        check_gadget_function(&refresh_paper(), &|s| s[0]);
        for order in 1..=3 {
            check_gadget_function(&refresh_circular(order), &|s| s[0]);
            check_gadget_function(&refresh_isw(order), &|s| s[0]);
        }
    }

    #[test]
    fn randomness_budgets() {
        assert_eq!(refresh_paper().randoms().len(), 2);
        assert_eq!(refresh_circular(2).randoms().len(), 3);
        assert_eq!(refresh_isw(3).randoms().len(), 6);
    }
}
