//! The Trichina masked AND gate.
//!
//! Trichina, Korkishko, Lee — *Small Size, Low Power, Side Channel-Immune AES
//! Coprocessor*, AES 4 (2005). First-order masked AND with two shares per
//! operand and one fresh random `z`:
//!
//! ```text
//! c_1 = z
//! c_0 = (((z ⊕ a_0·b_0) ⊕ a_0·b_1) ⊕ a_1·b_0) ⊕ a_1·b_1
//! ```
//!
//! The left-to-right bracketing matters: every intermediate value stays
//! masked by `z`.

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::Netlist;

/// Builds the first-order Trichina AND gadget.
pub fn trichina_and() -> Netlist {
    let mut b = NetlistBuilder::new("trichina-1");
    let sa = b.secret("a");
    let sb = b.secret("b");
    let a = b.shares(sa, 2);
    let bs = b.shares(sb, 2);
    let z = b.random("z");
    let o = b.output("c");

    let p00 = b.and(a[0], bs[0]);
    let t1 = b.xor(z, p00);
    let p01 = b.and(a[0], bs[1]);
    let t2 = b.xor(t1, p01);
    let p10 = b.and(a[1], bs[0]);
    let t3 = b.xor(t2, p10);
    let p11 = b.and(a[1], bs[1]);
    let c0 = b.xor(t3, p11);
    // The second output share is the random itself, buffered so it exists
    // as a circuit node (and probe site), as in the hardware netlist.
    let c1 = b.buf(z);

    b.output_share(c0, o, 0);
    b.output_share(c1, o, 1);
    b.build().expect("Trichina netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function;

    #[test]
    fn trichina_computes_and() {
        check_gadget_function(&trichina_and(), &|s| s[0] & s[1]);
    }

    #[test]
    fn trichina_structure() {
        let n = trichina_and();
        assert_eq!(n.randoms().len(), 1);
        assert_eq!(n.num_cells(), 9);
        assert_eq!(n.output_shares_of(walshcheck_circuit::OutputId(0)).len(), 2);
    }
}
