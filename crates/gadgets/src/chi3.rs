//! First-order threshold implementation of the 3-bit χ permutation.
//!
//! χ₃ is the smallest member of the Keccak χ family and the classic
//! multi-output TI case study (Nikova et al.): three secrets, three shares
//! each, **no fresh randomness**, with the non-complete sharing
//!
//! ```text
//! y_{i,s} = a_{i, s+1}  ⊕  TI-AND share s of (¬x_{i+1}, x_{i+2})
//! ```
//!
//! where the complement flips share 0 only. Like [`crate::ti`], the result
//! is first-order probing secure — even under glitches — but neither SNI
//! nor uniform.

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::Netlist;

/// Builds the 3-share TI of the 3-bit χ map
/// `y_i = x_i ⊕ (¬x_{i+1} ∧ x_{i+2})`.
pub fn chi3_ti() -> Netlist {
    let mut b = NetlistBuilder::new("chi3-ti");
    let secrets: Vec<_> = (0..3).map(|i| b.secret(format!("x{i}"))).collect();
    let x: Vec<Vec<_>> = secrets.iter().map(|&s| b.shares(s, 3)).collect();
    // Complemented sharing of each input: flip share 0.
    let notx: Vec<Vec<_>> = (0..3)
        .map(|i| {
            let mut v = x[i].clone();
            v[0] = b.not(v[0]);
            v
        })
        .collect();
    for i in 0..3usize {
        let a = &x[i];
        let u = &notx[(i + 1) % 3];
        let v = &x[(i + 2) % 3];
        let o = b.output(format!("y{i}"));
        for s in 0..3usize {
            let j = (s + 1) % 3;
            let k = (s + 2) % 3;
            // TI AND share s over (u, v): avoids index s entirely.
            let p1 = b.and(u[j], v[j]);
            let p2 = b.and(u[j], v[k]);
            let p3 = b.and(u[k], v[j]);
            let t1 = b.xor(p1, p2);
            let t2 = b.xor(t1, p3);
            // Linear term with index j keeps share s non-complete.
            let y = b.xor(t2, a[j]);
            b.output_share(y, o, s as u32);
        }
    }
    b.build().expect("chi3 netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function_multi;
    use walshcheck_circuit::netlist::InputRole;

    #[test]
    fn chi3_computes_chi() {
        check_gadget_function_multi(&chi3_ti(), &|s, i| {
            s[i] ^ (!s[(i + 1) % 3] & s[(i + 2) % 3])
        });
    }

    #[test]
    fn chi3_is_non_complete() {
        // Output share s never depends on input shares of index s.
        let n = chi3_ti();
        let unf = walshcheck_circuit::unfold(&n).expect("acyclic");
        for (w, role) in &n.outputs {
            let walshcheck_circuit::netlist::OutputRole::Share { index, .. } = role else {
                continue;
            };
            let sup = unf.bdds.support(unf.wire_fn(*w));
            for (pos, &(_, irole)) in n.inputs.iter().enumerate() {
                if let InputRole::Share { index: sidx, .. } = irole {
                    if sidx == *index {
                        assert!(
                            !sup.contains(walshcheck_dd::VarId(pos as u32)),
                            "share index {sidx} leaks into output share {index}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chi3_structure() {
        let n = chi3_ti();
        assert_eq!(n.num_secrets(), 3);
        assert_eq!(n.inputs.len(), 9);
        assert!(n.randoms().is_empty());
        assert_eq!(n.output_names.len(), 3);
    }
}
