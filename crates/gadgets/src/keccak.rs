//! Higher-order masked Keccak χ row function.
//!
//! Gross, Schaffenrath, Mangard — *Higher-Order Side-Channel Protected
//! Implementations of Keccak*, DSD '17. The χ step maps a 5-bit row to
//!
//! ```text
//! y_i = x_i ⊕ (¬x_{i+1} ∧ x_{i+2})      (indices mod 5)
//! ```
//!
//! The masked implementation shares each lane bit into `n = d + 1` shares,
//! realizes the NOT by complementing share 0 of `x_{i+1}`, computes each AND
//! with a DOM-indep multiplier (fresh randomness per multiplier, registers on
//! the reshared cross-domain terms) and XORs `x_i`'s shares onto the product
//! shares.
//!
//! This is the largest benchmark of the paper's evaluation (keccak-1/2/3).

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::{Netlist, WireId};

/// Builds the DOM-masked Keccak χ row gadget at protection order `order`
/// (5 secrets × `order + 1` shares, `5·n(n−1)/2` randoms, 5 shared outputs).
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn keccak_chi(order: u32) -> Netlist {
    assert!(order >= 1, "Keccak χ needs order ≥ 1");
    let n = (order + 1) as usize;
    let mut b = NetlistBuilder::new(format!("keccak-{order}"));
    let secrets: Vec<_> = (0..5).map(|i| b.secret(format!("x{i}"))).collect();
    let x: Vec<Vec<WireId>> = secrets.iter().map(|&s| b.shares(s, n as u32)).collect();

    // Complemented sharing of each lane: ¬x_i flips share 0 only.
    let notx: Vec<Vec<WireId>> = (0..5)
        .map(|i| {
            let mut v = x[i].clone();
            v[0] = b.not(v[0]);
            v
        })
        .collect();

    for i in 0..5usize {
        let u = &notx[(i + 1) % 5]; // ¬x_{i+1}
        let v = &x[(i + 2) % 5]; // x_{i+2}
                                 // DOM-indep multiplier between sharings u and v.
        let mut z = vec![vec![None; n]; n];
        for p in 0..n {
            for q in (p + 1)..n {
                let r = b.random(format!("z{i}[{p},{q}]"));
                z[p][q] = Some(r);
                z[q][p] = Some(r);
            }
        }
        let mut reshared = vec![vec![None; n]; n];
        for p in 0..n {
            for q in 0..n {
                if p == q {
                    continue;
                }
                let prod = b.and(u[p], v[q]);
                let masked = b.xor(prod, z[p][q].expect("random for cross pair"));
                reshared[p][q] = Some(b.reg(masked));
            }
        }
        let o = b.output(format!("y{i}"));
        for p in 0..n {
            let mut acc = b.and(u[p], v[p]);
            for q in 0..n {
                if p != q {
                    acc = b.xor(acc, reshared[p][q].expect("reshared term"));
                }
            }
            // y_i = x_i ⊕ (¬x_{i+1} ∧ x_{i+2}).
            let y = b.xor(acc, x[i][p]);
            b.output_share(y, o, p as u32);
        }
    }
    b.build().expect("Keccak χ netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function_multi;

    fn chi_spec(s: &[bool], i: usize) -> bool {
        s[i] ^ (!s[(i + 1) % 5] & s[(i + 2) % 5])
    }

    #[test]
    fn keccak1_computes_chi() {
        check_gadget_function_multi(&keccak_chi(1), &chi_spec);
    }

    #[test]
    fn keccak2_computes_chi_sampled() {
        check_gadget_function_multi(&keccak_chi(2), &chi_spec);
    }

    #[test]
    fn keccak_sizes() {
        let k1 = keccak_chi(1);
        assert_eq!(k1.inputs.len(), 15); // 10 shares + 5 randoms
        assert_eq!(k1.num_secrets(), 5);
        assert_eq!(k1.output_names.len(), 5);
        let k3 = keccak_chi(3);
        assert_eq!(k3.inputs.len(), 20 + 30);
    }
}
