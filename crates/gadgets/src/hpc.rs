//! Hardware Private Circuits (HPC) multipliers — PINI gadgets.
//!
//! Cassiers, Standaert — *Trivially and Efficiently Composable Masked
//! Gadgets with Probe Isolating Non-Interference* (IEEE TIFS 2020). The
//! paper under reproduction lists PINI verification as future work; these
//! generators provide the canonical PINI-secure gadgets to exercise it:
//!
//! * **HPC1** — an SNI refresh on one operand followed by a DOM-indep
//!   multiplier;
//! * **HPC2** — the register-heavy single-stage construction
//!
//! ```text
//! c_i = Reg(a_i·b_i) ⊕ ⊕_{j≠i} [ Reg(¬a_i·r_{ij}) ⊕ Reg(a_i·Reg(b_j ⊕ r_{ij})) ]
//! ```
//!
//! with one fresh random per unordered share pair. Summing over `i`: the
//! pairwise randoms cancel and `Σ c_i = a·b`.

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::Netlist;

/// Builds the HPC2 AND gadget at protection order `order`
/// (`n = order + 1` shares, `n(n−1)/2` randoms). `d`-PINI, glitch-robust.
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn hpc2_and(order: u32) -> Netlist {
    assert!(order >= 1, "HPC2 needs order ≥ 1");
    let n = (order + 1) as usize;
    let mut b = NetlistBuilder::new(format!("hpc2-{order}"));
    let sa = b.secret("a");
    let sb = b.secret("b");
    let a = b.shares(sa, n as u32);
    let bs = b.shares(sb, n as u32);
    let mut r = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let rand = b.random(format!("r[{i},{j}]"));
            r[i][j] = Some(rand);
            r[j][i] = Some(rand);
        }
    }
    let o = b.output("c");
    for i in 0..n {
        let not_ai = b.not(a[i]);
        let prod = b.and(a[i], bs[i]);
        let mut acc = b.reg(prod);
        for j in 0..n {
            if j == i {
                continue;
            }
            let rij = r[i][j].expect("pair random");
            // u = Reg(¬a_i · r_ij)
            let u0 = b.and(not_ai, rij);
            let u = b.reg(u0);
            // v = Reg(a_i · Reg(b_j ⊕ r_ij))
            let masked = b.xor(bs[j], rij);
            let masked_reg = b.reg(masked);
            let v0 = b.and(a[i], masked_reg);
            let v = b.reg(v0);
            let uv = b.xor(u, v);
            acc = b.xor(acc, uv);
        }
        b.output_share(acc, o, i as u32);
    }
    b.build().expect("HPC2 netlist is structurally valid")
}

/// Builds the HPC1 AND gadget at protection order `order`: an ISW (SNI)
/// refresh of operand `b` followed by a DOM-indep multiplier. `d`-PINI.
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn hpc1_and(order: u32) -> Netlist {
    assert!(order >= 1, "HPC1 needs order ≥ 1");
    let n = (order + 1) as usize;
    let mut bld = NetlistBuilder::new(format!("hpc1-{order}"));
    let sa = bld.secret("a");
    let sb = bld.secret("b");
    let a = bld.shares(sa, n as u32);
    let bs = bld.shares(sb, n as u32);
    // SNI refresh of b (pairwise randoms), registered.
    let mut b_ref = bs.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            let r = bld.random(format!("rr[{i},{j}]"));
            b_ref[i] = bld.xor(b_ref[i], r);
            b_ref[j] = bld.xor(b_ref[j], r);
        }
    }
    let b_reg: Vec<_> = b_ref.iter().map(|&w| bld.reg(w)).collect();
    // DOM-indep multiplication of a × refresh(b).
    let mut z = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let rand = bld.random(format!("z[{i},{j}]"));
            z[i][j] = Some(rand);
            z[j][i] = Some(rand);
        }
    }
    let o = bld.output("c");
    let mut reshared = vec![vec![None; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let prod = bld.and(a[i], b_reg[j]);
            let masked = bld.xor(prod, z[i][j].expect("pair random"));
            reshared[i][j] = Some(bld.reg(masked));
        }
    }
    for i in 0..n {
        let mut acc = bld.and(a[i], b_reg[i]);
        for j in 0..n {
            if i != j {
                acc = bld.xor(acc, reshared[i][j].expect("reshared term"));
            }
        }
        bld.output_share(acc, o, i as u32);
    }
    bld.build().expect("HPC1 netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function;

    #[test]
    fn hpc2_computes_and() {
        check_gadget_function(&hpc2_and(1), &|s| s[0] & s[1]);
        check_gadget_function(&hpc2_and(2), &|s| s[0] & s[1]);
    }

    #[test]
    fn hpc1_computes_and() {
        check_gadget_function(&hpc1_and(1), &|s| s[0] & s[1]);
        check_gadget_function(&hpc1_and(2), &|s| s[0] & s[1]);
    }

    #[test]
    fn randomness_budgets() {
        assert_eq!(hpc2_and(1).randoms().len(), 1);
        assert_eq!(hpc2_and(3).randoms().len(), 6);
        // HPC1 pays twice: refresh + resharing randoms.
        assert_eq!(hpc1_and(1).randoms().len(), 2);
        assert_eq!(hpc1_and(2).randoms().len(), 6);
    }

    #[test]
    fn hpc2_is_register_heavy() {
        let n = hpc2_and(1);
        let regs = n
            .cells
            .iter()
            .filter(|c| c.gate == walshcheck_circuit::Gate::Dff)
            .count();
        // Per share: 1 (diagonal) + (n−1)·3 registers.
        assert_eq!(regs, 2 * (1 + 3));
    }
}
