//! The Ishai–Sahai–Wagner (ISW) masked multiplication gadget.
//!
//! *Private Circuits: Securing Hardware against Probing Attacks*, CRYPTO '03.
//! At protection order `d` each input is split into `n = d + 1` shares and
//! the gadget consumes `n(n−1)/2` fresh random bits `r_{ij}` (`i < j`):
//!
//! ```text
//! z_ij = r_ij                         for i < j
//! z_ji = (r_ij ⊕ a_i·b_j) ⊕ a_j·b_i   for i < j
//! c_i  = a_i·b_i ⊕ ⊕_{j≠i} z_ij
//! ```
//!
//! The gadget is `d`-SNI for every order.

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::{Netlist, WireId};

/// Builds the ISW AND gadget at protection order `order` (`n = order + 1`
/// shares).
///
/// # Panics
///
/// Panics if `order == 0` (an unmasked AND is not a gadget).
pub fn isw_and(order: u32) -> Netlist {
    assert!(order >= 1, "ISW needs order ≥ 1");
    let n = (order + 1) as usize;
    let mut b = NetlistBuilder::new(format!("isw-{order}"));
    let sa = b.secret("a");
    let sb = b.secret("b");
    let a = b.shares(sa, n as u32);
    let bs = b.shares(sb, n as u32);
    // r[i][j] for i < j.
    let mut r = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            r[i][j] = Some(b.random(format!("r[{i},{j}]")));
        }
    }
    // z[i][j] for all i ≠ j.
    let mut z = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let rij = r[i][j].expect("random present");
            z[i][j] = Some(rij);
            // z_ji = (r_ij ⊕ a_i b_j) ⊕ a_j b_i — this bracketing is the
            // security-critical evaluation order of the original paper.
            let aibj = b.and(a[i], bs[j]);
            let t = b.xor(rij, aibj);
            let ajbi = b.and(a[j], bs[i]);
            z[j][i] = Some(b.xor(t, ajbi));
        }
    }
    let o = b.output("c");
    for i in 0..n {
        let mut acc: WireId = b.and(a[i], bs[i]);
        for (j, zrow) in z[i].iter().enumerate() {
            if j != i {
                acc = b.xor(acc, zrow.expect("z defined for i≠j"));
            }
        }
        b.output_share(acc, o, i as u32);
    }
    b.build().expect("ISW netlist is structurally valid")
}

/// A sabotaged ISW gadget with one random wire replaced by constant reuse of
/// another random — used by tests to confirm the verifier detects broken
/// masking.
pub fn isw_and_broken(order: u32) -> Netlist {
    assert!(order >= 1, "ISW needs order ≥ 1");
    let n = (order + 1) as usize;
    let mut b = NetlistBuilder::new(format!("isw-{order}-broken"));
    let sa = b.secret("a");
    let sb = b.secret("b");
    let a = b.shares(sa, n as u32);
    let bs = b.shares(sb, n as u32);
    let shared_r = b.random("r_shared");
    let mut z = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            // Every pair reuses the same random bit: the pairwise masking
            // cancels between rows and leaks.
            let rij = shared_r;
            z[i][j] = Some(rij);
            let aibj = b.and(a[i], bs[j]);
            let t = b.xor(rij, aibj);
            let ajbi = b.and(a[j], bs[i]);
            z[j][i] = Some(b.xor(t, ajbi));
        }
    }
    let o = b.output("c");
    for i in 0..n {
        let mut acc: WireId = b.and(a[i], bs[i]);
        for (j, zrow) in z[i].iter().enumerate() {
            if j != i {
                acc = b.xor(acc, zrow.expect("z defined for i≠j"));
            }
        }
        b.output_share(acc, o, i as u32);
    }
    b.build().expect("netlist is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_gadget_function;

    #[test]
    fn isw1_computes_and() {
        check_gadget_function(&isw_and(1), &|x| x[0] & x[1]);
    }

    #[test]
    fn isw2_computes_and() {
        check_gadget_function(&isw_and(2), &|x| x[0] & x[1]);
    }

    #[test]
    fn isw3_computes_and() {
        check_gadget_function(&isw_and(3), &|x| x[0] & x[1]);
    }

    #[test]
    fn isw_counts() {
        let n = isw_and(2);
        assert_eq!(n.shares_of(walshcheck_circuit::SecretId(0)).len(), 3);
        assert_eq!(n.randoms().len(), 3);
        let n = isw_and(4);
        assert_eq!(n.randoms().len(), 10);
    }

    #[test]
    fn broken_isw_still_computes_and() {
        // The sabotage breaks security, not correctness.
        check_gadget_function(&isw_and_broken(2), &|x| x[0] & x[1]);
    }
}
