//! Deterministic crash-point exploration of the store's durability claims.
//!
//! The pitch (DESIGN.md §16): run one job lifecycle — submit, sweep,
//! done — with the store's I/O routed through
//! [`walshcheck_core::iofs::TracingFs`], which performs every operation
//! for real *and* records it. The recorded schedule is then the complete
//! set of crash points: for every prefix length `k` and every
//! [`CrashMode`], [`crash_state`] materializes exactly the bytes a kernel
//! crash before the `k`-th operation could have left behind, a fresh
//! [`JobManager`] is opened over that tree, and recovery must converge —
//! the store loads, the integrity scan quarantines anything damaged, the
//! job is never stranded in a non-resumable state, and re-running produces
//! a report **byte-identical** to the uninterrupted run.
//!
//! The explorer is exhaustive where kill-based chaos tests are sampled:
//! a signal lands wherever the scheduler put it, but a schedule prefix is
//! *every* point, three adversarial cache behaviors each. It runs in
//! `tests/crash_matrix.rs` (and CI's `crash-matrix` job); the
//! `crash_explore` binary in `walshcheck-bench` drives the same API for
//! ad-hoc investigation. The `crash-at-io-op=N` fault directive
//! cross-checks sampled points against a *really* aborted child process.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use walshcheck_core::iofs::{crash_state, CrashMode, IoFs, Op, TracingFs};
use walshcheck_core::json::Json;

use crate::jobs::{JobManager, JobState, PoolConfig};
use crate::store::{FsyncEvents, Store};

/// How long recovery may take before the explorer declares a hang. The
/// gadgets used are tiny (milliseconds per sweep); a minute means wedged.
const RECOVERY_TIMEOUT: Duration = Duration::from_secs(60);

/// One traced job lifecycle: the schedule, the job, the reference bytes.
#[derive(Debug)]
pub struct Lifecycle {
    /// The store root the lifecycle ran in (live, fully consistent).
    pub root: PathBuf,
    /// Every mutating I/O operation, in order — the crash-point schedule.
    pub ops: Vec<Op>,
    /// The id of the job that ran.
    pub job_id: String,
    /// The uninterrupted run's `report.json` bytes — what every recovery
    /// must reproduce exactly.
    pub report: Vec<u8>,
}

/// Runs one submit→run→done lifecycle in-process over a [`TracingFs`] and
/// returns the recorded schedule plus the reference report bytes.
///
/// `fsync_events` is the event-log policy to trace under —
/// [`FsyncEvents::Never`] is the most adversarial choice (every event
/// append is then unsynced data the crash model may destroy). One runner
/// thread, checkpoint after every batch: the schedule is deterministic
/// for a given spec + netlist.
///
/// # Errors
///
/// Returns a description when the job cannot be submitted or does not
/// reach `done`.
pub fn record_lifecycle(
    root: &Path,
    spec_doc: &Json,
    netlist: &str,
    fsync_events: FsyncEvents,
) -> Result<Lifecycle, String> {
    let _ = std::fs::remove_dir_all(root);
    let fs = TracingFs::new();
    let traced: Arc<dyn IoFs> = Arc::<TracingFs>::clone(&fs);
    let store =
        Store::open_with(root, traced, fsync_events).map_err(|e| format!("open store: {e}"))?;
    let manager = Arc::new(
        JobManager::open(store, Duration::ZERO, PoolConfig::default())
            .map_err(|e| format!("open manager: {}", e.message))?,
    );
    let submitted = manager
        .submit(spec_doc, netlist)
        .map_err(|e| format!("submit: {}", e.message))?;
    run_to_done(&manager, &submitted.id)?;
    let report = std::fs::read(manager.store().job_file(&submitted.id, "report.json"))
        .map_err(|e| format!("reading reference report: {e}"))?;
    Ok(Lifecycle {
        root: root.to_path_buf(),
        ops: fs.ops(),
        job_id: submitted.id,
        report,
    })
}

/// Drives `manager` with one runner thread until job `id` is `done`
/// (immediately true for a cached hit), then stops the runner.
///
/// # Errors
///
/// Returns a description when the job fails, is stranded, or times out.
pub fn run_to_done(manager: &Arc<JobManager>, id: &str) -> Result<(), String> {
    if manager.status(id).map_err(|e| e.message)?.state == JobState::Done {
        return Ok(());
    }
    let runner = {
        let m = Arc::clone(manager);
        std::thread::spawn(move || m.run_loop())
    };
    let deadline = Instant::now() + RECOVERY_TIMEOUT;
    let outcome = loop {
        match manager.status(id) {
            Ok(record) => match record.state {
                JobState::Done => break Ok(()),
                JobState::Queued | JobState::Running => {}
                state => {
                    break Err(format!(
                        "job {id} landed in {} ({}), not done",
                        state.as_str(),
                        record.error.as_deref().unwrap_or("no error")
                    ))
                }
            },
            Err(e) => break Err(e.message),
        }
        if Instant::now() >= deadline {
            break Err(format!(
                "job {id} did not finish within {RECOVERY_TIMEOUT:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    manager.stop();
    if runner.join().is_err() {
        return Err("runner thread panicked".into());
    }
    outcome
}

/// What one crash point recovered to.
#[derive(Debug)]
pub struct Recovered {
    /// `true` when the crash predated the submit becoming durable — the
    /// job was absent after recovery (legal: the client never got its
    /// acknowledgement) and the resubmit re-created it.
    pub resubmitted: bool,
    /// The recovered run's `report.json` bytes.
    pub report: Vec<u8>,
}

/// Materializes the crash at `&lifecycle.ops[..prefix]` under `mode` into
/// `crash_root`, then proves the recovery invariants:
///
/// 1. the store opens and the integrity scan completes (quarantining or
///    rebuilding whatever the crash damaged);
/// 2. the job is never stranded: after the scan it is `done`, re-queued,
///    or absent entirely (the crash predates the submit's acknowledgement
///    — resubmitting must then re-create it under the same id);
/// 3. driving the queue converges to `done` with `report.json` bytes
///    identical to the uninterrupted reference (the caller compares).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn crash_and_recover(
    lifecycle: &Lifecycle,
    prefix: usize,
    mode: CrashMode,
    crash_root: &Path,
    spec_doc: &Json,
    netlist: &str,
) -> Result<Recovered, String> {
    let state = crash_state(&lifecycle.ops[..prefix], mode);
    let _ = std::fs::remove_dir_all(crash_root);
    state
        .write_to(&lifecycle.root, crash_root)
        .map_err(|e| format!("materializing crash state: {e}"))?;
    recover(crash_root, &lifecycle.job_id, spec_doc, netlist)
}

/// Opens the store at `root` (real I/O), runs the recovery invariants of
/// [`crash_and_recover`] for `job_id`, and returns the recovered report
/// bytes. Shared by the simulated explorer and the real-abort cross-check
/// (which crashes a child process instead of materializing a model state).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn recover(
    root: &Path,
    job_id: &str,
    spec_doc: &Json,
    netlist: &str,
) -> Result<Recovered, String> {
    let store = Store::open(root).map_err(|e| format!("re-opening store: {e}"))?;
    let manager = Arc::new(
        JobManager::open(store, Duration::ZERO, PoolConfig::default())
            .map_err(|e| format!("recovery open: {}", e.message))?,
    );
    let resubmitted = match manager.status(job_id) {
        Ok(record) => {
            if !matches!(record.state, JobState::Done | JobState::Queued) {
                return Err(format!(
                    "job stranded in {} after the integrity scan",
                    record.state.as_str()
                ));
            }
            false
        }
        Err(_) => true,
    };
    let submitted = manager
        .submit(spec_doc, netlist)
        .map_err(|e| format!("resubmit: {}", e.message))?;
    if submitted.id != job_id {
        return Err(format!(
            "resubmit mapped to job {}, expected {job_id}",
            submitted.id
        ));
    }
    run_to_done(&manager, job_id)?;
    let report = std::fs::read(manager.store().job_file(job_id, "report.json"))
        .map_err(|e| format!("reading recovered report: {e}"))?;
    Ok(Recovered {
        resubmitted,
        report,
    })
}
