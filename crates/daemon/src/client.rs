//! A small blocking HTTP client for `walshcheckd` — what the CLI's
//! `submit`/`status`/`fetch` commands and the lifecycle tests speak. One
//! request per connection, mirroring the server's `Connection: close`
//! contract.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

/// A completed exchange.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(60),
        }
    }

    /// Performs one `method path` exchange with an optional body.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        // Half-close: the server may answer (413, 400) without reading the
        // whole body; signalling end-of-request lets it drain and respond
        // instead of both sides waiting on the other's EOF.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post(&self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn delete(&self, path: &str) -> io::Result<ClientResponse> {
        self.request("DELETE", path, None)
    }

    /// Submits a job: `spec_json` is the spec document, `netlist` the
    /// ILANG source. Returns the server's `{"id","state","cached"}` body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn submit(&self, spec_json: &str, netlist: &str) -> io::Result<ClientResponse> {
        let body = format!(
            "{{\"spec\":{spec_json},\"netlist\":{}}}",
            quote_json_string(netlist)
        );
        self.post("/v1/jobs", body.as_bytes())
    }
}

/// Renders `s` as a JSON string literal (quotes included).
fn quote_json_string(s: &str) -> String {
    format!("\"{}\"", walshcheck_core::report::json_escape(s))
}

fn parse_response(raw: &[u8]) -> io::Result<ClientResponse> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::other("no header/body separator in response"))?;
    let head = std::str::from_utf8(&raw[..split])
        .map_err(|_| io::Error::other("response head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line {status_line:?}")))?;
    Ok(ClientResponse {
        status,
        body: raw[split + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses() {
        let r =
            parse_response(b"HTTP/1.1 201 Created\r\nContent-Length: 2\r\n\r\nok").expect("parses");
        assert_eq!(r.status, 201);
        assert_eq!(r.text(), "ok");
        assert!(parse_response(b"garbage").is_err());
    }

    #[test]
    fn quotes_ilang_strings() {
        assert_eq!(quote_json_string("a\nb\"c"), "\"a\\nb\\\"c\"");
    }
}
