//! A small blocking HTTP client for `walshcheckd` — what the CLI's
//! `submit`/`status`/`fetch` commands and the lifecycle tests speak. One
//! request per connection, mirroring the server's `Connection: close`
//! contract.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
    connect_retries: u32,
    retry_base: Duration,
}

/// A completed exchange.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`), with a 60 s
    /// read/write timeout and no connect retries.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(60),
            connect_retries: 0,
            retry_base: Duration::from_millis(100),
        }
    }

    /// The same client with `timeout` as its read/write timeout. A
    /// long-poll `events` call needs a timeout comfortably above its
    /// `wait_ms`.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The same client retrying a refused/failed *connect* up to
    /// `retries` times with doubling backoff from `base` — for talking to
    /// a daemon that is mid-restart. Only connection establishment is
    /// retried (nothing has been sent yet, so this is safe for
    /// non-idempotent requests too).
    #[must_use]
    pub fn connect_retries(mut self, retries: u32, base: Duration) -> Client {
        self.connect_retries = retries;
        self.retry_base = base;
        self
    }

    /// Connects to the daemon, retrying per [`Client::connect_retries`].
    fn connect(&self) -> io::Result<TcpStream> {
        let mut delay = self.retry_base;
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(stream) => return Ok(stream),
                Err(e) if attempt < self.connect_retries => {
                    let _ = e;
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Performs one `method path` exchange with an optional body.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let mut stream = self.connect()?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        // Half-close: the server may answer (413, 400) without reading the
        // whole body; signalling end-of-request lets it drain and respond
        // instead of both sides waiting on the other's EOF.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post(&self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn delete(&self, path: &str) -> io::Result<ClientResponse> {
        self.request("DELETE", path, None)
    }

    /// Submits a job: `spec_json` is the spec document, `netlist` the
    /// ILANG source. Returns the server's `{"id","state","cached"}` body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn submit(&self, spec_json: &str, netlist: &str) -> io::Result<ClientResponse> {
        let body = format!(
            "{{\"spec\":{spec_json},\"netlist\":{}}}",
            quote_json_string(netlist)
        );
        self.post("/v1/jobs", body.as_bytes())
    }

    /// Fetches job `id`'s progress events from line `since` on;
    /// `wait_ms > 0` long-polls (the server blocks until a new event, a
    /// terminal state, or the wait expires).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn events(&self, id: &str, since: usize, wait_ms: u64) -> io::Result<ClientResponse> {
        self.get(&format!(
            "/v1/jobs/{id}/events?since={since}&wait_ms={wait_ms}"
        ))
    }
}

/// Renders `s` as a JSON string literal (quotes included).
fn quote_json_string(s: &str) -> String {
    format!("\"{}\"", walshcheck_core::report::json_escape(s))
}

fn parse_response(raw: &[u8]) -> io::Result<ClientResponse> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::other("no header/body separator in response"))?;
    let head = std::str::from_utf8(&raw[..split])
        .map_err(|_| io::Error::other("response head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line {status_line:?}")))?;
    Ok(ClientResponse {
        status,
        body: raw[split + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses() {
        let r =
            parse_response(b"HTTP/1.1 201 Created\r\nContent-Length: 2\r\n\r\nok").expect("parses");
        assert_eq!(r.status, 201);
        assert_eq!(r.text(), "ok");
        assert!(parse_response(b"garbage").is_err());
    }

    #[test]
    fn quotes_ilang_strings() {
        assert_eq!(quote_json_string("a\nb\"c"), "\"a\\nb\\\"c\"");
    }
}
