//! The content-addressed artifact store.
//!
//! One directory per job under `<root>/jobs/<id>/`, a top-level
//! `index.json` summarising every job, and atomic (temp + rename) writes
//! throughout so a killed daemon never leaves a half-written file:
//!
//! ```text
//! store/
//! ├── index.json            walshcheck-index/2: id → {state, report_hash, …}
//! ├── quarantine/           artifacts the integrity scan pulled aside
//! └── jobs/<id>/
//!     ├── spec.json         full JobSpec, canonical JSON
//!     ├── netlist.il        the submitted ILANG netlist, verbatim
//!     ├── status.json       JobRecord snapshot (state machine source of truth)
//!     ├── checkpoint.ck     walshcheck-checkpoint/1 (while running)
//!     ├── events.jsonl      one progress event per line, append-only
//!     ├── report.json       the walshcheck-report/5 artifact (canonical bytes)
//!     └── run.json          full run report (timings, cache counters)
//! ```
//!
//! The job id *is* the content address: the first 16 hex digits of
//! `SHA-256(netlist_sha256 ∥ "\n" ∥ spec identity JSON)`. Identical
//! submissions always map to the same directory, which is how resubmission
//! becomes a disk read instead of a recomputation.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use walshcheck_core::hash::sha256_hex;

/// Number of leading hex digits of the cache key used as the job id.
/// 64 bits of the hash — collisions would need ~2³² distinct jobs in one
/// store.
pub const ID_LEN: usize = 16;

/// Derives the job id from the two halves of the cache identity.
pub fn job_id(netlist_sha256: &str, identity_json: &str) -> String {
    let key = sha256_hex(format!("{netlist_sha256}\n{identity_json}").as_bytes());
    key[..ID_LEN].to_string()
}

/// A handle on one store directory. Cheap to clone; all state is on disk.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("jobs"))?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of job `id` (not necessarily existing yet).
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(id)
    }

    /// Path of `file` inside job `id`'s directory.
    pub fn job_file(&self, id: &str, file: &str) -> PathBuf {
        self.job_dir(id).join(file)
    }

    /// Creates job `id`'s directory.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn create_job(&self, id: &str) -> io::Result<()> {
        fs::create_dir_all(self.job_dir(id))
    }

    /// Whether job `id` has a directory in the store.
    pub fn has_job(&self, id: &str) -> bool {
        self.job_dir(id).is_dir()
    }

    /// Every job id present in the store, sorted.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn job_ids(&self) -> io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(self.root.join("jobs"))? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                if let Ok(name) = entry.file_name().into_string() {
                    ids.push(name);
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Atomically replaces `file` of job `id` with `bytes` (write to a
    /// dot-temp sibling, fsync, rename) — a crash leaves either the old
    /// content or the new, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_job_file(&self, id: &str, file: &str, bytes: &[u8]) -> io::Result<()> {
        #[cfg(feature = "fault-inject")]
        if walshcheck_core::fault::string_directive("store-torn-write").as_deref() == Some(file) {
            // Simulate a torn write: half the bytes land at the final path
            // with no temp file and no rename — the startup integrity scan
            // is what has to catch this.
            return fs::write(self.job_file(id, file), &bytes[..bytes.len() / 2]);
        }
        write_atomic(&self.job_file(id, file), bytes)
    }

    /// SHA-256 (lowercase hex) of `file` of job `id`, read as raw bytes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error (`NotFound` when the
    /// file does not exist).
    pub fn job_file_sha256(&self, id: &str, file: &str) -> io::Result<String> {
        Ok(sha256_hex(&fs::read(self.job_file(id, file))?))
    }

    /// Moves `file` of job `id` into `<root>/quarantine/<id>-<file>`,
    /// replacing any earlier quarantined copy of the same name. Used by
    /// the startup integrity scan on artifacts whose recorded hash no
    /// longer matches the bytes on disk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn quarantine_job_file(&self, id: &str, file: &str) -> io::Result<PathBuf> {
        let dir = self.root.join("quarantine");
        fs::create_dir_all(&dir)?;
        let dest = dir.join(format!("{id}-{file}"));
        fs::rename(self.job_file(id, file), &dest)?;
        Ok(dest)
    }

    /// Moves job `id`'s whole directory into `<root>/quarantine/<id>`,
    /// replacing any earlier quarantined copy. Used when a job directory
    /// is too damaged to rebuild a record from (unreadable `status.json`
    /// *and* unreadable spec or netlist).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn quarantine_job_dir(&self, id: &str) -> io::Result<PathBuf> {
        let dir = self.root.join("quarantine");
        fs::create_dir_all(&dir)?;
        let dest = dir.join(id);
        let _ = fs::remove_dir_all(&dest);
        fs::rename(self.job_dir(id), &dest)?;
        Ok(dest)
    }

    /// Reads `file` of job `id` as a string.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error (`NotFound` when the
    /// file was never written).
    pub fn read_job_file(&self, id: &str, file: &str) -> io::Result<String> {
        fs::read_to_string(self.job_file(id, file))
    }

    /// Appends `line` (newline-terminated by this call) to job `id`'s
    /// `events.jsonl`.
    ///
    /// The line and its terminator go down in a single `write` so that
    /// concurrent appenders — scheduler workers each observing progress —
    /// cannot interleave mid-line: `O_APPEND` serializes whole writes,
    /// not pairs of them.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn append_event(&self, id: &str, line: &str) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.job_file(id, "events.jsonl"))?;
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        f.write_all(&buf)
    }

    /// Atomically replaces the top-level `index.json` with `bytes`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_index(&self, bytes: &[u8]) -> io::Result<()> {
        write_atomic(&self.root.join("index.json"), bytes)
    }
}

/// Temp + fsync + rename in the destination directory (same pattern as
/// `walshcheck-core`'s checkpoint writer).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "file".into())
    ));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("walshcheckd-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(&dir).expect("open")
    }

    #[test]
    fn job_id_is_stable_and_input_sensitive() {
        let a = job_id("aa", "{\"x\":1}");
        assert_eq!(a.len(), ID_LEN);
        assert_eq!(a, job_id("aa", "{\"x\":1}"));
        assert_ne!(a, job_id("ab", "{\"x\":1}"));
        assert_ne!(a, job_id("aa", "{\"x\":2}"));
    }

    #[test]
    fn files_round_trip_and_events_append() {
        let store = temp_store("rt");
        store.create_job("cafe").expect("create");
        assert!(store.has_job("cafe"));
        store
            .write_job_file("cafe", "status.json", b"{\"state\":\"queued\"}")
            .expect("write");
        assert_eq!(
            store.read_job_file("cafe", "status.json").expect("read"),
            "{\"state\":\"queued\"}"
        );
        // Atomic replace leaves no temp file behind.
        store
            .write_job_file("cafe", "status.json", b"{\"state\":\"done\"}")
            .expect("rewrite");
        assert!(!store.job_file("cafe", ".status.json.tmp").exists());
        store.append_event("cafe", "{\"e\":1}").expect("append");
        store.append_event("cafe", "{\"e\":2}").expect("append");
        assert_eq!(
            store.read_job_file("cafe", "events.jsonl").expect("read"),
            "{\"e\":1}\n{\"e\":2}\n"
        );
        assert_eq!(store.job_ids().expect("ids"), vec!["cafe".to_string()]);
        let _ = fs::remove_dir_all(store.root());
    }
}
