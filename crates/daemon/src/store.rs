//! The content-addressed artifact store.
//!
//! One directory per job under `<root>/jobs/<id>/`, a top-level
//! `index.json` summarising every job, and atomic *durable* writes
//! (temp sibling, file fsync, rename, parent-directory fsync) throughout,
//! so neither a killed daemon nor a power loss leaves a half-written or
//! retroactively-undone file:
//!
//! ```text
//! store/
//! ├── index.json            walshcheck-index/2: id → {state, report_hash, …}
//! ├── quarantine/           artifacts the integrity scan pulled aside
//! └── jobs/<id>/
//!     ├── spec.json         full JobSpec, canonical JSON
//!     ├── netlist.il        the submitted ILANG netlist, verbatim
//!     ├── status.json       JobRecord snapshot (state machine source of truth)
//!     ├── checkpoint.ck     walshcheck-checkpoint/1 (while running)
//!     ├── events.jsonl      one progress event per line, append-only
//!     ├── report.json       the walshcheck-report/5 artifact (canonical bytes)
//!     └── run.json          full run report (timings, cache counters)
//! ```
//!
//! The job id *is* the content address: the first 16 hex digits of
//! `SHA-256(netlist_sha256 ∥ "\n" ∥ spec identity JSON)`. Identical
//! submissions always map to the same directory, which is how resubmission
//! becomes a disk read instead of a recomputation.
//!
//! ## Durability discipline (DESIGN.md §16)
//!
//! Every mutation goes through an injectable [`IoFs`] layer so the
//! crash-point explorer can trace and replay it. The barriers are:
//!
//! * **Published files** (`write_job_file`, `write_index`): temp sibling →
//!   file fsync → rename → parent-directory fsync. A rename without the
//!   trailing directory fsync is *not* durable — a crash can undo it.
//! * **Job directories**: `create_job` fsyncs `jobs/` after the mkdir, so
//!   a job directory cannot vanish from under files later synced into it.
//! * **Quarantine moves**: the destination *and* source directories are
//!   fsynced after the rename, so a file is never durably in both places.
//! * **State transitions**: callers write `status.json` before
//!   `index.json`; because each write is individually durable, the index
//!   can never durably reference a status that did not reach the disk.
//! * **Event appends** (`append_event`): one `O_APPEND` write per line;
//!   fsync policy per [`FsyncEvents`] — events are the one place where
//!   durability is traded against sweep throughput, and a torn or lost
//!   tail is tolerated by the reader.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use walshcheck_core::hash::sha256_hex;
use walshcheck_core::iofs::{atomic_replace, IoFs, RealFs};

/// Number of leading hex digits of the cache key used as the job id.
/// 64 bits of the hash — collisions would need ~2³² distinct jobs in one
/// store.
pub const ID_LEN: usize = 16;

/// How often `events.jsonl` appends are fsynced (the `--fsync-events`
/// CLI flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncEvents {
    /// Fsync after every appended line — maximum durability, one fsync
    /// per progress event.
    Always,
    /// Fsync every [`FsyncEvents::INTERVAL`]-th append — bounded loss,
    /// amortized cost. The default.
    #[default]
    Interval,
    /// Never fsync the event log; a crash may lose the unsynced tail
    /// (the reader already drops a torn final line).
    Never,
}

impl FsyncEvents {
    /// Append count between fsyncs in [`FsyncEvents::Interval`] mode.
    pub const INTERVAL: u64 = 32;

    /// Parses the CLI spelling (`always` | `interval` | `never`).
    pub fn parse(s: &str) -> Option<FsyncEvents> {
        Some(match s {
            "always" => FsyncEvents::Always,
            "interval" => FsyncEvents::Interval,
            "never" => FsyncEvents::Never,
            _ => return None,
        })
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncEvents::Always => "always",
            FsyncEvents::Interval => "interval",
            FsyncEvents::Never => "never",
        }
    }
}

/// Derives the job id from the two halves of the cache identity.
pub fn job_id(netlist_sha256: &str, identity_json: &str) -> String {
    let key = sha256_hex(format!("{netlist_sha256}\n{identity_json}").as_bytes());
    key[..ID_LEN].to_string()
}

/// A handle on one store directory. Cheap to clone; all state is on disk.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    fs: Arc<dyn IoFs>,
    fsync_events: FsyncEvents,
    event_seq: Arc<AtomicU64>,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`, with the
    /// default (real, fully-fsyncing) I/O layer and event policy.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        Store::open_with(root, RealFs::shared(), FsyncEvents::default())
    }

    /// Opens the store writing through `fs` with the given event-log
    /// fsync policy — how the crash-point explorer swaps in its tracing
    /// shim.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with(
        root: impl Into<PathBuf>,
        fs: Arc<dyn IoFs>,
        fsync_events: FsyncEvents,
    ) -> io::Result<Store> {
        let root = root.into();
        fs.create_dir_all(&root.join("jobs"))?;
        // Make the skeleton durable before anything is stored under it.
        fs.sync_dir(&root)?;
        Ok(Store {
            root,
            fs,
            fsync_events,
            event_seq: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The I/O layer this store writes through (shared with the
    /// checkpoint writer of jobs executed against this store).
    pub fn io(&self) -> &Arc<dyn IoFs> {
        &self.fs
    }

    /// The directory of job `id` (not necessarily existing yet).
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(id)
    }

    /// Path of `file` inside job `id`'s directory.
    pub fn job_file(&self, id: &str, file: &str) -> PathBuf {
        self.job_dir(id).join(file)
    }

    /// Creates job `id`'s directory and makes its entry durable (fsync of
    /// `jobs/`) *before* anything is written into it — otherwise a crash
    /// could lose the directory out from under fsynced files.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn create_job(&self, id: &str) -> io::Result<()> {
        self.fs.create_dir_all(&self.job_dir(id))?;
        self.fs.sync_dir(&self.root.join("jobs"))
    }

    /// Whether job `id` has a directory in the store.
    pub fn has_job(&self, id: &str) -> bool {
        self.job_dir(id).is_dir()
    }

    /// Every job id present in the store, sorted.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn job_ids(&self) -> io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(self.root.join("jobs"))? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                if let Ok(name) = entry.file_name().into_string() {
                    ids.push(name);
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Atomically and durably replaces `file` of job `id` with `bytes`
    /// (temp sibling, file fsync, rename, directory fsync) — a crash
    /// leaves either the old content or the new, never a torn file, and a
    /// completed call survives any later crash.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_job_file(&self, id: &str, file: &str, bytes: &[u8]) -> io::Result<()> {
        atomic_replace(&*self.fs, &self.job_file(id, file), bytes)
    }

    /// SHA-256 (lowercase hex) of `file` of job `id`, read as raw bytes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error (`NotFound` when the
    /// file does not exist).
    pub fn job_file_sha256(&self, id: &str, file: &str) -> io::Result<String> {
        Ok(sha256_hex(&std::fs::read(self.job_file(id, file))?))
    }

    /// Removes `file` of job `id` and makes the removal durable.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn remove_job_file(&self, id: &str, file: &str) -> io::Result<()> {
        self.fs.remove_file(&self.job_file(id, file))?;
        self.fs.sync_dir(&self.job_dir(id))
    }

    /// Moves `file` of job `id` into `<root>/quarantine/<id>-<file>`,
    /// replacing any earlier quarantined copy of the same name, and
    /// fsyncs both directories so the file is durably in exactly one
    /// place. Used by the startup integrity scan on artifacts whose
    /// recorded hash no longer matches the bytes on disk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn quarantine_job_file(&self, id: &str, file: &str) -> io::Result<PathBuf> {
        let dir = self.quarantine_dir()?;
        let dest = dir.join(format!("{id}-{file}"));
        self.fs.rename(&self.job_file(id, file), &dest)?;
        self.fs.sync_dir(&dir)?;
        self.fs.sync_dir(&self.job_dir(id))?;
        Ok(dest)
    }

    /// Moves job `id`'s whole directory into `<root>/quarantine/<id>`,
    /// replacing any earlier quarantined copy, and fsyncs both parents.
    /// Used when a job directory is too damaged to rebuild a record from
    /// (unreadable `status.json` *and* unreadable spec or netlist).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn quarantine_job_dir(&self, id: &str) -> io::Result<PathBuf> {
        let dir = self.quarantine_dir()?;
        let dest = dir.join(id);
        let _ = self.fs.remove_dir_all(&dest);
        self.fs.rename(&self.job_dir(id), &dest)?;
        self.fs.sync_dir(&dir)?;
        self.fs.sync_dir(&self.root.join("jobs"))?;
        Ok(dest)
    }

    /// Creates (durably) and returns the quarantine directory.
    fn quarantine_dir(&self) -> io::Result<PathBuf> {
        let dir = self.root.join("quarantine");
        self.fs.create_dir_all(&dir)?;
        self.fs.sync_dir(&self.root)?;
        Ok(dir)
    }

    /// Removes stale `.…​.tmp` siblings a crash mid-`atomic_replace` may
    /// have left in the root or any job directory. Returns how many were
    /// swept. Called by the startup integrity scan; stray temp files are
    /// never read, but sweeping them keeps the tree canonical.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures (missing dirs are fine).
    pub fn sweep_temp_files(&self) -> io::Result<usize> {
        let mut swept = 0;
        let mut dirs = vec![self.root.clone()];
        dirs.extend(self.job_ids()?.iter().map(|id| self.job_dir(id)));
        for dir in dirs {
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if entry.file_type()?.is_file() && name.starts_with('.') && name.ends_with(".tmp") {
                    self.fs.remove_file(&entry.path())?;
                    swept += 1;
                }
            }
            if swept > 0 {
                self.fs.sync_dir(&dir)?;
            }
        }
        Ok(swept)
    }

    /// Reads `file` of job `id` as a string.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error (`NotFound` when the
    /// file was never written).
    pub fn read_job_file(&self, id: &str, file: &str) -> io::Result<String> {
        std::fs::read_to_string(self.job_file(id, file))
    }

    /// Appends `line` (newline-terminated by this call) to job `id`'s
    /// `events.jsonl`.
    ///
    /// The line and its terminator go down in a single `write` so that
    /// concurrent appenders — scheduler workers each observing progress —
    /// cannot interleave mid-line: `O_APPEND` serializes whole writes,
    /// not pairs of them. Durability follows the store's [`FsyncEvents`]
    /// policy; a crash may lose an unsynced tail, which the events reader
    /// tolerates (whole-line loss plus at most one torn final line).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn append_event(&self, id: &str, line: &str) -> io::Result<()> {
        let path = self.job_file(id, "events.jsonl");
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.fs.append(&path, &buf)?;
        let n = self.event_seq.fetch_add(1, Ordering::Relaxed) + 1;
        match self.fsync_events {
            FsyncEvents::Always => self.fs.sync_file(&path),
            FsyncEvents::Interval if n.is_multiple_of(FsyncEvents::INTERVAL) => {
                self.fs.sync_file(&path)
            }
            _ => Ok(()),
        }
    }

    /// Atomically and durably replaces the top-level `index.json` with
    /// `bytes`. Callers persist `status.json` *first*: each write's
    /// trailing fsyncs make that ordering a durability barrier, so the
    /// index never durably references a job state that is not itself on
    /// disk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_index(&self, bytes: &[u8]) -> io::Result<()> {
        atomic_replace(&*self.fs, &self.root.join("index.json"), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("walshcheckd-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(&dir).expect("open")
    }

    #[test]
    fn job_id_is_stable_and_input_sensitive() {
        let a = job_id("aa", "{\"x\":1}");
        assert_eq!(a.len(), ID_LEN);
        assert_eq!(a, job_id("aa", "{\"x\":1}"));
        assert_ne!(a, job_id("ab", "{\"x\":1}"));
        assert_ne!(a, job_id("aa", "{\"x\":2}"));
    }

    #[test]
    fn files_round_trip_and_events_append() {
        let store = temp_store("rt");
        store.create_job("cafe").expect("create");
        assert!(store.has_job("cafe"));
        store
            .write_job_file("cafe", "status.json", b"{\"state\":\"queued\"}")
            .expect("write");
        assert_eq!(
            store.read_job_file("cafe", "status.json").expect("read"),
            "{\"state\":\"queued\"}"
        );
        // Atomic replace leaves no temp file behind.
        store
            .write_job_file("cafe", "status.json", b"{\"state\":\"done\"}")
            .expect("rewrite");
        assert!(!store.job_file("cafe", ".status.json.tmp").exists());
        store.append_event("cafe", "{\"e\":1}").expect("append");
        store.append_event("cafe", "{\"e\":2}").expect("append");
        assert_eq!(
            store.read_job_file("cafe", "events.jsonl").expect("read"),
            "{\"e\":1}\n{\"e\":2}\n"
        );
        assert_eq!(store.job_ids().expect("ids"), vec!["cafe".to_string()]);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn fsync_events_parses_the_cli_spellings() {
        assert_eq!(FsyncEvents::parse("always"), Some(FsyncEvents::Always));
        assert_eq!(FsyncEvents::parse("interval"), Some(FsyncEvents::Interval));
        assert_eq!(FsyncEvents::parse("never"), Some(FsyncEvents::Never));
        assert_eq!(FsyncEvents::parse("sometimes"), None);
        for mode in [
            FsyncEvents::Always,
            FsyncEvents::Interval,
            FsyncEvents::Never,
        ] {
            assert_eq!(FsyncEvents::parse(mode.as_str()), Some(mode));
        }
    }

    #[test]
    fn sweep_removes_stale_temp_files_only() {
        let store = temp_store("sweep");
        store.create_job("cafe").expect("create");
        store
            .write_job_file("cafe", "status.json", b"{}")
            .expect("write");
        std::fs::write(store.job_file("cafe", ".report.json.tmp"), b"half").expect("stray");
        std::fs::write(store.root().join(".index.json.tmp"), b"half").expect("stray");
        assert_eq!(store.sweep_temp_files().expect("sweep"), 2);
        assert!(!store.job_file("cafe", ".report.json.tmp").exists());
        assert!(store.job_file("cafe", "status.json").exists());
        assert_eq!(store.sweep_temp_files().expect("resweep"), 0);
        let _ = std::fs::remove_dir_all(store.root());
    }
}
