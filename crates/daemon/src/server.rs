//! The daemon itself: socket, routing, lifecycle, runner supervision.
//!
//! [`Daemon::bind`] opens the store, recovers the queue, and binds the
//! listener; [`Daemon::run`] spawns the runner pool and serves
//! connections until the process-global shutdown flag
//! ([`walshcheck_core::shutdown`]) is raised — by a SIGTERM/SIGINT handler
//! in the binary, or programmatically in tests. Shutdown is graceful: the
//! listener stops accepting, every in-flight sweep checkpoints and
//! returns (its job is marked `interrupted` and auto-resumes on the next
//! start), and `run` returns.
//!
//! The accept loop doubles as the supervisor: between accepts it beats
//! [`JobManager::tick`] (job deadlines, retry backoff) and respawns any
//! runner thread that retired after a caught panic, so a poisoned sweep
//! costs one job, never the service. Connections are capped
//! ([`DaemonConfig::max_connections`]); past the cap the daemon answers
//! `503` with `Retry-After` instead of spawning threads without bound.
//!
//! ## Routes
//!
//! | Method + path                 | Meaning                                   |
//! |-------------------------------|-------------------------------------------|
//! | `GET /v1/health`              | liveness + version                        |
//! | `POST /v1/jobs`               | submit `{"spec":…,"netlist":"<ILANG>"}`   |
//! | `GET /v1/jobs`                | list all jobs                             |
//! | `GET /v1/jobs/{id}`           | one job's status                          |
//! | `GET /v1/jobs/{id}/report`    | the report/5 artifact, verbatim bytes     |
//! | `GET /v1/jobs/{id}/events?since=N&wait_ms=M` | progress events from line N; `wait_ms` long-polls |
//! | `POST /v1/jobs/{id}/resume`   | re-enqueue a killed/interrupted/failed/timed-out job |
//! | `DELETE /v1/jobs/{id}`        | kill a queued/running job                 |

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use walshcheck_core::json;
use walshcheck_core::shutdown;

use crate::http::{self, read_request, Request, Response};
use crate::jobs::{ApiError, JobManager, JobRecord, PoolConfig};
use crate::store::{FsyncEvents, Store};
use walshcheck_core::iofs::RealFs;

/// How the daemon is configured.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root directory of the artifact store.
    pub store: PathBuf,
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub listen: String,
    /// Minimum interval between checkpoint writes of a running job
    /// ([`Duration::ZERO`] writes after every batch — what the lifecycle
    /// tests use).
    pub checkpoint_every: Duration,
    /// Request-body cap; larger submissions are rejected with 413.
    pub max_body: usize,
    /// Size of the runner pool (how many jobs sweep concurrently).
    pub runners: usize,
    /// Automatic retries per `failed`/`timed-out` job (0 disables).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry, capped at 30 s.
    pub retry_base: Duration,
    /// Concurrent-connection cap; excess connections get `503` with
    /// `Retry-After` instead of a thread.
    pub max_connections: usize,
    /// Event-log durability policy (the `--fsync-events` CLI flag):
    /// how often `events.jsonl` appends are fsynced.
    pub fsync_events: FsyncEvents,
}

impl DaemonConfig {
    /// The default configuration over `store`: ephemeral port, 2 s
    /// checkpoint interval, 8 MiB body cap, no automatic retries,
    /// 128-connection cap, and a runner pool sized by the
    /// `WALSHCHECKD_RUNNERS` environment variable (default 1 — the
    /// byte-compatible single-runner behavior).
    pub fn new(store: impl Into<PathBuf>) -> DaemonConfig {
        let runners = std::env::var("WALSHCHECKD_RUNNERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1);
        DaemonConfig {
            store: store.into(),
            listen: "127.0.0.1:0".into(),
            checkpoint_every: Duration::from_secs(2),
            max_body: http::DEFAULT_MAX_BODY,
            runners,
            max_retries: 0,
            retry_base: Duration::from_millis(500),
            max_connections: 128,
            fsync_events: FsyncEvents::default(),
        }
    }
}

/// A bound, not-yet-serving daemon.
pub struct Daemon {
    listener: TcpListener,
    addr: SocketAddr,
    manager: Arc<JobManager>,
    max_body: usize,
    runners: usize,
    gate: Arc<ConnGate>,
}

impl Daemon {
    /// Opens the store, recovers queue state (including the artifact
    /// integrity scan), binds the listener and records the bound address
    /// in `<store>/daemon.addr` (so the CLI and tests can find an
    /// ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates store and socket failures.
    pub fn bind(config: &DaemonConfig) -> io::Result<Daemon> {
        let store = Store::open_with(&config.store, RealFs::shared(), config.fsync_events)?;
        let pool = PoolConfig {
            max_retries: config.max_retries,
            retry_base: config.retry_base,
        };
        let manager = JobManager::open(store.clone(), config.checkpoint_every, pool)
            .map_err(|e| io::Error::other(e.message))?;
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        std::fs::write(store.root().join("daemon.addr"), format!("{addr}\n"))?;
        Ok(Daemon {
            listener,
            addr,
            manager: Arc::new(manager),
            max_body: config.max_body,
            runners: config.runners.max(1),
            gate: Arc::new(ConnGate::new(config.max_connections.max(1))),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job manager (for in-process inspection in tests).
    pub fn manager(&self) -> &Arc<JobManager> {
        &self.manager
    }

    /// Serves until the shutdown flag is raised, then drains gracefully.
    /// Consumes the daemon; the listener closes on return.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (transient accept errors are
    /// retried, not propagated).
    pub fn run(self) -> io::Result<()> {
        let mut runners: Vec<JoinHandle<()>> = (0..self.runners)
            .map(|i| self.spawn_runner(i))
            .collect::<io::Result<_>>()?;
        loop {
            // Daemon stop is the *only* raiser of the global flag now —
            // kills and deadlines go through per-job interrupt tokens —
            // so a raised flag always means "stop serving".
            if shutdown::requested() {
                break;
            }
            self.supervise(&mut runners)?;
            match self.listener.accept() {
                Ok((stream, _peer)) => match self.gate.acquire() {
                    Some(permit) => {
                        let manager = Arc::clone(&self.manager);
                        let max_body = self.max_body;
                        // One thread per connection; Connection: close
                        // keeps lifetimes trivially bounded, the gate
                        // keeps their number bounded.
                        let _ = std::thread::Builder::new()
                            .name("walshcheckd-conn".into())
                            .spawn(move || {
                                let _permit = permit;
                                handle_connection(stream, &manager, max_body);
                            });
                    }
                    None => {
                        // Saturated: answer on the accept thread — tiny
                        // write, no request read — and move on.
                        let mut stream = stream;
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                        let _ = Response::error(503, "connection limit reached")
                            .with_header("Retry-After", "1")
                            .write_to(&mut stream);
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Shutdown: the flag also interrupts the in-flight sweeps; the
        // runners mark their jobs interrupted and exit once told to stop.
        self.manager.stop();
        for handle in runners {
            let _ = handle.join();
        }
        Ok(())
    }

    /// One supervisor beat: job deadlines + retry backoff, and respawning
    /// any runner that retired after a caught panic.
    fn supervise(&self, runners: &mut [JoinHandle<()>]) -> io::Result<()> {
        self.manager.tick();
        if self.manager.stopping() {
            return Ok(());
        }
        for (i, slot) in runners.iter_mut().enumerate() {
            if slot.is_finished() {
                let _ = std::mem::replace(slot, self.spawn_runner(i)?).join();
            }
        }
        Ok(())
    }

    fn spawn_runner(&self, index: usize) -> io::Result<JoinHandle<()>> {
        let manager = Arc::clone(&self.manager);
        std::thread::Builder::new()
            .name(format!("walshcheckd-runner-{index}"))
            .spawn(move || manager.run_loop())
    }
}

/// A counting semaphore over the connection threads. `std` has no
/// semaphore; a mutex-guarded counter with an RAII permit is all the
/// accept loop needs (acquisition never blocks — saturation is answered,
/// not queued).
struct ConnGate {
    active: Mutex<usize>,
    limit: usize,
}

/// RAII side of [`ConnGate`]: releases the slot on drop, whatever path
/// the connection thread exits through.
struct ConnPermit {
    gate: Arc<ConnGate>,
}

impl ConnGate {
    fn new(limit: usize) -> ConnGate {
        ConnGate {
            active: Mutex::new(0),
            limit,
        }
    }

    fn acquire(self: &Arc<Self>) -> Option<ConnPermit> {
        let mut active = self
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if *active >= self.limit {
            return None;
        }
        *active += 1;
        Some(ConnPermit {
            gate: Arc::clone(self),
        })
    }
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        let mut active = self
            .gate
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *active = active.saturating_sub(1);
    }
}

fn handle_connection(mut stream: TcpStream, manager: &Arc<JobManager>, max_body: usize) {
    // Accepted sockets should block; inherit-nonblocking behavior varies.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let (response, drain) = match read_request(&mut stream, max_body) {
        Ok(request) => (route(&request, manager), false),
        Err(e) => (Response::error(e.status, &e.message), true),
    };
    let _ = response.write_to(&mut stream);
    if drain {
        // A rejected request (413, malformed) leaves unread body bytes on
        // the socket; closing now would RST the response out of the
        // client's receive buffer. Discard a bounded remainder until the
        // client's half-close instead (the read timeout caps a stuck peer).
        use std::io::Read as _;
        let _ = std::io::copy(
            &mut (&mut stream).take(32 * 1024 * 1024),
            &mut std::io::sink(),
        );
    }
}

fn record_json(record: &JobRecord) -> String {
    record.to_json().to_canonical()
}

fn api_result(result: Result<Response, ApiError>) -> Response {
    result.unwrap_or_else(|e| Response::error(e.status, &e.message))
}

/// Dispatches one request to the manager.
fn route(request: &Request, manager: &Arc<JobManager>) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "health"]) => Response::json(
            200,
            format!(
                "{{\"ok\":true,\"service\":\"walshcheckd\",\"version\":\"{}\"}}",
                env!("CARGO_PKG_VERSION")
            ),
        ),
        (_, ["v1", "health"]) => Response::error(405, "health is GET-only"),
        ("POST", ["v1", "jobs"]) => api_result(submit(request, manager)),
        ("GET", ["v1", "jobs"]) => {
            let jobs: Vec<String> = manager.list().iter().map(record_json).collect();
            Response::json(200, format!("{{\"jobs\":[{}]}}", jobs.join(",")))
        }
        (_, ["v1", "jobs"]) => Response::error(405, "jobs is GET/POST-only"),
        ("GET", ["v1", "jobs", id]) => api_result(
            manager
                .status(id)
                .map(|r| Response::json(200, record_json(&r))),
        ),
        ("DELETE", ["v1", "jobs", id]) => api_result(manager.kill(id).map(|state| {
            Response::json(
                202,
                format!(
                    "{{\"id\":\"{id}\",\"killing\":true,\"was\":\"{}\"}}",
                    state.as_str()
                ),
            )
        })),
        (_, ["v1", "jobs", _id]) => Response::error(405, "job is GET/DELETE-only"),
        ("GET", ["v1", "jobs", id, "report"]) => {
            api_result(manager.report(id).map(|body| Response::json(200, body)))
        }
        ("GET", ["v1", "jobs", id, "events"]) => {
            let since = request
                .query_param("since")
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(0);
            let wait_ms = request
                .query_param("wait_ms")
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            api_result(
                manager
                    .events(id, since, wait_ms)
                    .map(|body| Response::json(200, body)),
            )
        }
        ("POST", ["v1", "jobs", id, "resume"]) => api_result(manager.resume(id).map(|state| {
            Response::json(
                200,
                format!("{{\"id\":\"{id}\",\"state\":\"{}\"}}", state.as_str()),
            )
        })),
        _ => Response::error(
            404,
            &format!("no route {} {}", request.method, request.path),
        ),
    }
}

fn submit(request: &Request, manager: &Arc<JobManager>) -> Result<Response, ApiError> {
    let text = std::str::from_utf8(&request.body).map_err(|_| ApiError {
        status: 400,
        message: "body is not UTF-8".into(),
    })?;
    let doc = json::parse(text).map_err(|e| ApiError {
        status: 400,
        message: format!("body: {e}"),
    })?;
    let spec = doc.get("spec").ok_or(ApiError {
        status: 400,
        message: "body needs a \"spec\" object".into(),
    })?;
    let netlist = doc
        .get("netlist")
        .and_then(json::Json::as_str)
        .ok_or(ApiError {
            status: 400,
            message: "body needs a \"netlist\" ILANG string".into(),
        })?;
    let submitted = manager.submit(spec, netlist)?;
    let status = if submitted.created { 201 } else { 200 };
    Ok(Response::json(
        status,
        format!(
            "{{\"id\":\"{}\",\"state\":\"{}\",\"cached\":{}}}",
            submitted.id,
            submitted.state.as_str(),
            submitted.cached
        ),
    ))
}
