//! The daemon itself: socket, routing, lifecycle.
//!
//! [`Daemon::bind`] opens the store, recovers the queue, and binds the
//! listener; [`Daemon::run`] spawns the single runner thread and serves
//! connections until the process-global shutdown flag
//! ([`walshcheck_core::shutdown`]) is raised — by a SIGTERM/SIGINT handler
//! in the binary, or programmatically in tests. Shutdown is graceful: the
//! listener stops accepting, the in-flight sweep checkpoints and returns
//! (its job is marked `interrupted` and auto-resumes on the next start),
//! and `run` returns.
//!
//! ## Routes
//!
//! | Method + path                 | Meaning                                   |
//! |-------------------------------|-------------------------------------------|
//! | `GET /v1/health`              | liveness + version                        |
//! | `POST /v1/jobs`               | submit `{"spec":…,"netlist":"<ILANG>"}`   |
//! | `GET /v1/jobs`                | list all jobs                             |
//! | `GET /v1/jobs/{id}`           | one job's status                          |
//! | `GET /v1/jobs/{id}/report`    | the report/5 artifact, verbatim bytes     |
//! | `GET /v1/jobs/{id}/events?since=N` | progress events from line N          |
//! | `POST /v1/jobs/{id}/resume`   | re-enqueue a killed/interrupted job       |
//! | `DELETE /v1/jobs/{id}`        | kill a queued/running job                 |

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use walshcheck_core::json;
use walshcheck_core::shutdown;

use crate::http::{self, read_request, Request, Response};
use crate::jobs::{ApiError, JobManager, JobRecord};
use crate::store::Store;

/// How the daemon is configured.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root directory of the artifact store.
    pub store: PathBuf,
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub listen: String,
    /// Minimum interval between checkpoint writes of a running job
    /// ([`Duration::ZERO`] writes after every batch — what the lifecycle
    /// tests use).
    pub checkpoint_every: Duration,
    /// Request-body cap; larger submissions are rejected with 413.
    pub max_body: usize,
}

impl DaemonConfig {
    /// The default configuration over `store`: ephemeral port, 2 s
    /// checkpoint interval, 8 MiB body cap.
    pub fn new(store: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            store: store.into(),
            listen: "127.0.0.1:0".into(),
            checkpoint_every: Duration::from_secs(2),
            max_body: http::DEFAULT_MAX_BODY,
        }
    }
}

/// A bound, not-yet-serving daemon.
pub struct Daemon {
    listener: TcpListener,
    addr: SocketAddr,
    manager: Arc<JobManager>,
    max_body: usize,
}

impl Daemon {
    /// Opens the store, recovers queue state, binds the listener and
    /// records the bound address in `<store>/daemon.addr` (so the CLI and
    /// tests can find an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates store and socket failures.
    pub fn bind(config: &DaemonConfig) -> io::Result<Daemon> {
        let store = Store::open(&config.store)?;
        let manager = JobManager::open(store.clone(), config.checkpoint_every)
            .map_err(|e| io::Error::other(e.message))?;
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        std::fs::write(store.root().join("daemon.addr"), format!("{addr}\n"))?;
        Ok(Daemon {
            listener,
            addr,
            manager: Arc::new(manager),
            max_body: config.max_body,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job manager (for in-process inspection in tests).
    pub fn manager(&self) -> &Arc<JobManager> {
        &self.manager
    }

    /// Serves until the shutdown flag is raised, then drains gracefully.
    /// Consumes the daemon; the listener closes on return.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (transient accept errors are
    /// retried, not propagated).
    pub fn run(self) -> io::Result<()> {
        let runner = {
            let manager = Arc::clone(&self.manager);
            std::thread::Builder::new()
                .name("walshcheckd-runner".into())
                .spawn(move || manager.run_loop())?
        };
        loop {
            // The flag is shared between daemon stop and job kills: while a
            // kill is draining the running sweep, the raise is the kill's,
            // and the daemon keeps serving (the runner clears the flag once
            // the job parks). A SIGTERM landing inside that kill window is
            // coalesced into the kill — documented, and recoverable by a
            // second signal.
            if shutdown::requested() && !self.manager.kill_in_progress() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let manager = Arc::clone(&self.manager);
                    let max_body = self.max_body;
                    // One thread per connection; Connection: close keeps
                    // lifetimes trivially bounded.
                    let _ = std::thread::Builder::new()
                        .name("walshcheckd-conn".into())
                        .spawn(move || handle_connection(stream, &manager, max_body));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Shutdown: the flag also interrupts the in-flight sweep; the
        // runner marks it interrupted and exits once told to stop.
        self.manager.stop();
        let _ = runner.join();
        Ok(())
    }
}

fn handle_connection(mut stream: TcpStream, manager: &Arc<JobManager>, max_body: usize) {
    // Accepted sockets should block; inherit-nonblocking behavior varies.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let (response, drain) = match read_request(&mut stream, max_body) {
        Ok(request) => (route(&request, manager), false),
        Err(e) => (Response::error(e.status, &e.message), true),
    };
    let _ = response.write_to(&mut stream);
    if drain {
        // A rejected request (413, malformed) leaves unread body bytes on
        // the socket; closing now would RST the response out of the
        // client's receive buffer. Discard a bounded remainder until the
        // client's half-close instead (the read timeout caps a stuck peer).
        use std::io::Read as _;
        let _ = std::io::copy(
            &mut (&mut stream).take(32 * 1024 * 1024),
            &mut std::io::sink(),
        );
    }
}

fn record_json(record: &JobRecord) -> String {
    record.to_json().to_canonical()
}

fn api_result(result: Result<Response, ApiError>) -> Response {
    result.unwrap_or_else(|e| Response::error(e.status, &e.message))
}

/// Dispatches one request to the manager.
fn route(request: &Request, manager: &Arc<JobManager>) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "health"]) => Response::json(
            200,
            format!(
                "{{\"ok\":true,\"service\":\"walshcheckd\",\"version\":\"{}\"}}",
                env!("CARGO_PKG_VERSION")
            ),
        ),
        (_, ["v1", "health"]) => Response::error(405, "health is GET-only"),
        ("POST", ["v1", "jobs"]) => api_result(submit(request, manager)),
        ("GET", ["v1", "jobs"]) => {
            let jobs: Vec<String> = manager.list().iter().map(record_json).collect();
            Response::json(200, format!("{{\"jobs\":[{}]}}", jobs.join(",")))
        }
        (_, ["v1", "jobs"]) => Response::error(405, "jobs is GET/POST-only"),
        ("GET", ["v1", "jobs", id]) => api_result(
            manager
                .status(id)
                .map(|r| Response::json(200, record_json(&r))),
        ),
        ("DELETE", ["v1", "jobs", id]) => api_result(manager.kill(id).map(|state| {
            Response::json(
                202,
                format!(
                    "{{\"id\":\"{id}\",\"killing\":true,\"was\":\"{}\"}}",
                    state.as_str()
                ),
            )
        })),
        (_, ["v1", "jobs", _id]) => Response::error(405, "job is GET/DELETE-only"),
        ("GET", ["v1", "jobs", id, "report"]) => {
            api_result(manager.report(id).map(|body| Response::json(200, body)))
        }
        ("GET", ["v1", "jobs", id, "events"]) => {
            let since = request
                .query_param("since")
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(0);
            api_result(
                manager
                    .events(id, since)
                    .map(|body| Response::json(200, body)),
            )
        }
        ("POST", ["v1", "jobs", id, "resume"]) => api_result(manager.resume(id).map(|state| {
            Response::json(
                200,
                format!("{{\"id\":\"{id}\",\"state\":\"{}\"}}", state.as_str()),
            )
        })),
        _ => Response::error(
            404,
            &format!("no route {} {}", request.method, request.path),
        ),
    }
}

fn submit(request: &Request, manager: &Arc<JobManager>) -> Result<Response, ApiError> {
    let text = std::str::from_utf8(&request.body).map_err(|_| ApiError {
        status: 400,
        message: "body is not UTF-8".into(),
    })?;
    let doc = json::parse(text).map_err(|e| ApiError {
        status: 400,
        message: format!("body: {e}"),
    })?;
    let spec = doc.get("spec").ok_or(ApiError {
        status: 400,
        message: "body needs a \"spec\" object".into(),
    })?;
    let netlist = doc
        .get("netlist")
        .and_then(json::Json::as_str)
        .ok_or(ApiError {
            status: 400,
            message: "body needs a \"netlist\" ILANG string".into(),
        })?;
    let submitted = manager.submit(spec, netlist)?;
    let status = if submitted.created { 201 } else { 200 };
    Ok(Response::json(
        status,
        format!(
            "{{\"id\":\"{}\",\"state\":\"{}\",\"cached\":{}}}",
            submitted.id,
            submitted.state.as_str(),
            submitted.cached
        ),
    ))
}
