//! The job queue: states, records, the runner pool, restart recovery.
//!
//! Jobs run on a pool of N runner threads (one by default — a
//! verification sweep already saturates the machine through its own worker
//! pool, so job-level concurrency is for mixes of small jobs, not
//! throughput of one big one). The [`JobManager`] owns the queue and the
//! state machine; every transition is persisted to the job's
//! `status.json` before it is observable through the API, so a killed
//! daemon restarts into a consistent store.
//!
//! ## State machine
//!
//! ```text
//! queued ──► running ──► done
//!    ▲          │  ├───► failed       (error or runner panic)
//!    ▲          │  ├───► timed-out    (JobSpec.timeout_secs exceeded)
//!    │          │  ├───► killed       (DELETE while running/queued)
//!    │          │  └───► interrupted  (daemon stopped mid-sweep)
//!    ├───── retry ◄───── failed | timed-out   (capped exponential backoff)
//!    └───── resume ◄──── killed | interrupted | failed | timed-out
//! ```
//!
//! `running` and `interrupted` jobs found at startup are re-enqueued
//! automatically (their `walshcheck-checkpoint/1` file seeds the resumed
//! sweep); `killed`, `failed` and `timed-out` jobs stay put until an
//! explicit `POST resume`. While the daemon runs, `failed` and
//! `timed-out` jobs are retried automatically up to
//! [`PoolConfig::max_retries`] times with capped exponential backoff —
//! each retry resumes from the flushed checkpoint, so a retried job's
//! report is byte-identical to an uninterrupted run.
//!
//! ## Isolation
//!
//! Each job's sweep runs under `catch_unwind`: a panic on the runner
//! thread marks *that job* `failed` with a `runner panic: …` reason and
//! retires the (possibly tainted) runner thread — the supervisor in the
//! accept loop respawns a fresh one, and the daemon never stops serving.
//! Kills and deadlines interrupt one job through its own interrupt token
//! ([`walshcheck_core::Job::set_interrupt`]); only daemon shutdown raises
//! the process-global flag that drains every runner at once.
//!
//! ## Integrity scan
//!
//! [`JobManager::open`] re-verifies every completed job: each artifact's
//! SHA-256 (recorded in `status.json` and `index.json` at completion) is
//! recomputed from the bytes on disk, and a mismatch — a torn write, bit
//! rot, a truncated copy — quarantines the damaged file under
//! `<store>/quarantine/` and re-queues the job. A job directory whose
//! `status.json` is unreadable is rebuilt from `spec.json` + `netlist.il`
//! when they still parse (and still hash to the directory's id), else the
//! whole directory is quarantined.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use walshcheck_circuit::ilang::parse_ilang;
use walshcheck_core::hash::sha256_hex;
use walshcheck_core::json::{self, Json};
use walshcheck_core::observe::{EnginePhase, ProgressObserver};
use walshcheck_core::property::CheckStats;
use walshcheck_core::report::Report;
use walshcheck_core::{netlist_sha256, Job, JobSpec, Witness};

use crate::store::{job_id, Store};

/// Upper bound on one long-poll wait (`wait_ms` is clamped to this), so a
/// stuck client cannot pin a connection thread for longer.
pub const MAX_WAIT_MS: u64 = 30_000;

/// Ceiling on the exponential retry backoff.
const MAX_RETRY_DELAY: Duration = Duration::from_secs(30);

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a runner.
    Queued,
    /// A runner is sweeping it now.
    Running,
    /// Finished; `report.json` holds the artifact.
    Done,
    /// The run errored (bad netlist, engine failure, runner panic);
    /// `error` says why.
    Failed,
    /// Stopped by an explicit kill; waits for `POST resume`.
    Killed,
    /// Stopped because the daemon shut down; auto-resumes on restart.
    Interrupted,
    /// Its `timeout_secs` deadline fired; the checkpointed sweep resumes
    /// on retry or `POST resume`.
    TimedOut,
}

impl JobState {
    /// The wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Killed => "killed",
            JobState::Interrupted => "interrupted",
            JobState::TimedOut => "timed-out",
        }
    }

    /// Parses a wire name back into a state.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "killed" => JobState::Killed,
            "interrupted" => JobState::Interrupted,
            "timed-out" => JobState::TimedOut,
            _ => return None,
        })
    }

    /// Whether `POST resume` may re-enqueue a job in this state.
    pub fn resumable(self) -> bool {
        matches!(
            self,
            JobState::Killed | JobState::Interrupted | JobState::Failed | JobState::TimedOut
        )
    }

    /// Whether the job has reached a state no runner will change without
    /// external input (resume, retry, restart).
    pub fn terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job as the API sees it; persisted as `status.json`.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Content-derived job id (see [`crate::store::job_id`]).
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// SHA-256 of the canonical ILANG dump of the submitted netlist.
    pub netlist_sha256: String,
    /// [`JobSpec::identity_hash`] of the submitted spec.
    pub identity_hash: String,
    /// Failure cause, when `state` is `failed` or `timed-out`.
    pub error: Option<String>,
    /// [`Report::hash`] of the artifact, when `state` is `done`.
    pub report_hash: Option<String>,
    /// How many automatic retries this job has consumed.
    pub retries: u64,
    /// SHA-256 per completed artifact file (`report.json`, `run.json`),
    /// what the startup integrity scan verifies against the disk.
    pub artifacts: BTreeMap<String, String>,
}

impl JobRecord {
    /// The record as its canonical `status.json` document.
    pub fn to_json(&self) -> Json {
        let artifacts: BTreeMap<String, Json> = self
            .artifacts
            .iter()
            .map(|(f, h)| (f.clone(), Json::str(h.clone())))
            .collect();
        Json::obj([
            ("schema", Json::str("walshcheck-status/2")),
            ("id", Json::str(self.id.clone())),
            ("state", Json::str(self.state.as_str())),
            ("netlist_sha256", Json::str(self.netlist_sha256.clone())),
            ("identity_hash", Json::str(self.identity_hash.clone())),
            (
                "error",
                match &self.error {
                    Some(e) => Json::str(e.clone()),
                    None => Json::Null,
                },
            ),
            (
                "report_hash",
                match &self.report_hash {
                    Some(h) => Json::str(h.clone()),
                    None => Json::Null,
                },
            ),
            (
                "retries",
                Json::Int(self.retries.min(i64::MAX as u64) as i64),
            ),
            ("artifacts", Json::Obj(artifacts)),
        ])
    }

    fn parse(doc: &Json) -> Option<JobRecord> {
        // `retries` and `artifacts` default when absent so status/1
        // records from 0.3.0 stores parse unchanged.
        let artifacts = match doc.get("artifacts") {
            Some(Json::Obj(map)) => map
                .iter()
                .filter_map(|(f, h)| Some((f.clone(), h.as_str()?.to_string())))
                .collect(),
            _ => BTreeMap::new(),
        };
        Some(JobRecord {
            id: doc.get("id")?.as_str()?.to_string(),
            state: JobState::parse(doc.get("state")?.as_str()?)?,
            netlist_sha256: doc.get("netlist_sha256")?.as_str()?.to_string(),
            identity_hash: doc.get("identity_hash")?.as_str()?.to_string(),
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
            report_hash: doc
                .get("report_hash")
                .and_then(Json::as_str)
                .map(str::to_string),
            retries: doc.get("retries").and_then(Json::as_u64).unwrap_or(0),
            artifacts,
        })
    }
}

/// The outcome of a submission.
#[derive(Debug, Clone)]
pub struct Submitted {
    /// The (possibly pre-existing) job id.
    pub id: String,
    /// The job's state after the submit.
    pub state: JobState,
    /// `true` when the identical job had already completed and the report
    /// is served from the store without recomputation.
    pub cached: bool,
    /// `true` when this submit created the job (HTTP 201 vs 200).
    pub created: bool,
}

/// A request the API cannot satisfy, with its HTTP status.
#[derive(Debug)]
pub struct ApiError {
    /// The status code to answer with.
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

impl ApiError {
    fn bad(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }

    fn not_found(id: &str) -> Self {
        ApiError {
            status: 404,
            message: format!("no job {id}"),
        }
    }

    fn conflict(message: impl Into<String>) -> Self {
        ApiError {
            status: 409,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> Self {
        ApiError {
            status: 500,
            message: message.into(),
        }
    }
}

/// Retry policy of the runner pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// How many automatic retries a `failed`/`timed-out` job gets
    /// (0 disables retry — every failure parks until `POST resume`).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry, capped at 30 s.
    pub retry_base: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_retries: 0,
            retry_base: Duration::from_millis(500),
        }
    }
}

/// Supervision state of one in-flight job.
struct RunningJob {
    /// Raised to interrupt this job's sweep (kill or deadline) without
    /// touching the other runners.
    interrupt: Arc<AtomicBool>,
    /// When the supervisor tick declares the attempt over.
    deadline: Option<Instant>,
    /// The spec's `timeout_secs`, for the error message.
    timeout_secs: Option<u64>,
    /// Set by the tick when the deadline fired (so the runner can tell a
    /// deadline interruption from a daemon stop).
    timed_out: bool,
}

struct Inner {
    records: BTreeMap<String, JobRecord>,
    queue: VecDeque<String>,
    /// Jobs whose interruption was requested by DELETE (vs deadline/stop).
    kill_pending: BTreeSet<String>,
    /// The jobs the runners are currently sweeping, by id.
    running: BTreeMap<String, RunningJob>,
    /// Jobs awaiting a backoff expiry before re-entering the queue.
    retry_at: BTreeMap<String, Instant>,
    stopping: bool,
}

/// Wakes long-poll waiters whenever a job emits an event or changes
/// state. A generation counter under the mutex keeps the condvar honest;
/// waiters additionally cap each wait so a lost wakeup costs at most one
/// re-check interval.
struct EventSignal {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl EventSignal {
    fn bump(&self) {
        let mut gen = self
            .gen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *gen = gen.wrapping_add(1);
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let gen = self
            .gen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = self.cv.wait_timeout(gen, timeout);
    }
}

/// The queue, state machine and persistence glue. One per daemon; shared
/// between the HTTP handlers and the runner threads behind an [`Arc`].
pub struct JobManager {
    store: Store,
    checkpoint_every: Duration,
    pool: PoolConfig,
    inner: Mutex<Inner>,
    wake: Condvar,
    signal: Arc<EventSignal>,
}

impl JobManager {
    /// Opens the manager over `store`, recovering job state from disk:
    /// `queued` jobs re-enter the queue, `running` and `interrupted` jobs
    /// are re-enqueued to resume from their checkpoint, `done` jobs pass
    /// the artifact integrity scan (see the module docs) or are
    /// quarantined and re-queued, everything else stays as found.
    ///
    /// # Errors
    ///
    /// Propagates store scanning failures as an [`ApiError`] (500).
    pub fn open(
        store: Store,
        checkpoint_every: Duration,
        pool: PoolConfig,
    ) -> Result<JobManager, ApiError> {
        let mut records = BTreeMap::new();
        let mut queue = VecDeque::new();
        // A crash mid-`atomic_replace` can leave `.…​.tmp` siblings; they
        // are never read, but sweeping keeps the tree canonical.
        let _ = store.sweep_temp_files();
        let ids = store
            .job_ids()
            .map_err(|e| ApiError::internal(format!("scanning store: {e}")))?;
        for id in ids {
            let parsed = store
                .read_job_file(&id, "status.json")
                .ok()
                .and_then(|text| json::parse(&text).ok())
                .as_ref()
                .and_then(JobRecord::parse);
            let Some(mut record) = parsed else {
                // No readable record: rebuild one from the immutable
                // inputs when they still match the directory's id, else
                // pull the whole directory aside.
                if let Some(rebuilt) = rebuild_record(&store, &id) {
                    queue.push_back(id.clone());
                    records.insert(id, rebuilt);
                } else {
                    let _ = store.quarantine_job_dir(&id);
                }
                continue;
            };
            match record.state {
                JobState::Queued => queue.push_back(id.clone()),
                JobState::Running | JobState::Interrupted => {
                    // The daemon died or was stopped mid-sweep; the
                    // checkpoint file (if any) seeds the resumed run.
                    record.state = JobState::Queued;
                    queue.push_back(id.clone());
                }
                JobState::Done => {
                    if !verify_artifacts(&store, &id, &mut record) {
                        queue.push_back(id.clone());
                    }
                }
                JobState::Failed | JobState::Killed | JobState::TimedOut => {}
            }
            records.insert(id, record);
        }
        let manager = JobManager {
            store,
            checkpoint_every,
            pool,
            inner: Mutex::new(Inner {
                records,
                queue,
                kill_pending: BTreeSet::new(),
                running: BTreeMap::new(),
                retry_at: BTreeMap::new(),
                stopping: false,
            }),
            wake: Condvar::new(),
            signal: Arc::new(EventSignal {
                gen: Mutex::new(0),
                cv: Condvar::new(),
            }),
        };
        manager.persist_all();
        Ok(manager)
    }

    /// The manager's store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Submits a job: `spec_doc` is the JSON spec ([`JobSpec::parse`]),
    /// `netlist_text` the ILANG source. Identical submissions dedupe to
    /// the same id; a completed identical job is answered from the store.
    ///
    /// # Errors
    ///
    /// 400 for an invalid spec or netlist, 500 for store failures.
    pub fn submit(&self, spec_doc: &Json, netlist_text: &str) -> Result<Submitted, ApiError> {
        let spec = JobSpec::parse(spec_doc).map_err(|e| ApiError::bad(e.to_string()))?;
        let netlist =
            parse_ilang(netlist_text).map_err(|e| ApiError::bad(format!("netlist: {e}")))?;
        netlist
            .validate()
            .map_err(|e| ApiError::bad(format!("netlist: {e}")))?;
        let nl_hash = netlist_sha256(&netlist);
        let identity = spec.identity_json().to_canonical();
        let id = job_id(&nl_hash, &identity);
        let mut inner = self.lock();
        if let Some(record) = inner.records.get(&id) {
            return Ok(Submitted {
                id,
                state: record.state,
                cached: record.state == JobState::Done,
                created: false,
            });
        }
        let record = JobRecord {
            id: id.clone(),
            state: JobState::Queued,
            netlist_sha256: nl_hash,
            identity_hash: spec.identity_hash(),
            error: None,
            report_hash: None,
            retries: 0,
            artifacts: BTreeMap::new(),
        };
        let io = |e: std::io::Error| ApiError::internal(format!("store: {e}"));
        self.store.create_job(&id).map_err(io)?;
        // The submitted text verbatim — NOT a re-dump. The id already
        // normalizes formatting variants (it hashes the canonical dump of
        // the *parsed* structure), and executing must parse exactly the
        // bytes that hash was derived from: the writer materializes output
        // aliases as `$buf` cells, so a re-dump re-parsed would be a
        // (slightly) different netlist than the one the id names.
        self.store
            .write_job_file(&id, "netlist.il", netlist_text.as_bytes())
            .map_err(io)?;
        self.store
            .write_job_file(&id, "spec.json", spec.to_json().to_canonical().as_bytes())
            .map_err(io)?;
        inner.records.insert(id.clone(), record);
        inner.queue.push_back(id.clone());
        self.persist(&inner, &id);
        drop(inner);
        self.wake.notify_all();
        self.signal.bump();
        Ok(Submitted {
            id,
            state: JobState::Queued,
            cached: false,
            created: true,
        })
    }

    /// The record of job `id`.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id.
    pub fn status(&self, id: &str) -> Result<JobRecord, ApiError> {
        self.lock()
            .records
            .get(id)
            .cloned()
            .ok_or_else(|| ApiError::not_found(id))
    }

    /// All records, sorted by id.
    pub fn list(&self) -> Vec<JobRecord> {
        self.lock().records.values().cloned().collect()
    }

    /// The verbatim `report.json` artifact bytes of a `done` job.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id, 409 when the job has not completed.
    pub fn report(&self, id: &str) -> Result<String, ApiError> {
        let record = self.status(id)?;
        if record.state != JobState::Done {
            return Err(ApiError::conflict(format!(
                "job {id} is {}, not done",
                record.state.as_str()
            )));
        }
        self.store
            .read_job_file(id, "report.json")
            .map_err(|e| ApiError::internal(format!("reading artifact: {e}")))
    }

    /// Progress events of job `id` from line `since` on, as the response
    /// body `{"next": N, "state": "…", "events": [...]}` (poll with
    /// `since = next`). With `wait_ms > 0` this long-polls: the call
    /// blocks until a new event lands, the job reaches a state no runner
    /// will change on its own, or the wait (clamped to [`MAX_WAIT_MS`])
    /// expires — whichever comes first.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id.
    pub fn events(&self, id: &str, since: usize, wait_ms: u64) -> Result<String, ApiError> {
        let deadline = Instant::now() + Duration::from_millis(wait_ms.min(MAX_WAIT_MS));
        loop {
            let record = self.status(id)?;
            let text = self
                .store
                .read_job_file(id, "events.jsonl")
                .unwrap_or_default();
            let mut lines: Vec<&str> = text.lines().collect();
            // A crash mid-append can leave a torn final line; serving it
            // would corrupt the JSON body. Dropping it is safe — it is
            // re-served (or re-written) once whole.
            if lines.last().is_some_and(|l| json::parse(l).is_err()) {
                lines.pop();
            }
            let now = Instant::now();
            if lines.len() > since || record.state.terminal() || self.stopping() || now >= deadline
            {
                let slice = if since < lines.len() {
                    &lines[since..]
                } else {
                    &[]
                };
                return Ok(format!(
                    "{{\"next\":{},\"state\":\"{}\",\"events\":[{}]}}",
                    lines.len(),
                    record.state.as_str(),
                    slice.join(",")
                ));
            }
            // Cap each wait so a lost wakeup (or daemon stop) costs at
            // most one re-check interval.
            self.signal
                .wait((deadline - now).min(Duration::from_millis(250)));
        }
    }

    /// Kills job `id`: a queued job is removed from the queue, a running
    /// one has its sweep interrupted through its own token (the scheduler
    /// checkpoints and returns; other runners are untouched). The job
    /// lands in `killed` and waits for `POST resume`.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id, 409 when the job is not queued/running.
    pub fn kill(&self, id: &str) -> Result<JobState, ApiError> {
        let mut inner = self.lock();
        let Some(record) = inner.records.get(id) else {
            return Err(ApiError::not_found(id));
        };
        match record.state {
            JobState::Queued => {
                inner.queue.retain(|q| q != id);
                inner.retry_at.remove(id);
                let record = inner.records.get_mut(id).expect("present");
                record.state = JobState::Killed;
                self.persist(&inner, id);
                drop(inner);
                self.signal.bump();
                Ok(JobState::Killed)
            }
            JobState::Running => {
                inner.kill_pending.insert(id.to_string());
                if let Some(rj) = inner.running.get(id) {
                    rj.interrupt.store(true, Ordering::Relaxed);
                }
                Ok(JobState::Running)
            }
            state => Err(ApiError::conflict(format!(
                "job {id} is {}, not queued or running",
                state.as_str()
            ))),
        }
    }

    /// Re-enqueues a `killed`, `interrupted`, `failed` or `timed-out`
    /// job; its checkpoint (if one was written) seeds the resumed sweep.
    /// An explicit resume also refreshes the automatic-retry budget.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id, 409 when the job is not resumable.
    pub fn resume(&self, id: &str) -> Result<JobState, ApiError> {
        let mut inner = self.lock();
        let Some(record) = inner.records.get_mut(id) else {
            return Err(ApiError::not_found(id));
        };
        if !record.state.resumable() {
            return Err(ApiError::conflict(format!(
                "job {id} is {}, not resumable",
                record.state.as_str()
            )));
        }
        record.state = JobState::Queued;
        record.error = None;
        record.retries = 0;
        inner.retry_at.remove(id);
        inner.queue.push_back(id.to_string());
        self.persist(&inner, id);
        drop(inner);
        self.wake.notify_all();
        self.signal.bump();
        Ok(JobState::Queued)
    }

    /// Asks the runners to exit after their current jobs (whose sweeps
    /// the caller interrupts separately via the process-global
    /// [`walshcheck_core::shutdown`] flag) and releases long-pollers.
    pub fn stop(&self) {
        self.lock().stopping = true;
        self.wake.notify_all();
        self.signal.bump();
    }

    /// Whether a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.lock().stopping
    }

    /// One supervisor beat, called from the accept loop: fires expired
    /// job deadlines (raising the job's interrupt token and marking it
    /// for the `timed-out` transition) and re-queues `failed`/`timed-out`
    /// jobs whose retry backoff has elapsed.
    pub fn tick(&self) {
        let now = Instant::now();
        let mut woke = false;
        let mut inner = self.lock();
        for rj in inner.running.values_mut() {
            if !rj.timed_out && rj.deadline.is_some_and(|d| now >= d) {
                rj.timed_out = true;
                rj.interrupt.store(true, Ordering::Relaxed);
            }
        }
        let due: Vec<String> = inner
            .retry_at
            .iter()
            .filter(|&(_, at)| *at <= now)
            .map(|(id, _)| id.clone())
            .collect();
        for id in due {
            inner.retry_at.remove(&id);
            let retriable = inner
                .records
                .get(&id)
                .is_some_and(|r| matches!(r.state, JobState::Failed | JobState::TimedOut));
            if retriable {
                if let Some(record) = inner.records.get_mut(&id) {
                    record.state = JobState::Queued;
                    record.error = None;
                }
                inner.queue.push_back(id.clone());
                self.persist(&inner, &id);
                woke = true;
            }
        }
        drop(inner);
        if woke {
            self.wake.notify_all();
            self.signal.bump();
        }
    }

    /// The runner loop: pops jobs until [`JobManager::stop`]. Call from a
    /// dedicated thread — or several; the pool shares one queue. Returns
    /// after a caught panic too (the job is marked `failed` first): a
    /// panicking sweep is evidence the thread's state may be tainted, so
    /// the thread retires and the supervisor respawns a fresh one.
    pub fn run_loop(self: &Arc<Self>) {
        loop {
            let id = {
                let mut inner = self.lock();
                loop {
                    if inner.stopping {
                        return;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        break id;
                    }
                    inner = self
                        .wake
                        .wait(inner)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let token = Arc::new(AtomicBool::new(false));
            let timeout_secs = self.job_timeout_secs(&id);
            {
                let mut inner = self.lock();
                inner.running.insert(
                    id.clone(),
                    RunningJob {
                        interrupt: Arc::clone(&token),
                        deadline: timeout_secs.map(|t| Instant::now() + Duration::from_secs(t)),
                        timeout_secs,
                        timed_out: false,
                    },
                );
                if let Some(r) = inner.records.get_mut(&id) {
                    r.state = JobState::Running;
                }
                self.persist(&inner, &id);
            }
            self.signal.bump();
            let result = catch_unwind(AssertUnwindSafe(|| self.execute(&id, &token)));
            let panicked = result.is_err();
            let mut inner = self.lock();
            let rj = inner.running.remove(&id);
            let was_killed = inner.kill_pending.remove(&id);
            let (timed_out, timeout_secs) = rj
                .map(|r| (r.timed_out, r.timeout_secs))
                .unwrap_or((false, None));
            let mut retry = false;
            {
                let record = inner.records.get_mut(&id).expect("record exists");
                match result {
                    Ok(Ok(Some(finished))) => {
                        record.state = JobState::Done;
                        record.report_hash = Some(finished.report_hash);
                        record.artifacts = finished.artifacts;
                        record.error = None;
                    }
                    Ok(Ok(None)) => {
                        // Interrupted sweep: an explicit kill parks the
                        // job, a fired deadline marks it timed-out (and
                        // retriable), a daemon stop marks it for
                        // auto-resume on restart.
                        record.state = if was_killed {
                            JobState::Killed
                        } else if timed_out {
                            record.error = Some(format!(
                                "deadline of {}s exceeded",
                                timeout_secs.unwrap_or(0)
                            ));
                            retry = true;
                            JobState::TimedOut
                        } else {
                            JobState::Interrupted
                        };
                    }
                    Ok(Err(message)) => {
                        record.state = JobState::Failed;
                        record.error = Some(message);
                        retry = !was_killed;
                    }
                    Err(payload) => {
                        record.state = JobState::Failed;
                        record.error = Some(format!("runner panic: {}", panic_message(&payload)));
                        retry = !was_killed;
                    }
                }
            }
            if retry {
                self.schedule_retry(&mut inner, &id);
            }
            self.persist(&inner, &id);
            drop(inner);
            self.signal.bump();
            if panicked {
                return;
            }
        }
    }

    /// Books an automatic retry for `id` if the budget allows.
    fn schedule_retry(&self, inner: &mut Inner, id: &str) {
        if inner.stopping || self.pool.max_retries == 0 {
            return;
        }
        let Some(record) = inner.records.get_mut(id) else {
            return;
        };
        if record.retries >= u64::from(self.pool.max_retries) {
            return;
        }
        record.retries += 1;
        let exp = u32::try_from(record.retries - 1).unwrap_or(16).min(16);
        let delay = self
            .pool
            .retry_base
            .saturating_mul(1u32 << exp)
            .min(MAX_RETRY_DELAY);
        inner
            .retry_at
            .insert(id.to_string(), Instant::now() + delay);
    }

    /// The spec's `timeout_secs` of job `id`, read back from the store.
    fn job_timeout_secs(&self, id: &str) -> Option<u64> {
        let text = self.store.read_job_file(id, "spec.json").ok()?;
        let doc = json::parse(&text).ok()?;
        JobSpec::parse(&doc).ok()?.timeout_secs
    }

    /// Runs one job to a verdict. `Ok(Some(finished))` on completion,
    /// `Ok(None)` when the sweep was interrupted, `Err` on failure.
    fn execute(&self, id: &str, interrupt: &Arc<AtomicBool>) -> Result<Option<Finished>, String> {
        #[cfg(feature = "fault-inject")]
        {
            if let Some(ms) = walshcheck_core::fault::u64_directive("job-stall-ms") {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if walshcheck_core::fault::string_directive("runner-panic-at").as_deref() == Some(id) {
                std::panic::panic_any(walshcheck_core::fault::InjectedFault("runner-panic-at"));
            }
        }
        let spec_text = self
            .store
            .read_job_file(id, "spec.json")
            .map_err(|e| format!("reading spec: {e}"))?;
        let netlist_text = self
            .store
            .read_job_file(id, "netlist.il")
            .map_err(|e| format!("reading netlist: {e}"))?;
        let spec_doc = json::parse(&spec_text).map_err(|e| format!("stored spec: {e}"))?;
        let spec = JobSpec::parse(&spec_doc).map_err(|e| format!("stored spec: {e}"))?;
        let netlist = parse_ilang(&netlist_text).map_err(|e| format!("stored netlist: {e}"))?;
        let mut job = Job::new(&netlist, spec).map_err(|e| e.to_string())?;
        job.set_interrupt(Arc::clone(interrupt));
        let observer = Arc::new(EventWriter {
            store: self.store.clone(),
            id: id.to_string(),
            signal: Arc::clone(&self.signal),
            phases: Mutex::new(Vec::new()),
        });
        job.set_observer(Arc::<EventWriter>::clone(&observer));
        let ck_path = self.store.job_file(id, "checkpoint.ck");
        job.checkpoint_to_with(&ck_path, self.checkpoint_every, Arc::clone(self.store.io()));
        // A checkpoint that fails to parse (torn write, wrong netlist,
        // stale schema) must never fail the job: quarantine it, log why,
        // and fall back to a from-scratch sweep — the report is
        // byte-identical either way.
        let resumed = if ck_path.exists() {
            match job.resume_from(&ck_path) {
                Ok(()) => true,
                Err(e) => {
                    let _ = self.store.append_event(
                        id,
                        &Json::obj([
                            ("event", Json::str("checkpoint-rejected")),
                            ("error", Json::str(e.to_string())),
                        ])
                        .to_canonical(),
                    );
                    let _ = self.store.quarantine_job_file(id, "checkpoint.ck");
                    false
                }
            }
        } else {
            false
        };
        let verdict = job.run();
        if verdict.stats.interrupted {
            return Ok(None);
        }
        let spec = job.spec();
        let artifact = Report::new(&netlist, spec, &verdict);
        let phases = observer
            .phases
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let run_doc = walshcheck_core::run_report_json(&netlist, &verdict, spec, &phases, resumed);
        let io = |e: std::io::Error| format!("store: {e}");
        self.store
            .write_job_file(id, "report.json", artifact.canonical_json().as_bytes())
            .map_err(io)?;
        self.store
            .write_job_file(id, "run.json", run_doc.as_bytes())
            .map_err(io)?;
        let _ = self.store.remove_job_file(id, "checkpoint.ck"); // sweep complete
        let artifacts = BTreeMap::from([
            ("report.json".to_string(), artifact.hash().to_string()),
            ("run.json".to_string(), sha256_hex(run_doc.as_bytes())),
        ]);
        Ok(Some(Finished {
            report_hash: artifact.hash().to_string(),
            artifacts,
        }))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Writes `status.json` of `id`, then the top-level index. The order
    /// is a durability barrier (each write fsyncs file and directory):
    /// the index can never durably claim a state whose `status.json` did
    /// not reach the disk first, so a crash between the two writes leaves
    /// at worst a *stale* index entry, which the startup scan reconciles
    /// from the authoritative per-job record.
    fn persist(&self, inner: &Inner, id: &str) {
        if let Some(record) = inner.records.get(id) {
            let _ = self.store.write_job_file(
                id,
                "status.json",
                record.to_json().to_canonical().as_bytes(),
            );
        }
        let jobs: BTreeMap<String, Json> = inner
            .records
            .iter()
            .map(|(id, r)| {
                let artifacts: BTreeMap<String, Json> = r
                    .artifacts
                    .iter()
                    .map(|(f, h)| (f.clone(), Json::str(h.clone())))
                    .collect();
                (
                    id.clone(),
                    Json::obj([
                        ("state", Json::str(r.state.as_str())),
                        (
                            "report_hash",
                            match &r.report_hash {
                                Some(h) => Json::str(h.clone()),
                                None => Json::Null,
                            },
                        ),
                        ("retries", Json::Int(r.retries.min(i64::MAX as u64) as i64)),
                        ("artifacts", Json::Obj(artifacts)),
                    ]),
                )
            })
            .collect();
        let index = Json::obj([
            ("schema", Json::str("walshcheck-index/2")),
            ("jobs", Json::Obj(jobs)),
        ]);
        let _ = self.store.write_index(index.to_canonical().as_bytes());
    }

    fn persist_all(&self) {
        let inner = self.lock();
        let ids: Vec<String> = inner.records.keys().cloned().collect();
        for id in ids {
            self.persist(&inner, &id);
        }
    }
}

/// What a completed sweep hands back to the state machine.
struct Finished {
    report_hash: String,
    artifacts: BTreeMap<String, String>,
}

/// Re-verifies a `done` job's artifacts against their recorded hashes.
/// Returns `true` when everything matches; on a mismatch the damaged
/// files are quarantined and `record` is reset to `queued` (the caller
/// enqueues it).
fn verify_artifacts(store: &Store, id: &str, record: &mut JobRecord) -> bool {
    // status/1 stores recorded no artifact map; `report_hash` doubles as
    // the hash of report.json's canonical bytes, so those still get the
    // report checked.
    let checks: Vec<(String, String)> = if record.artifacts.is_empty() {
        record
            .report_hash
            .iter()
            .map(|h| ("report.json".to_string(), h.clone()))
            .collect()
    } else {
        record
            .artifacts
            .iter()
            .map(|(f, h)| (f.clone(), h.clone()))
            .collect()
    };
    let mut clean = true;
    for (file, expect) in checks {
        let ok = store
            .job_file_sha256(id, &file)
            .is_ok_and(|have| have == expect);
        if !ok {
            let _ = store.quarantine_job_file(id, &file);
            clean = false;
        }
    }
    if !clean {
        record.state = JobState::Queued;
        record.report_hash = None;
        record.artifacts.clear();
        record.error = None;
    }
    clean
}

/// Rebuilds a fresh `queued` record for a job directory whose
/// `status.json` is unreadable, provided `spec.json` and `netlist.il`
/// still parse and still hash to the directory's id (anything else is
/// not this job's data).
fn rebuild_record(store: &Store, id: &str) -> Option<JobRecord> {
    let spec_text = store.read_job_file(id, "spec.json").ok()?;
    let netlist_text = store.read_job_file(id, "netlist.il").ok()?;
    let spec = JobSpec::parse(&json::parse(&spec_text).ok()?).ok()?;
    let netlist = parse_ilang(&netlist_text).ok()?;
    let nl_hash = netlist_sha256(&netlist);
    if job_id(&nl_hash, &spec.identity_json().to_canonical()) != id {
        return None;
    }
    Some(JobRecord {
        id: id.to_string(),
        state: JobState::Queued,
        netlist_sha256: nl_hash,
        identity_hash: spec.identity_hash(),
        error: None,
        report_hash: None,
        retries: 0,
        artifacts: BTreeMap::new(),
    })
}

/// Renders a caught panic payload for the job's `error` field.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(f) = payload.downcast_ref::<walshcheck_core::fault::InjectedFault>() {
        f.to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A [`ProgressObserver`] that appends one JSON line per event to the
/// job's `events.jsonl` (append-only, so events survive restarts),
/// wakes long-poll waiters, and collects phase timings for the final run
/// report. Per-combination callbacks (`combination_pruned`) are
/// deliberately not recorded — on large sweeps they would dwarf
/// everything else in the log.
struct EventWriter {
    store: Store,
    id: String,
    signal: Arc<EventSignal>,
    phases: Mutex<Vec<(String, Duration)>>,
}

impl EventWriter {
    fn emit(&self, line: String) {
        let _ = self.store.append_event(&self.id, &line);
        self.signal.bump();
    }
}

impl ProgressObserver for EventWriter {
    fn run_started(&self, sites: usize, total: u64, buckets: &[(usize, u64)]) {
        let buckets: Vec<String> = buckets.iter().map(|(k, n)| format!("[{k},{n}]")).collect();
        self.emit(format!(
            "{{\"event\":\"run-started\",\"sites\":{sites},\"total\":{total},\"buckets\":[{}]}}",
            buckets.join(",")
        ));
    }

    fn batch_claimed(&self, worker: usize, k: usize, first_index: u64, len: usize) {
        self.emit(format!(
            "{{\"event\":\"batch-claimed\",\"worker\":{worker},\"k\":{k},\"first_index\":{first_index},\"len\":{len}}}"
        ));
    }

    fn batch_finished(&self, worker: usize, checked: u64, pruned: u64) {
        self.emit(format!(
            "{{\"event\":\"batch-finished\",\"worker\":{worker},\"checked\":{checked},\"pruned\":{pruned}}}"
        ));
    }

    fn violation_found(&self, worker: usize, index: u64, _witness: &Witness) {
        self.emit(format!(
            "{{\"event\":\"violation-found\",\"worker\":{worker},\"index\":{index}}}"
        ));
    }

    fn combination_quarantined(
        &self,
        worker: usize,
        index: u64,
        reason: walshcheck_core::IncompleteReason,
    ) {
        self.emit(format!(
            "{{\"event\":\"combination-quarantined\",\"worker\":{worker},\"index\":{index},\"reason\":\"{}\"}}",
            reason.as_str()
        ));
    }

    fn checkpoint_written(&self, _path: &std::path::Path, combinations: u64) {
        self.emit(format!(
            "{{\"event\":\"checkpoint-written\",\"combinations\":{combinations}}}"
        ));
    }

    fn phase_timing(&self, phase: EnginePhase, elapsed: Duration) {
        self.phases
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((phase.to_string(), elapsed));
        self.emit(format!(
            "{{\"event\":\"phase\",\"name\":\"{phase}\",\"seconds\":{:.6}}}",
            elapsed.as_secs_f64()
        ));
    }

    fn rescue_started(&self, quarantined: usize) {
        self.emit(format!(
            "{{\"event\":\"rescue-started\",\"quarantined\":{quarantined}}}"
        ));
    }

    fn rescue_resolved(&self, index: u64, resolution: walshcheck_core::RescueResolution) {
        self.emit(format!(
            "{{\"event\":\"rescue-resolved\",\"index\":{index},\"resolution\":\"{}\"}}",
            resolution.as_str()
        ));
    }

    fn rescue_finished(&self, report: &walshcheck_core::RecoveryReport) {
        self.emit(format!(
            "{{\"event\":\"rescue-finished\",\"attempted\":{},\"resolved\":{},\"unresolved\":{}}}",
            report.attempted, report.resolved, report.unresolved
        ));
    }

    fn run_finished(&self, stats: &CheckStats) {
        self.emit(format!(
            "{{\"event\":\"run-finished\",\"combinations\":{},\"pruned\":{},\"interrupted\":{}}}",
            stats.combinations, stats.pruned, stats.interrupted
        ));
    }
}
