//! The job queue: states, records, the runner thread, restart recovery.
//!
//! Jobs run strictly one at a time on a single runner thread — a
//! verification sweep already saturates the machine through its own worker
//! pool, so queueing at the job level is both simpler and faster than
//! interleaving sweeps. The [`JobManager`] owns the queue and the state
//! machine; every transition is persisted to the job's `status.json`
//! before it is observable through the API, so a killed daemon restarts
//! into a consistent store.
//!
//! ## State machine
//!
//! ```text
//! queued ──► running ──► done
//!    ▲          │  ├───► failed
//!    │          │  ├───► killed       (DELETE while running/queued)
//!    │          │  └───► interrupted  (daemon stopped mid-sweep)
//!    └──────────┴──── resume ◄── killed | interrupted | failed
//! ```
//!
//! `running` and `interrupted` jobs found at startup are re-enqueued
//! automatically (their `walshcheck-checkpoint/1` file seeds the resumed
//! sweep); `killed` jobs stay put until an explicit `POST resume`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use walshcheck_circuit::ilang::parse_ilang;
use walshcheck_core::json::{self, Json};
use walshcheck_core::observe::{EnginePhase, ProgressObserver};
use walshcheck_core::property::CheckStats;
use walshcheck_core::report::Report;
use walshcheck_core::{netlist_sha256, shutdown, Job, JobSpec, Witness};

use crate::store::{job_id, Store};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for the runner.
    Queued,
    /// The runner is sweeping it now.
    Running,
    /// Finished; `report.json` holds the artifact.
    Done,
    /// The run errored (bad netlist, engine failure); `error` says why.
    Failed,
    /// Stopped by an explicit kill; waits for `POST resume`.
    Killed,
    /// Stopped because the daemon shut down; auto-resumes on restart.
    Interrupted,
}

impl JobState {
    /// The wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Killed => "killed",
            JobState::Interrupted => "interrupted",
        }
    }

    /// Parses a wire name back into a state.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "killed" => JobState::Killed,
            "interrupted" => JobState::Interrupted,
            _ => return None,
        })
    }

    /// Whether `POST resume` may re-enqueue a job in this state.
    pub fn resumable(self) -> bool {
        matches!(
            self,
            JobState::Killed | JobState::Interrupted | JobState::Failed
        )
    }
}

/// One job as the API sees it; persisted as `status.json`.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Content-derived job id (see [`crate::store::job_id`]).
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// SHA-256 of the canonical ILANG dump of the submitted netlist.
    pub netlist_sha256: String,
    /// [`JobSpec::identity_hash`] of the submitted spec.
    pub identity_hash: String,
    /// Failure cause, when `state` is `failed`.
    pub error: Option<String>,
    /// [`Report::hash`] of the artifact, when `state` is `done`.
    pub report_hash: Option<String>,
}

impl JobRecord {
    /// The record as its canonical `status.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("walshcheck-status/1")),
            ("id", Json::str(self.id.clone())),
            ("state", Json::str(self.state.as_str())),
            ("netlist_sha256", Json::str(self.netlist_sha256.clone())),
            ("identity_hash", Json::str(self.identity_hash.clone())),
            (
                "error",
                match &self.error {
                    Some(e) => Json::str(e.clone()),
                    None => Json::Null,
                },
            ),
            (
                "report_hash",
                match &self.report_hash {
                    Some(h) => Json::str(h.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn parse(doc: &Json) -> Option<JobRecord> {
        Some(JobRecord {
            id: doc.get("id")?.as_str()?.to_string(),
            state: JobState::parse(doc.get("state")?.as_str()?)?,
            netlist_sha256: doc.get("netlist_sha256")?.as_str()?.to_string(),
            identity_hash: doc.get("identity_hash")?.as_str()?.to_string(),
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
            report_hash: doc
                .get("report_hash")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }
}

/// The outcome of a submission.
#[derive(Debug, Clone)]
pub struct Submitted {
    /// The (possibly pre-existing) job id.
    pub id: String,
    /// The job's state after the submit.
    pub state: JobState,
    /// `true` when the identical job had already completed and the report
    /// is served from the store without recomputation.
    pub cached: bool,
    /// `true` when this submit created the job (HTTP 201 vs 200).
    pub created: bool,
}

/// A request the API cannot satisfy, with its HTTP status.
#[derive(Debug)]
pub struct ApiError {
    /// The status code to answer with.
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

impl ApiError {
    fn bad(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }

    fn not_found(id: &str) -> Self {
        ApiError {
            status: 404,
            message: format!("no job {id}"),
        }
    }

    fn conflict(message: impl Into<String>) -> Self {
        ApiError {
            status: 409,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> Self {
        ApiError {
            status: 500,
            message: message.into(),
        }
    }
}

struct Inner {
    records: BTreeMap<String, JobRecord>,
    queue: VecDeque<String>,
    /// Jobs whose interruption was requested by DELETE (vs daemon stop).
    kill_pending: BTreeSet<String>,
    /// The id the runner is currently sweeping.
    running: Option<String>,
    stopping: bool,
}

/// The queue, state machine and persistence glue. One per daemon; shared
/// between the HTTP handlers and the runner thread behind an [`Arc`].
pub struct JobManager {
    store: Store,
    checkpoint_every: Duration,
    inner: Mutex<Inner>,
    wake: Condvar,
}

impl JobManager {
    /// Opens the manager over `store`, recovering job state from disk:
    /// `queued` jobs re-enter the queue, `running` and `interrupted` jobs
    /// are re-enqueued to resume from their checkpoint, everything else
    /// stays as found.
    ///
    /// # Errors
    ///
    /// Propagates store scanning failures as an [`ApiError`] (500).
    pub fn open(store: Store, checkpoint_every: Duration) -> Result<JobManager, ApiError> {
        let mut records = BTreeMap::new();
        let mut queue = VecDeque::new();
        let ids = store
            .job_ids()
            .map_err(|e| ApiError::internal(format!("scanning store: {e}")))?;
        for id in ids {
            let Ok(text) = store.read_job_file(&id, "status.json") else {
                continue; // half-created job directory; ignore
            };
            let Some(mut record) = json::parse(&text).ok().as_ref().and_then(JobRecord::parse)
            else {
                continue;
            };
            match record.state {
                JobState::Queued => queue.push_back(id.clone()),
                JobState::Running | JobState::Interrupted => {
                    // The daemon died or was stopped mid-sweep; the
                    // checkpoint file (if any) seeds the resumed run.
                    record.state = JobState::Queued;
                    queue.push_back(id.clone());
                }
                JobState::Done | JobState::Failed | JobState::Killed => {}
            }
            records.insert(id, record);
        }
        let manager = JobManager {
            store,
            checkpoint_every,
            inner: Mutex::new(Inner {
                records,
                queue,
                kill_pending: BTreeSet::new(),
                running: None,
                stopping: false,
            }),
            wake: Condvar::new(),
        };
        manager.persist_all();
        Ok(manager)
    }

    /// The manager's store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Submits a job: `spec_doc` is the JSON spec ([`JobSpec::parse`]),
    /// `netlist_text` the ILANG source. Identical submissions dedupe to
    /// the same id; a completed identical job is answered from the store.
    ///
    /// # Errors
    ///
    /// 400 for an invalid spec or netlist, 500 for store failures.
    pub fn submit(&self, spec_doc: &Json, netlist_text: &str) -> Result<Submitted, ApiError> {
        let spec = JobSpec::parse(spec_doc).map_err(|e| ApiError::bad(e.to_string()))?;
        let netlist =
            parse_ilang(netlist_text).map_err(|e| ApiError::bad(format!("netlist: {e}")))?;
        netlist
            .validate()
            .map_err(|e| ApiError::bad(format!("netlist: {e}")))?;
        let nl_hash = netlist_sha256(&netlist);
        let identity = spec.identity_json().to_canonical();
        let id = job_id(&nl_hash, &identity);
        let mut inner = self.lock();
        if let Some(record) = inner.records.get(&id) {
            return Ok(Submitted {
                id,
                state: record.state,
                cached: record.state == JobState::Done,
                created: false,
            });
        }
        let record = JobRecord {
            id: id.clone(),
            state: JobState::Queued,
            netlist_sha256: nl_hash,
            identity_hash: spec.identity_hash(),
            error: None,
            report_hash: None,
        };
        let io = |e: std::io::Error| ApiError::internal(format!("store: {e}"));
        self.store.create_job(&id).map_err(io)?;
        // The submitted text verbatim — NOT a re-dump. The id already
        // normalizes formatting variants (it hashes the canonical dump of
        // the *parsed* structure), and executing must parse exactly the
        // bytes that hash was derived from: the writer materializes output
        // aliases as `$buf` cells, so a re-dump re-parsed would be a
        // (slightly) different netlist than the one the id names.
        self.store
            .write_job_file(&id, "netlist.il", netlist_text.as_bytes())
            .map_err(io)?;
        self.store
            .write_job_file(&id, "spec.json", spec.to_json().to_canonical().as_bytes())
            .map_err(io)?;
        inner.records.insert(id.clone(), record);
        inner.queue.push_back(id.clone());
        self.persist(&inner, &id);
        drop(inner);
        self.wake.notify_all();
        Ok(Submitted {
            id,
            state: JobState::Queued,
            cached: false,
            created: true,
        })
    }

    /// The record of job `id`.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id.
    pub fn status(&self, id: &str) -> Result<JobRecord, ApiError> {
        self.lock()
            .records
            .get(id)
            .cloned()
            .ok_or_else(|| ApiError::not_found(id))
    }

    /// All records, sorted by id.
    pub fn list(&self) -> Vec<JobRecord> {
        self.lock().records.values().cloned().collect()
    }

    /// The verbatim `report.json` artifact bytes of a `done` job.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id, 409 when the job has not completed.
    pub fn report(&self, id: &str) -> Result<String, ApiError> {
        let record = self.status(id)?;
        if record.state != JobState::Done {
            return Err(ApiError::conflict(format!(
                "job {id} is {}, not done",
                record.state.as_str()
            )));
        }
        self.store
            .read_job_file(id, "report.json")
            .map_err(|e| ApiError::internal(format!("reading artifact: {e}")))
    }

    /// Progress events of job `id` from line `since` on, as the response
    /// body `{"next": N, "events": [...]}` (poll with `since = next`).
    ///
    /// # Errors
    ///
    /// 404 for an unknown id.
    pub fn events(&self, id: &str, since: usize) -> Result<String, ApiError> {
        self.status(id)?; // existence check
        let text = self
            .store
            .read_job_file(id, "events.jsonl")
            .unwrap_or_default();
        let lines: Vec<&str> = text.lines().collect();
        let upto = lines.len();
        let slice = if since < upto { &lines[since..] } else { &[] };
        Ok(format!(
            "{{\"next\":{},\"events\":[{}]}}",
            upto,
            slice.join(",")
        ))
    }

    /// Kills job `id`: a queued job is removed from the queue, a running
    /// one has its sweep interrupted (the scheduler checkpoints and
    /// returns). The job lands in `killed` and waits for `POST resume`.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id, 409 when the job is not queued/running.
    pub fn kill(&self, id: &str) -> Result<JobState, ApiError> {
        let mut inner = self.lock();
        let Some(record) = inner.records.get(id) else {
            return Err(ApiError::not_found(id));
        };
        match record.state {
            JobState::Queued => {
                inner.queue.retain(|q| q != id);
                let record = inner.records.get_mut(id).expect("present");
                record.state = JobState::Killed;
                self.persist(&inner, id);
                Ok(JobState::Killed)
            }
            JobState::Running => {
                inner.kill_pending.insert(id.to_string());
                // The scheduler polls this process-global flag; the runner
                // resets it afterwards (unless the daemon itself is
                // stopping, in which case the stop wins).
                shutdown::request();
                Ok(JobState::Running)
            }
            state => Err(ApiError::conflict(format!(
                "job {id} is {}, not queued or running",
                state.as_str()
            ))),
        }
    }

    /// Re-enqueues a `killed`, `interrupted` or `failed` job; its
    /// checkpoint (if one was written) seeds the resumed sweep.
    ///
    /// # Errors
    ///
    /// 404 for an unknown id, 409 when the job is not resumable.
    pub fn resume(&self, id: &str) -> Result<JobState, ApiError> {
        let mut inner = self.lock();
        let Some(record) = inner.records.get_mut(id) else {
            return Err(ApiError::not_found(id));
        };
        if !record.state.resumable() {
            return Err(ApiError::conflict(format!(
                "job {id} is {}, not resumable",
                record.state.as_str()
            )));
        }
        record.state = JobState::Queued;
        record.error = None;
        inner.queue.push_back(id.to_string());
        self.persist(&inner, id);
        drop(inner);
        self.wake.notify_all();
        Ok(JobState::Queued)
    }

    /// Asks the runner to exit after the current job (whose sweep the
    /// caller interrupts separately via [`shutdown::request`]).
    pub fn stop(&self) {
        self.lock().stopping = true;
        self.wake.notify_all();
    }

    /// Whether a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.lock().stopping
    }

    /// Whether a DELETE-kill is waiting for the running sweep to drain.
    /// Kills share the process-global shutdown flag with daemon stop, so
    /// the accept loop must not read a kill's flag-raise as its own stop
    /// signal — this is how it tells the two apart.
    pub fn kill_in_progress(&self) -> bool {
        !self.lock().kill_pending.is_empty()
    }

    /// The runner loop: pops jobs until [`JobManager::stop`]. Call from a
    /// dedicated thread.
    pub fn run_loop(self: &Arc<Self>) {
        loop {
            let id = {
                let mut inner = self.lock();
                loop {
                    if inner.stopping {
                        return;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        break id;
                    }
                    inner = self
                        .wake
                        .wait(inner)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            {
                let mut inner = self.lock();
                inner.running = Some(id.clone());
                if let Some(r) = inner.records.get_mut(&id) {
                    r.state = JobState::Running;
                }
                self.persist(&inner, &id);
            }
            let result = self.execute(&id);
            let mut inner = self.lock();
            inner.running = None;
            let was_killed = inner.kill_pending.remove(&id);
            let record = inner.records.get_mut(&id).expect("record exists");
            match result {
                Ok(Some(report_hash)) => {
                    record.state = JobState::Done;
                    record.report_hash = Some(report_hash);
                    record.error = None;
                }
                Ok(None) => {
                    // Interrupted sweep: an explicit kill parks the job,
                    // a daemon stop marks it for auto-resume.
                    record.state = if was_killed {
                        JobState::Killed
                    } else {
                        JobState::Interrupted
                    };
                    // A kill shares the process-global shutdown flag with
                    // daemon stop; clear it for the next job unless the
                    // daemon itself is going down. (A SIGTERM landing in
                    // exactly this window is coalesced into the kill.)
                    if was_killed && !inner.stopping {
                        shutdown::reset();
                    }
                }
                Err(message) => {
                    record.state = JobState::Failed;
                    record.error = Some(message);
                    if was_killed && !inner.stopping {
                        shutdown::reset();
                    }
                }
            }
            self.persist(&inner, &id);
        }
    }

    /// Runs one job to a verdict. `Ok(Some(hash))` on completion,
    /// `Ok(None)` when the sweep was interrupted, `Err` on failure.
    fn execute(&self, id: &str) -> Result<Option<String>, String> {
        let spec_text = self
            .store
            .read_job_file(id, "spec.json")
            .map_err(|e| format!("reading spec: {e}"))?;
        let netlist_text = self
            .store
            .read_job_file(id, "netlist.il")
            .map_err(|e| format!("reading netlist: {e}"))?;
        let spec_doc = json::parse(&spec_text).map_err(|e| format!("stored spec: {e}"))?;
        let spec = JobSpec::parse(&spec_doc).map_err(|e| format!("stored spec: {e}"))?;
        let netlist = parse_ilang(&netlist_text).map_err(|e| format!("stored netlist: {e}"))?;
        let mut job = Job::new(&netlist, spec).map_err(|e| e.to_string())?;
        let observer = Arc::new(EventWriter {
            store: self.store.clone(),
            id: id.to_string(),
            phases: Mutex::new(Vec::new()),
        });
        job.set_observer(Arc::<EventWriter>::clone(&observer));
        let ck_path = self.store.job_file(id, "checkpoint.ck");
        job.checkpoint_to(&ck_path, self.checkpoint_every);
        let resumed = ck_path.exists() && job.resume_from(&ck_path).is_ok();
        let verdict = job.run();
        if verdict.stats.interrupted {
            return Ok(None);
        }
        let spec = job.spec();
        let artifact = Report::new(&netlist, spec, &verdict);
        let phases = observer
            .phases
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let run_doc = walshcheck_core::run_report_json(&netlist, &verdict, spec, &phases, resumed);
        let io = |e: std::io::Error| format!("store: {e}");
        self.store
            .write_job_file(id, "report.json", artifact.canonical_json().as_bytes())
            .map_err(io)?;
        self.store
            .write_job_file(id, "run.json", run_doc.as_bytes())
            .map_err(io)?;
        let _ = std::fs::remove_file(&ck_path); // sweep complete
        Ok(Some(artifact.hash().to_string()))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Writes `status.json` of `id` plus the top-level index.
    fn persist(&self, inner: &Inner, id: &str) {
        if let Some(record) = inner.records.get(id) {
            let _ = self.store.write_job_file(
                id,
                "status.json",
                record.to_json().to_canonical().as_bytes(),
            );
        }
        let jobs: BTreeMap<String, Json> = inner
            .records
            .iter()
            .map(|(id, r)| {
                (
                    id.clone(),
                    Json::obj([
                        ("state", Json::str(r.state.as_str())),
                        (
                            "report_hash",
                            match &r.report_hash {
                                Some(h) => Json::str(h.clone()),
                                None => Json::Null,
                            },
                        ),
                    ]),
                )
            })
            .collect();
        let index = Json::obj([
            ("schema", Json::str("walshcheck-index/1")),
            ("jobs", Json::Obj(jobs)),
        ]);
        let _ = self.store.write_index(index.to_canonical().as_bytes());
    }

    fn persist_all(&self) {
        let inner = self.lock();
        let ids: Vec<String> = inner.records.keys().cloned().collect();
        for id in ids {
            self.persist(&inner, &id);
        }
    }
}

/// A [`ProgressObserver`] that appends one JSON line per event to the
/// job's `events.jsonl` (append-only, so events survive restarts) and
/// collects phase timings for the final run report. Per-combination
/// callbacks (`combination_pruned`) are deliberately not recorded — on
/// large sweeps they would dwarf everything else in the log.
struct EventWriter {
    store: Store,
    id: String,
    phases: Mutex<Vec<(String, Duration)>>,
}

impl EventWriter {
    fn emit(&self, line: String) {
        let _ = self.store.append_event(&self.id, &line);
    }
}

impl ProgressObserver for EventWriter {
    fn run_started(&self, sites: usize, total: u64, buckets: &[(usize, u64)]) {
        let buckets: Vec<String> = buckets.iter().map(|(k, n)| format!("[{k},{n}]")).collect();
        self.emit(format!(
            "{{\"event\":\"run-started\",\"sites\":{sites},\"total\":{total},\"buckets\":[{}]}}",
            buckets.join(",")
        ));
    }

    fn batch_claimed(&self, worker: usize, k: usize, first_index: u64, len: usize) {
        self.emit(format!(
            "{{\"event\":\"batch-claimed\",\"worker\":{worker},\"k\":{k},\"first_index\":{first_index},\"len\":{len}}}"
        ));
    }

    fn batch_finished(&self, worker: usize, checked: u64, pruned: u64) {
        self.emit(format!(
            "{{\"event\":\"batch-finished\",\"worker\":{worker},\"checked\":{checked},\"pruned\":{pruned}}}"
        ));
    }

    fn violation_found(&self, worker: usize, index: u64, _witness: &Witness) {
        self.emit(format!(
            "{{\"event\":\"violation-found\",\"worker\":{worker},\"index\":{index}}}"
        ));
    }

    fn combination_quarantined(
        &self,
        worker: usize,
        index: u64,
        reason: walshcheck_core::IncompleteReason,
    ) {
        self.emit(format!(
            "{{\"event\":\"combination-quarantined\",\"worker\":{worker},\"index\":{index},\"reason\":\"{}\"}}",
            reason.as_str()
        ));
    }

    fn checkpoint_written(&self, _path: &std::path::Path, combinations: u64) {
        self.emit(format!(
            "{{\"event\":\"checkpoint-written\",\"combinations\":{combinations}}}"
        ));
    }

    fn phase_timing(&self, phase: EnginePhase, elapsed: Duration) {
        self.phases
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((phase.to_string(), elapsed));
        self.emit(format!(
            "{{\"event\":\"phase\",\"name\":\"{phase}\",\"seconds\":{:.6}}}",
            elapsed.as_secs_f64()
        ));
    }

    fn rescue_started(&self, quarantined: usize) {
        self.emit(format!(
            "{{\"event\":\"rescue-started\",\"quarantined\":{quarantined}}}"
        ));
    }

    fn rescue_resolved(&self, index: u64, resolution: walshcheck_core::RescueResolution) {
        self.emit(format!(
            "{{\"event\":\"rescue-resolved\",\"index\":{index},\"resolution\":\"{}\"}}",
            resolution.as_str()
        ));
    }

    fn rescue_finished(&self, report: &walshcheck_core::RecoveryReport) {
        self.emit(format!(
            "{{\"event\":\"rescue-finished\",\"attempted\":{},\"resolved\":{},\"unresolved\":{}}}",
            report.attempted, report.resolved, report.unresolved
        ));
    }

    fn run_finished(&self, stats: &CheckStats) {
        self.emit(format!(
            "{{\"event\":\"run-finished\",\"combinations\":{},\"pruned\":{},\"interrupted\":{}}}",
            stats.combinations, stats.pruned, stats.interrupted
        ));
    }
}
