//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! the daemon's JSON API, with none of it guessed: requests above the
//! header or body caps are rejected before buffering, bodies require an
//! explicit `Content-Length`, and every response carries
//! `Connection: close` so connection lifetime equals request lifetime
//! (no keep-alive state machine).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD: usize = 16 * 1024;

/// Default upper bound on a request body (netlists are text; 8 MiB is
/// orders of magnitude above the paper benchmarks).
pub const DEFAULT_MAX_BODY: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Percent-decoded path without the query string.
    pub path: String,
    /// The raw query string (empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key`, if present (`k=v` pairs,
    /// `&`-separated, no percent-decoding — the API only passes integers).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// A request-reading failure that maps to a definite status code.
#[derive(Debug)]
pub struct HttpError {
    /// The status the connection should answer with.
    pub status: u16,
    /// Human-readable cause, sent as the JSON error body.
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> Self {
        HttpError {
            status: 413,
            message: message.into(),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::bad(format!("i/o while reading request: {e}"))
    }
}

/// Reads one request off `stream`. `max_body` caps the allowed
/// `Content-Length`; oversized requests fail with 413 *before* the body
/// is buffered, malformed ones with 400.
///
/// # Errors
///
/// [`HttpError`] with the status the connection should answer with.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    // Read byte-wise up to the blank line; MAX_HEAD bounds the loop.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(HttpError::too_large(format!(
                "request head exceeds {MAX_HEAD} bytes"
            )));
        }
        match stream.read(&mut byte)? {
            0 => return Err(HttpError::bad("connection closed mid-request")),
            _ => head.push(byte[0]),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::bad("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::bad(format!("bad request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("unsupported version {version:?}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::bad(format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::too_large(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the fixed set (`Retry-After` on 503, ...).
    pub headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with `status`.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// The same response with `name: value` appended to its headers.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// A JSON error body `{"error": message}` with `status`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = format!(
            "{{\"error\":{}}}",
            walshcheck_core::report::json_escape(message)
        );
        Response::json(status, body)
    }

    /// Serializes the response onto `stream` (always `Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        };
        let extra: String = self
            .headers
            .iter()
            .map(|(n, v)| format!("{n}: {v}\r\n"))
            .collect();
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn, max_body);
        writer.join().expect("writer");
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            b"POST /v1/jobs?x=1&y=2 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query_param("y"), Some("2"));
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let err = round_trip(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 16)
            .expect_err("too large");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /x SPDY/9 extra\r\n\r\n"[..],
        ] {
            let err = round_trip(raw, 1024).expect_err("malformed");
            assert_eq!(err.status, 400);
        }
    }
}
