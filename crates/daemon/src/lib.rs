//! # walshcheck-daemon — verification as a service
//!
//! `walshcheckd` turns the one-shot verifier into a long-running server:
//! submit an ILANG netlist plus a [`walshcheck_core::JobSpec`], poll
//! progress events, fetch the finished `walshcheck-report/5` artifact —
//! and kill or resume jobs across daemon restarts via the existing
//! `walshcheck-checkpoint/1` files.
//!
//! Everything is hand-rolled over `std`: [`http`] parses HTTP/1.1 off a
//! `TcpStream`, [`store`] is a content-addressed artifact store on the
//! filesystem, [`jobs`] runs the queue over [`walshcheck_core::Job`], and
//! [`server`] binds them together behind [`Daemon`]. [`client`] is the
//! matching blocking client the CLI's `submit`/`status`/`fetch` commands
//! use.
//!
//! ## Caching contract
//!
//! A job's identity is `(netlist SHA-256, spec identity hash)` — see
//! [`walshcheck_core::JobSpec::identity_hash`]. Reports are canonical
//! bytes, hashed and stored once; resubmitting the same work is answered
//! from the store without recomputation, byte-for-byte identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod crashsim;
pub mod http;
pub mod jobs;
pub mod server;
pub mod store;

pub use client::Client;
pub use jobs::{JobRecord, JobState, PoolConfig};
pub use server::{Daemon, DaemonConfig};
pub use store::{FsyncEvents, Store};
