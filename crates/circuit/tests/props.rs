//! Property-based tests for the circuit substrate: random netlists must
//! unfold to BDDs that agree with the concrete simulator, survive the ILANG
//! round trip semantically, and keep glitch observation sets consistent.

use proptest::prelude::*;

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::glitch::{observation_sets, ProbeModel};
use walshcheck_circuit::ilang::{parse_ilang, write_ilang};
use walshcheck_circuit::netlist::{Netlist, WireId};
use walshcheck_circuit::sim::Simulator;
use walshcheck_circuit::unfold::unfold;

/// A recipe for one random gate: (kind, input picks).
#[derive(Debug, Clone)]
struct GateRecipe {
    kind: u8,
    a: usize,
    b: usize,
    c: usize,
}

fn recipe_strategy(max_gates: usize) -> impl Strategy<Value = Vec<GateRecipe>> {
    proptest::collection::vec(
        (0u8..9, any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(kind, a, b, c)| GateRecipe { kind, a, b, c }),
        1..max_gates,
    )
}

/// Builds a random (but always valid) masked netlist: one 2-share secret,
/// two randoms, one public input, then the recipe gates over existing wires.
fn build_netlist(recipes: &[GateRecipe]) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let s = b.secret("x");
    let a0 = b.share(s, 0);
    let a1 = b.share(s, 1);
    let r0 = b.random("r0");
    let r1 = b.random("r1");
    let p = b.public_input("clk");
    let mut wires = vec![a0, a1, r0, r1, p];
    for g in recipes {
        let a = wires[g.a % wires.len()];
        let bb = wires[g.b % wires.len()];
        let cc = wires[g.c % wires.len()];
        let out = match g.kind {
            0 => b.and(a, bb),
            1 => b.or(a, bb),
            2 => b.xor(a, bb),
            3 => b.xnor(a, bb),
            4 => b.nand(a, bb),
            5 => b.nor(a, bb),
            6 => b.not(a),
            7 => b.reg(a),
            _ => b.mux(a, bb, cc),
        };
        wires.push(out);
    }
    let o = b.output("q");
    let last = *wires.last().expect("non-empty");
    b.output_share(last, o, 0);
    b.build().expect("builder output is structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unfolding_agrees_with_simulation(recipes in recipe_strategy(24)) {
        let n = build_netlist(&recipes);
        let unf = unfold(&n).expect("acyclic");
        let sim = Simulator::new(&n).expect("acyclic");
        for a in 0..1u128 << n.inputs.len() {
            let values = sim.eval_all(a);
            #[allow(clippy::needless_range_loop)] // w is also the wire id
            for w in 0..n.num_wires() {
                let wire = WireId(w as u32);
                prop_assert_eq!(
                    unf.bdds.eval(unf.wire_fn(wire), a),
                    values[w],
                    "wire {} under {:b}", n.wire_name(wire), a
                );
            }
        }
    }

    #[test]
    fn ilang_round_trip_is_semantics_preserving(recipes in recipe_strategy(20)) {
        let original = build_netlist(&recipes);
        let text = write_ilang(&original);
        let reparsed = parse_ilang(&text).expect("own output parses");
        prop_assert_eq!(reparsed.num_secrets(), original.num_secrets());
        prop_assert_eq!(reparsed.randoms().len(), original.randoms().len());
        prop_assert_eq!(reparsed.inputs.len(), original.inputs.len());
        let sim_a = Simulator::new(&original).expect("acyclic");
        let sim_b = Simulator::new(&reparsed).expect("acyclic");
        let qa = original.outputs[0].0;
        let qb = reparsed
            .outputs
            .iter()
            .find_map(|&(w, r)| {
                matches!(r, walshcheck_circuit::netlist::OutputRole::Share { .. }).then_some(w)
            })
            .expect("output present");
        // The writer emits ports in role order (secrets, randoms, publics),
        // matching the builder's declaration order for these netlists.
        for a in 0..1u128 << original.inputs.len() {
            prop_assert_eq!(
                sim_a.eval_all(a)[qa.0 as usize],
                sim_b.eval_all(a)[qb.0 as usize],
                "assignment {:b}", a
            );
        }
    }

    #[test]
    fn glitch_sets_contain_standard_sets(recipes in recipe_strategy(24)) {
        let n = build_netlist(&recipes);
        let std_sets = observation_sets(&n, ProbeModel::Standard).expect("acyclic");
        let glitch_sets = observation_sets(&n, ProbeModel::Glitch).expect("acyclic");
        let unf = unfold(&n).expect("acyclic");
        for w in 0..n.num_wires() {
            // Standard: exactly the wire itself.
            prop_assert_eq!(&std_sets[w], &vec![WireId(w as u32)]);
            // Glitch sets consist of stable wires only (inputs or registers)
            // and jointly determine the probed wire's value.
            let input_wires: std::collections::HashSet<_> =
                n.inputs.iter().map(|&(w, _)| w).collect();
            for &src in &glitch_sets[w] {
                let is_input = input_wires.contains(&src);
                let is_reg = n
                    .driver(src)
                    .map(|c| n.cells[c.0 as usize].gate == walshcheck_circuit::Gate::Dff)
                    .unwrap_or(false);
                prop_assert!(is_input || is_reg, "glitch source {} unstable", n.wire_name(src));
            }
            // The functional support of the wire is covered by the union of
            // the observed stable signals' supports.
            let mut union = walshcheck_dd::VarSet::EMPTY;
            for &src in &glitch_sets[w] {
                union = union.union(&unf.bdds.support(unf.wire_fn(src)));
            }
            let own = unf.bdds.support(unf.wire_fn(WireId(w as u32)));
            prop_assert!(own.is_subset(&union), "cone not covered at wire {w}");
        }
    }

    #[test]
    fn validation_accepts_builder_output(recipes in recipe_strategy(16)) {
        let n = build_netlist(&recipes);
        prop_assert!(n.validate().is_ok());
        prop_assert!(n.num_cells() >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The ILANG parser must never panic — arbitrary junk yields `Err`.
    #[test]
    fn parser_total_on_arbitrary_text(text in "[ -~\n\\\\]{0,300}") {
        let _ = parse_ilang(&text);
    }

    /// Truncation fuzz: every prefix of a valid document must parse
    /// totally — either a (semantically complete) netlist or a clean
    /// `Err`, never a panic. This is the resilience contract the CLI's
    /// exit-code 3 path relies on when fed a half-written file.
    #[test]
    fn parser_total_on_truncated_documents(
        recipes in recipe_strategy(12),
        cut in 0usize..4096,
    ) {
        let text = write_ilang(&build_netlist(&recipes));
        let cut = cut % (text.len() + 1);
        // Cut at a char boundary (ILANG output is ASCII, but stay robust).
        let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap_or(0);
        let _ = parse_ilang(&text[..cut]);
    }

    /// Inputs that drop the module header are rejected with `Err`, not a
    /// panic and not a silently empty netlist.
    #[test]
    fn parser_rejects_headerless_garbage(text in "[a-z0-9 \n]{1,200}") {
        prop_assert!(parse_ilang(&text).is_err(), "accepted: {text:?}");
    }

    /// Keyword-shaped fuzz: lines assembled from grammar fragments.
    #[test]
    fn parser_total_on_keyword_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("module \\m".to_string()),
                Just("wire \\a".to_string()),
                Just("wire width 2 input 1 \\x".to_string()),
                Just("## input \\x".to_string()),
                Just("## random \\r".to_string()),
                Just("cell $and \\c".to_string()),
                Just("connect \\A \\x [0]".to_string()),
                Just("connect \\Y \\a".to_string()),
                Just("end".to_string()),
                Just("# comment".to_string()),
                Just("attribute \\src".to_string()),
            ],
            0..24,
        )
    ) {
        let text = parts.join("\n");
        let _ = parse_ilang(&text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chaining a refresh in front of any random gadget preserves its
    /// function: the composite output equals the original gadget evaluated
    /// on the same secret.
    #[test]
    fn chained_refresh_preserves_semantics(recipes in recipe_strategy(12)) {
        use walshcheck_circuit::compose::{chain, Binding};
        use walshcheck_circuit::netlist::{InputRole, OutputId, SecretId};

        // Inner: a 2-share ISW-style refresh.
        let mut fb = NetlistBuilder::new("refresh");
        let fs = fb.secret("x");
        let fa = fb.shares(fs, 2);
        let fr = fb.random("r");
        let q0 = fb.xor(fa[0], fr);
        let q1 = fb.xor(fa[1], fr);
        let fo = fb.output("y");
        fb.output_share(q0, fo, 0);
        fb.output_share(q1, fo, 1);
        let f = fb.build().expect("valid");

        let g = build_netlist(&recipes);
        let h = chain(
            &f,
            &g,
            &[Binding { inner_output: OutputId(0), outer_secret: SecretId(0) }],
        )
        .expect("share counts match (both 2)");
        h.validate().expect("valid");

        let sim_g = Simulator::new(&g).expect("acyclic");
        let sim_h = Simulator::new(&h).expect("acyclic");
        let out_g = g.outputs[0].0;
        let out_h = h
            .outputs
            .iter()
            .find_map(|&(w, r)| {
                matches!(r, walshcheck_circuit::netlist::OutputRole::Share { .. }).then_some(w)
            })
            .expect("output");

        // For every assignment of h, compute the value the inner refresh
        // delivers to g's secret-0 shares, and replay g directly.
        for a in 0..1u128 << h.inputs.len() {
            let vh = sim_h.eval_all(a);
            // g's input order: x0 x1 r0 r1 clk — reconstruct from h's port
            // roles by matching positions.
            let mut g_assignment = 0u128;
            let mut g_share_pos = Vec::new();
            for (pos, &(_, role)) in g.inputs.iter().enumerate() {
                if matches!(role, InputRole::Share { .. }) {
                    g_share_pos.push(pos);
                }
            }
            // The two bound share values are the refresh's outputs.
            let refreshed = [
                vh[h.find_wire("_w0").expect("refresh wire").0 as usize],
                vh[h.find_wire("_w1").expect("refresh wire").0 as usize],
            ];
            for (i, &pos) in g_share_pos.iter().enumerate() {
                if refreshed[i] {
                    g_assignment |= 1 << pos;
                }
            }
            // Remaining g inputs (randoms/publics) appear after f's ports
            // in h's input order, in g's declaration order.
            let g_other: Vec<usize> = g
                .inputs
                .iter()
                .enumerate()
                .filter(|(_, &(_, r))| !matches!(r, InputRole::Share { .. }))
                .map(|(pos, _)| pos)
                .collect();
            let h_other: Vec<usize> = (f.inputs.len()..h.inputs.len()).collect();
            prop_assert_eq!(g_other.len(), h_other.len());
            for (&gp, &hp) in g_other.iter().zip(&h_other) {
                if a >> hp & 1 == 1 {
                    g_assignment |= 1 << gp;
                }
            }
            let vg = sim_g.eval_all(g_assignment);
            prop_assert_eq!(
                vh[out_h.0 as usize],
                vg[out_g.0 as usize],
                "assignment {:b}", a
            );
        }
    }
}
