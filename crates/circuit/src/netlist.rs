//! Gate-level netlist model with masking annotations.
//!
//! A [`Netlist`] is a flat, bit-level combinational netlist (registers are
//! modelled as unit-delay buffers for functional analysis and as cone
//! boundaries for the glitch-extended probing model). Ports carry the
//! maskVerif-style annotations of the paper: *share* inputs belong to a
//! secret and carry a share index, *random* inputs are fresh uniform bits,
//! *public* inputs are attacker-known, and outputs are grouped into shared
//! output values.

use std::collections::HashMap;
use std::fmt;

/// Index of a wire in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WireId(pub u32);

/// Index of a cell in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u32);

/// Identifier of a sensitive (secret) input value; its shares XOR to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SecretId(pub u32);

/// Identifier of a shared output value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OutputId(pub u32);

impl fmt::Display for WireId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for SecretId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for OutputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Role of a primary input bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputRole {
    /// Attacker-known value (e.g. clock, reset, plaintext).
    Public,
    /// Share `index` of secret `secret`.
    Share {
        /// The secret this bit is a share of.
        secret: SecretId,
        /// Share index within the secret's sharing.
        index: u32,
    },
    /// Fresh uniformly random bit.
    Random,
}

/// Role of a primary output bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputRole {
    /// Share `index` of shared output `output`.
    Share {
        /// The shared output value this bit belongs to.
        output: OutputId,
        /// Share index within the output sharing.
        index: u32,
    },
    /// Unshared, attacker-visible output.
    Public,
}

/// Primitive gate functions.
///
/// `Dff` is a register: functionally an identity, but a probe-cone boundary
/// in the glitch-extended model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Identity buffer.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And,
    /// 2-input NAND.
    Nand,
    /// 2-input OR.
    Or,
    /// 2-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// Multiplexer: inputs `[s, a, b]`, output `s ? b : a`.
    Mux,
    /// D flip-flop (identity function, glitch boundary). Input `[d]`.
    Dff,
}

impl Gate {
    /// Number of data inputs the gate expects.
    pub fn arity(self) -> usize {
        match self {
            Gate::Buf | Gate::Not | Gate::Dff => 1,
            Gate::Mux => 3,
            _ => 2,
        }
    }

    /// The Yosys-style type name (e.g. `$and`).
    pub fn type_name(self) -> &'static str {
        match self {
            Gate::Buf => "$buf",
            Gate::Not => "$not",
            Gate::And => "$and",
            Gate::Nand => "$nand",
            Gate::Or => "$or",
            Gate::Nor => "$nor",
            Gate::Xor => "$xor",
            Gate::Xnor => "$xnor",
            Gate::Mux => "$mux",
            Gate::Dff => "$dff",
        }
    }

    /// Parses a Yosys-style type name.
    pub fn from_type_name(s: &str) -> Option<Gate> {
        Some(match s {
            "$buf" => Gate::Buf,
            "$not" => Gate::Not,
            "$and" => Gate::And,
            "$nand" => Gate::Nand,
            "$or" => Gate::Or,
            "$nor" => Gate::Nor,
            "$xor" => Gate::Xor,
            "$xnor" => Gate::Xnor,
            "$mux" => Gate::Mux,
            "$dff" | "$_DFF_P_" => Gate::Dff,
            _ => return None,
        })
    }

    /// Evaluates the gate on concrete input bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity(), "gate arity mismatch");
        match self {
            Gate::Buf | Gate::Dff => inputs[0],
            Gate::Not => !inputs[0],
            Gate::And => inputs[0] && inputs[1],
            Gate::Nand => !(inputs[0] && inputs[1]),
            Gate::Or => inputs[0] || inputs[1],
            Gate::Nor => !(inputs[0] || inputs[1]),
            Gate::Xor => inputs[0] ^ inputs[1],
            Gate::Xnor => !(inputs[0] ^ inputs[1]),
            Gate::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

/// A named single-bit wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire {
    /// Unique wire name.
    pub name: String,
}

/// A gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance name (unique).
    pub name: String,
    /// Gate function.
    pub gate: Gate,
    /// Data inputs, in port order.
    pub inputs: Vec<WireId>,
    /// Output wire driven by this cell.
    pub output: WireId,
}

/// Error raised by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A wire is driven both as a primary input and by a cell, or by two
    /// cells.
    MultipleDrivers(String),
    /// A non-input wire has no driver.
    Undriven(String),
    /// A cell has the wrong number of inputs.
    ArityMismatch {
        /// Cell instance name.
        cell: String,
        /// Expected input count.
        expected: usize,
        /// Found input count.
        found: usize,
    },
    /// The combinational logic contains a cycle through the named wire.
    CombinationalCycle(String),
    /// Duplicate wire name.
    DuplicateWire(String),
    /// An annotation refers to share/output indices inconsistently (e.g.
    /// missing share index, duplicate `(secret, index)` pair).
    BadSharing(String),
    /// A cross-reference (wire, secret or output id) points outside the
    /// netlist it belongs to.
    DanglingReference(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers(w) => write!(f, "wire {w} has multiple drivers"),
            NetlistError::Undriven(w) => write!(f, "wire {w} has no driver"),
            NetlistError::ArityMismatch {
                cell,
                expected,
                found,
            } => {
                write!(f, "cell {cell} expects {expected} inputs, found {found}")
            }
            NetlistError::CombinationalCycle(w) => {
                write!(f, "combinational cycle through wire {w}")
            }
            NetlistError::DuplicateWire(w) => write!(f, "duplicate wire name {w}"),
            NetlistError::BadSharing(msg) => write!(f, "inconsistent sharing: {msg}"),
            NetlistError::DanglingReference(msg) => write!(f, "dangling reference: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat, bit-level, annotated netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    /// All wires, indexed by [`WireId`].
    pub wires: Vec<Wire>,
    /// All cells, indexed by [`CellId`].
    pub cells: Vec<Cell>,
    /// Primary input bits with their masking role, in declaration order.
    /// The declaration order fixes the BDD variable order.
    pub inputs: Vec<(WireId, InputRole)>,
    /// Primary output bits with their role.
    pub outputs: Vec<(WireId, OutputRole)>,
    /// Human-readable names of secrets, indexed by [`SecretId`].
    pub secret_names: Vec<String>,
    /// Human-readable names of shared outputs, indexed by [`OutputId`].
    pub output_names: Vec<String>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Number of wires.
    pub fn num_wires(&self) -> usize {
        self.wires.len()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of declared secrets.
    pub fn num_secrets(&self) -> usize {
        self.secret_names.len()
    }

    /// The wire name for `id`.
    pub fn wire_name(&self, id: WireId) -> &str {
        &self.wires[id.0 as usize].name
    }

    /// Looks a wire up by name.
    pub fn find_wire(&self, name: &str) -> Option<WireId> {
        self.wires
            .iter()
            .position(|w| w.name == name)
            .map(|i| WireId(i as u32))
    }

    /// The cell driving `wire`, if any.
    pub fn driver(&self, wire: WireId) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.output == wire)
            .map(|i| CellId(i as u32))
    }

    /// Shares of `secret`, sorted by share index.
    pub fn shares_of(&self, secret: SecretId) -> Vec<WireId> {
        let mut v: Vec<(u32, WireId)> = self
            .inputs
            .iter()
            .filter_map(|&(w, role)| match role {
                InputRole::Share { secret: s, index } if s == secret => Some((index, w)),
                _ => None,
            })
            .collect();
        v.sort();
        v.into_iter().map(|(_, w)| w).collect()
    }

    /// Random input wires in declaration order.
    pub fn randoms(&self) -> Vec<WireId> {
        self.inputs
            .iter()
            .filter_map(|&(w, r)| (r == InputRole::Random).then_some(w))
            .collect()
    }

    /// Output shares of `output`, sorted by share index.
    pub fn output_shares_of(&self, output: OutputId) -> Vec<WireId> {
        let mut v: Vec<(u32, WireId)> = self
            .outputs
            .iter()
            .filter_map(|&(w, role)| match role {
                OutputRole::Share { output: o, index } if o == output => Some((index, w)),
                _ => None,
            })
            .collect();
        v.sort();
        v.into_iter().map(|(_, w)| w).collect()
    }

    /// Checks the structural invariants: unique wire names, single drivers,
    /// no undriven logic, correct cell arities, consistent share indexing
    /// and acyclic combinational logic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut names = HashMap::new();
        for w in &self.wires {
            if names.insert(&w.name, ()).is_some() {
                return Err(NetlistError::DuplicateWire(w.name.clone()));
            }
        }
        let mut driven = vec![false; self.wires.len()];
        for &(w, _) in &self.inputs {
            if driven[w.0 as usize] {
                return Err(NetlistError::MultipleDrivers(self.wire_name(w).into()));
            }
            driven[w.0 as usize] = true;
        }
        for c in &self.cells {
            if c.inputs.len() != c.gate.arity() {
                return Err(NetlistError::ArityMismatch {
                    cell: c.name.clone(),
                    expected: c.gate.arity(),
                    found: c.inputs.len(),
                });
            }
            if driven[c.output.0 as usize] {
                return Err(NetlistError::MultipleDrivers(
                    self.wire_name(c.output).into(),
                ));
            }
            driven[c.output.0 as usize] = true;
        }
        if let Some(idx) = driven.iter().position(|&d| !d) {
            return Err(NetlistError::Undriven(self.wires[idx].name.clone()));
        }
        // Share-index consistency.
        let mut seen_shares = HashMap::new();
        for &(w, role) in &self.inputs {
            if let InputRole::Share { secret, index } = role {
                if secret.0 as usize >= self.secret_names.len() {
                    return Err(NetlistError::BadSharing(format!(
                        "share {} refers to undeclared secret {secret}",
                        self.wire_name(w)
                    )));
                }
                if seen_shares.insert((secret, index), w).is_some() {
                    return Err(NetlistError::BadSharing(format!(
                        "duplicate share index {index} for secret {secret}"
                    )));
                }
            }
        }
        let mut seen_out = HashMap::new();
        for &(w, role) in &self.outputs {
            if let OutputRole::Share { output, index } = role {
                if output.0 as usize >= self.output_names.len() {
                    return Err(NetlistError::BadSharing(format!(
                        "output share {} refers to undeclared output {output}",
                        self.wire_name(w)
                    )));
                }
                if seen_out.insert((output, index), w).is_some() {
                    return Err(NetlistError::BadSharing(format!(
                        "duplicate share index {index} for output {output}"
                    )));
                }
            }
        }
        crate::topo::topo_order(self).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn gate_eval_truth_tables() {
        assert!(Gate::And.eval(&[true, true]));
        assert!(!Gate::And.eval(&[true, false]));
        assert!(Gate::Nand.eval(&[true, false]));
        assert!(Gate::Or.eval(&[false, true]));
        assert!(!Gate::Nor.eval(&[false, true]));
        assert!(Gate::Xor.eval(&[true, false]));
        assert!(Gate::Xnor.eval(&[true, true]));
        assert!(!Gate::Not.eval(&[true]));
        assert!(Gate::Buf.eval(&[true]));
        assert!(Gate::Dff.eval(&[true]));
        // Mux: s=0 → a, s=1 → b.
        assert!(Gate::Mux.eval(&[false, true, false]));
        assert!(!Gate::Mux.eval(&[true, true, false]));
    }

    #[test]
    fn gate_type_names_round_trip() {
        for g in [
            Gate::Buf,
            Gate::Not,
            Gate::And,
            Gate::Nand,
            Gate::Or,
            Gate::Nor,
            Gate::Xor,
            Gate::Xnor,
            Gate::Mux,
            Gate::Dff,
        ] {
            assert_eq!(Gate::from_type_name(g.type_name()), Some(g));
        }
        assert_eq!(Gate::from_type_name("$adder"), None);
    }

    #[test]
    fn share_and_random_queries() {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r0");
        let t = b.xor(a0, r);
        let q = b.xor(t, a1);
        let o = b.output("q");
        b.output_share(q, o, 0);
        let n = b.build().expect("valid");
        assert_eq!(n.shares_of(s), vec![a0, a1]);
        assert_eq!(n.randoms(), vec![r]);
        assert_eq!(n.output_shares_of(o), vec![q]);
        assert_eq!(n.num_secrets(), 1);
        assert!(n.find_wire("r0").is_some());
        assert!(n.find_wire("nope").is_none());
    }

    #[test]
    fn validate_rejects_double_driver() {
        let mut n = Netlist::new("bad");
        n.wires.push(Wire { name: "a".into() });
        n.wires.push(Wire { name: "b".into() });
        n.inputs.push((WireId(0), InputRole::Public));
        n.inputs.push((WireId(1), InputRole::Public));
        n.cells.push(Cell {
            name: "c0".into(),
            gate: Gate::Buf,
            inputs: vec![WireId(0)],
            output: WireId(1),
        });
        assert!(matches!(
            n.validate(),
            Err(NetlistError::MultipleDrivers(_))
        ));
    }

    #[test]
    fn validate_rejects_undriven_and_duplicate_names() {
        let mut n = Netlist::new("bad");
        n.wires.push(Wire { name: "a".into() });
        assert!(matches!(n.validate(), Err(NetlistError::Undriven(_))));
        n.inputs.push((WireId(0), InputRole::Public));
        n.wires.push(Wire { name: "a".into() });
        n.inputs.push((WireId(1), InputRole::Public));
        assert!(matches!(n.validate(), Err(NetlistError::DuplicateWire(_))));
    }

    #[test]
    fn validate_rejects_bad_arity_and_cycles() {
        let mut n = Netlist::new("bad");
        n.wires.push(Wire { name: "a".into() });
        n.wires.push(Wire { name: "b".into() });
        n.inputs.push((WireId(0), InputRole::Public));
        n.cells.push(Cell {
            name: "c0".into(),
            gate: Gate::And,
            inputs: vec![WireId(0)],
            output: WireId(1),
        });
        assert!(matches!(
            n.validate(),
            Err(NetlistError::ArityMismatch { .. })
        ));
        n.cells[0].inputs = vec![WireId(1), WireId(0)];
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }
}
