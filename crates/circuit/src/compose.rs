//! Structural composition of masked netlists.
//!
//! [`chain`] wires the shared outputs of an inner gadget `f` into the share
//! inputs of an outer gadget `g` — the `g ∘ f` construction whose security
//! the composition theorems (and the paper's Fig. 1 counterexample) are
//! about. The composite exposes:
//!
//! * the unbound secrets of both gadgets as secrets (renamed with a
//!   `f.`/`g.` prefix on collision),
//! * the concatenated randomness of both gadgets,
//! * `g`'s shared outputs (plus any unbound outputs of `f`).
//!
//! The consumed `f` outputs stay in the netlist as ordinary internal wires —
//! and therefore as probe sites, which is exactly what makes naive
//! composition dangerous.

use std::collections::HashMap;

use crate::netlist::{
    Cell, InputRole, Netlist, NetlistError, OutputId, OutputRole, SecretId, Wire, WireId,
};

/// A binding: shared output `output` of the inner gadget feeds secret
/// `secret` of the outer gadget (share index `i` to share index `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// Output of the inner gadget.
    pub inner_output: OutputId,
    /// Secret (share input group) of the outer gadget it drives.
    pub outer_secret: SecretId,
}

/// Error raised by [`chain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// The share counts of a bound output/secret pair differ.
    ShareCountMismatch {
        /// The offending binding.
        binding: Binding,
        /// Shares produced by the inner output.
        produced: usize,
        /// Shares expected by the outer secret.
        expected: usize,
    },
    /// A binding refers to a non-existent output or secret.
    UnknownBinding(Binding),
    /// The same outer secret is bound twice.
    DuplicateBinding(SecretId),
    /// The composed netlist failed validation (a bug in the inputs).
    Invalid(NetlistError),
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::ShareCountMismatch { binding, produced, expected } => write!(
                f,
                "binding {binding:?}: inner output has {produced} shares, outer secret expects {expected}"
            ),
            ComposeError::UnknownBinding(b) => write!(f, "binding {b:?} names unknown ports"),
            ComposeError::DuplicateBinding(s) => {
                write!(f, "outer secret {s} bound more than once")
            }
            ComposeError::Invalid(e) => write!(f, "composed netlist invalid: {e}"),
        }
    }
}

impl std::error::Error for ComposeError {}

/// Looks up a source-netlist id in a rebuild map, turning an out-of-range
/// reference (a malformed input netlist) into an error instead of a panic.
fn mapped<T: Copy>(map: &[T], index: u32, what: &str, side: &str) -> Result<T, ComposeError> {
    map.get(index as usize).copied().ok_or_else(|| {
        ComposeError::Invalid(NetlistError::DanglingReference(format!(
            "{side} netlist references {what} #{index} which does not exist"
        )))
    })
}

/// Composes `g ∘ f`: each [`Binding`] replaces the bound outer shares with
/// the inner gadget's output wires. See the module docs for the port rules.
///
/// # Errors
///
/// Returns a [`ComposeError`] if a binding is inconsistent or either input
/// netlist contains dangling internal references.
pub fn chain(f: &Netlist, g: &Netlist, bindings: &[Binding]) -> Result<Netlist, ComposeError> {
    // Validate bindings.
    let mut bound_secrets: HashMap<SecretId, OutputId> = HashMap::new();
    for b in bindings {
        if b.inner_output.0 as usize >= f.output_names.len()
            || b.outer_secret.0 as usize >= g.secret_names.len()
        {
            return Err(ComposeError::UnknownBinding(*b));
        }
        let produced = f.output_shares_of(b.inner_output).len();
        let expected = g.shares_of(b.outer_secret).len();
        if produced != expected {
            return Err(ComposeError::ShareCountMismatch {
                binding: *b,
                produced,
                expected,
            });
        }
        if bound_secrets
            .insert(b.outer_secret, b.inner_output)
            .is_some()
        {
            return Err(ComposeError::DuplicateBinding(b.outer_secret));
        }
    }

    let mut out = Netlist::new(format!("{}∘{}", g.name, f.name));
    let name_of = |base: &str, taken: &mut HashMap<String, u32>| -> String {
        match taken.get_mut(base) {
            None => {
                taken.insert(base.to_string(), 0);
                base.to_string()
            }
            Some(n) => {
                *n += 1;
                format!("{base}.{n}")
            }
        }
    };
    let mut taken: HashMap<String, u32> = HashMap::new();

    // --- copy f wholesale ---
    let mut f_wire: Vec<WireId> = Vec::with_capacity(f.wires.len());
    for w in &f.wires {
        let id = WireId(out.wires.len() as u32);
        let name = name_of(&w.name, &mut taken);
        out.wires.push(Wire { name });
        f_wire.push(id);
    }
    let mut f_secret: Vec<SecretId> = Vec::new();
    for name in &f.secret_names {
        let id = SecretId(out.secret_names.len() as u32);
        out.secret_names.push(name_of(name, &mut taken));
        f_secret.push(id);
    }
    for &(w, role) in &f.inputs {
        let role = match role {
            InputRole::Share { secret, index } => InputRole::Share {
                secret: mapped(&f_secret, secret.0, "secret", "inner")?,
                index,
            },
            other => other,
        };
        out.inputs
            .push((mapped(&f_wire, w.0, "wire", "inner")?, role));
    }
    for c in &f.cells {
        out.cells.push(Cell {
            name: name_of(&c.name, &mut taken),
            gate: c.gate,
            inputs: c
                .inputs
                .iter()
                .map(|&w| mapped(&f_wire, w.0, "wire", "inner"))
                .collect::<Result<_, _>>()?,
            output: mapped(&f_wire, c.output.0, "wire", "inner")?,
        });
    }

    // --- copy g, substituting bound shares ---
    // Map from (outer secret, share index) to the inner wire feeding it.
    let mut substituted: HashMap<WireId, WireId> = HashMap::new();
    for (&secret, &output) in &bound_secrets {
        let produced = f.output_shares_of(output);
        let expected = g.shares_of(secret);
        for (src, dst) in produced.iter().zip(&expected) {
            substituted.insert(*dst, mapped(&f_wire, src.0, "wire", "inner")?);
        }
    }
    let mut g_wire: Vec<WireId> = Vec::with_capacity(g.wires.len());
    for (gw, wire) in g.wires.iter().enumerate() {
        let gwid = WireId(gw as u32);
        if let Some(&inner) = substituted.get(&gwid) {
            g_wire.push(inner);
        } else {
            let id = WireId(out.wires.len() as u32);
            let name = name_of(&wire.name, &mut taken);
            out.wires.push(Wire { name });
            g_wire.push(id);
        }
    }
    let mut g_secret: HashMap<SecretId, SecretId> = HashMap::new();
    for (i, name) in g.secret_names.iter().enumerate() {
        let sid = SecretId(i as u32);
        if bound_secrets.contains_key(&sid) {
            continue;
        }
        let id = SecretId(out.secret_names.len() as u32);
        out.secret_names.push(name_of(name, &mut taken));
        g_secret.insert(sid, id);
    }
    for &(w, role) in &g.inputs {
        match role {
            InputRole::Share { secret, index } => {
                if bound_secrets.contains_key(&secret) {
                    continue; // replaced by the inner gadget's output wire
                }
                let renamed = *g_secret.get(&secret).ok_or_else(|| {
                    ComposeError::Invalid(NetlistError::DanglingReference(format!(
                        "outer netlist references secret #{} which does not exist",
                        secret.0
                    )))
                })?;
                out.inputs.push((
                    mapped(&g_wire, w.0, "wire", "outer")?,
                    InputRole::Share {
                        secret: renamed,
                        index,
                    },
                ));
            }
            other => out
                .inputs
                .push((mapped(&g_wire, w.0, "wire", "outer")?, other)),
        }
    }
    for c in &g.cells {
        out.cells.push(Cell {
            name: name_of(&c.name, &mut taken),
            gate: c.gate,
            inputs: c
                .inputs
                .iter()
                .map(|&w| mapped(&g_wire, w.0, "wire", "outer"))
                .collect::<Result<_, _>>()?,
            output: mapped(&g_wire, c.output.0, "wire", "outer")?,
        });
    }

    // --- outputs: g's outputs, then f's unbound outputs ---
    let mut g_output: Vec<OutputId> = Vec::new();
    for name in &g.output_names {
        let id = OutputId(out.output_names.len() as u32);
        out.output_names.push(name_of(name, &mut taken));
        g_output.push(id);
    }
    for &(w, role) in &g.outputs {
        let role = match role {
            OutputRole::Share { output, index } => OutputRole::Share {
                output: mapped(&g_output, output.0, "output", "outer")?,
                index,
            },
            OutputRole::Public => OutputRole::Public,
        };
        out.outputs
            .push((mapped(&g_wire, w.0, "wire", "outer")?, role));
    }
    let bound_outputs: Vec<OutputId> = bound_secrets.values().copied().collect();
    let mut f_output: HashMap<OutputId, OutputId> = HashMap::new();
    for (i, name) in f.output_names.iter().enumerate() {
        let oid = OutputId(i as u32);
        if bound_outputs.contains(&oid) {
            continue;
        }
        let id = OutputId(out.output_names.len() as u32);
        out.output_names.push(name_of(name, &mut taken));
        f_output.insert(oid, id);
    }
    for &(w, role) in &f.outputs {
        if let OutputRole::Share { output, index } = role {
            if let Some(&renamed) = f_output.get(&output) {
                out.outputs.push((
                    mapped(&f_wire, w.0, "wire", "inner")?,
                    OutputRole::Share {
                        output: renamed,
                        index,
                    },
                ));
            }
        }
    }

    out.validate().map_err(ComposeError::Invalid)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::sim::Simulator;

    /// A 2-share refresh gadget.
    fn refresh2() -> Netlist {
        let mut b = NetlistBuilder::new("refresh");
        let s = b.secret("x");
        let a = b.shares(s, 2);
        let r = b.random("r");
        let q0 = b.xor(a[0], r);
        let q1 = b.xor(a[1], r);
        let o = b.output("y");
        b.output_share(q0, o, 0);
        b.output_share(q1, o, 1);
        b.build().expect("valid")
    }

    /// A 2-share XOR gadget with two secrets.
    fn xor2() -> Netlist {
        let mut b = NetlistBuilder::new("xor");
        let su = b.secret("u");
        let sv = b.secret("v");
        let u = b.shares(su, 2);
        let v = b.shares(sv, 2);
        let q0 = b.xor(u[0], v[0]);
        let q1 = b.xor(u[1], v[1]);
        let o = b.output("w");
        b.output_share(q0, o, 0);
        b.output_share(q1, o, 1);
        b.build().expect("valid")
    }

    #[test]
    fn chain_binds_output_to_secret() {
        let f = refresh2();
        let g = xor2();
        let h = chain(
            &f,
            &g,
            &[Binding {
                inner_output: OutputId(0),
                outer_secret: SecretId(0),
            }],
        )
        .expect("composes");
        // Composite: secrets = f's x + g's unbound v; randoms = f's r.
        assert_eq!(h.num_secrets(), 2);
        assert_eq!(h.randoms().len(), 1);
        assert_eq!(h.output_names.len(), 1); // g's output only (f's is bound)
        h.validate().expect("valid");
        // Semantics: w = refresh(x) ⊕ v = x ⊕ v.
        let sim = Simulator::new(&h).expect("acyclic");
        let shares = h.output_shares_of(OutputId(0));
        for a in 0..1u128 << h.inputs.len() {
            let values = sim.eval_all(a);
            let w = values[shares[0].0 as usize] ^ values[shares[1].0 as usize];
            // Reconstruct x and v from the assignment.
            let mut x = false;
            let mut v = false;
            for (pos, &(_, role)) in h.inputs.iter().enumerate() {
                if let InputRole::Share { secret, .. } = role {
                    if a >> pos & 1 == 1 {
                        if secret == SecretId(0) {
                            x ^= true;
                        } else {
                            v ^= true;
                        }
                    }
                }
            }
            assert_eq!(w, x ^ v, "assignment {a:b}");
        }
    }

    #[test]
    fn chain_rejects_mismatched_share_counts() {
        let mut b = NetlistBuilder::new("wide");
        let s = b.secret("x");
        let a = b.shares(s, 3);
        let q = b.xor_all(&a);
        let o = b.output("y");
        b.output_share(q, o, 0);
        let f = b.build().expect("valid");
        let g = xor2();
        let e = chain(
            &f,
            &g,
            &[Binding {
                inner_output: OutputId(0),
                outer_secret: SecretId(0),
            }],
        )
        .unwrap_err();
        assert!(matches!(e, ComposeError::ShareCountMismatch { .. }));
    }

    #[test]
    fn chain_rejects_unknown_and_duplicate_bindings() {
        let f = refresh2();
        let g = xor2();
        let bad = Binding {
            inner_output: OutputId(7),
            outer_secret: SecretId(0),
        };
        assert!(matches!(
            chain(&f, &g, &[bad]),
            Err(ComposeError::UnknownBinding(_))
        ));
        let b0 = Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        };
        assert!(matches!(
            chain(&f, &g, &[b0, b0]),
            Err(ComposeError::DuplicateBinding(_))
        ));
    }

    #[test]
    fn unbound_inner_outputs_survive() {
        // f with two outputs, only one bound: the other stays observable.
        let mut b = NetlistBuilder::new("two");
        let s = b.secret("x");
        let a = b.shares(s, 2);
        let r = b.random("r");
        let q0 = b.xor(a[0], r);
        let q1 = b.xor(a[1], r);
        let o1 = b.output("y1");
        b.output_share(q0, o1, 0);
        b.output_share(q1, o1, 1);
        let e0 = b.buf(a[0]);
        let e1 = b.buf(a[1]);
        let o2 = b.output("y2");
        b.output_share(e0, o2, 0);
        b.output_share(e1, o2, 1);
        let f = b.build().expect("valid");
        let g = xor2();
        let h = chain(
            &f,
            &g,
            &[Binding {
                inner_output: OutputId(0),
                outer_secret: SecretId(1),
            }],
        )
        .expect("composes");
        assert_eq!(h.output_names.len(), 2); // g's w + f's unbound y2
    }

    #[test]
    fn chain_rejects_dangling_references_without_panicking() {
        // Corrupt a valid gadget so a cell input points past the wire table;
        // chain() must surface this as an error, not an index panic.
        let mut f = refresh2();
        f.cells[0].inputs[0] = WireId(999);
        let g = xor2();
        let b = Binding {
            inner_output: OutputId(0),
            outer_secret: SecretId(0),
        };
        let e = chain(&f, &g, &[b]).unwrap_err();
        assert!(
            matches!(e, ComposeError::Invalid(NetlistError::DanglingReference(_))),
            "got {e:?}"
        );
        // Same for the outer gadget's cell table.
        let f = refresh2();
        let mut g = xor2();
        g.cells[0].output = WireId(999);
        let e = chain(&f, &g, &[b]).unwrap_err();
        assert!(
            matches!(e, ComposeError::Invalid(NetlistError::DanglingReference(_))),
            "got {e:?}"
        );
    }

    #[test]
    fn name_collisions_are_resolved() {
        // Compose a gadget with itself: every name collides once.
        let f = refresh2();
        let g = refresh2();
        let h = chain(
            &f,
            &g,
            &[Binding {
                inner_output: OutputId(0),
                outer_secret: SecretId(0),
            }],
        )
        .expect("composes");
        h.validate().expect("names stay unique");
        assert_eq!(h.num_secrets(), 1);
        assert_eq!(h.randoms().len(), 2);
    }
}
