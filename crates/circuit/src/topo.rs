//! Topological ordering of netlist cells.

use crate::netlist::{CellId, Netlist, NetlistError, WireId};

/// Computes a topological order of the cells (every cell appears after the
/// drivers of all of its inputs).
///
/// Registers are treated as combinational identities here; the gadget
/// netlists analysed by the verifier are feed-forward pipelines, so a cycle
/// (even through a register) is reported as an error.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the cell graph is cyclic.
pub fn topo_order(n: &Netlist) -> Result<Vec<CellId>, NetlistError> {
    let num_wires = n.wires.len();
    // driver_of[w] = cell driving wire w, if any.
    let mut driver_of: Vec<Option<CellId>> = vec![None; num_wires];
    for (i, c) in n.cells.iter().enumerate() {
        driver_of[c.output.0 as usize] = Some(CellId(i as u32));
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut mark = vec![Mark::White; n.cells.len()];
    let mut order = Vec::with_capacity(n.cells.len());

    // Iterative DFS to avoid stack overflow on deep pipelines.
    for start in 0..n.cells.len() {
        if mark[start] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = Mark::Grey;
        while let Some(frame) = stack.last_mut() {
            let cell = frame.0;
            let inputs = &n.cells[cell].inputs;
            if frame.1 < inputs.len() {
                let wire: WireId = inputs[frame.1];
                frame.1 += 1;
                if let Some(dep) = driver_of[wire.0 as usize] {
                    match mark[dep.0 as usize] {
                        Mark::White => {
                            mark[dep.0 as usize] = Mark::Grey;
                            stack.push((dep.0 as usize, 0));
                        }
                        Mark::Grey => {
                            return Err(NetlistError::CombinationalCycle(
                                n.wire_name(n.cells[dep.0 as usize].output).to_string(),
                            ));
                        }
                        Mark::Black => {}
                    }
                }
            } else {
                mark[cell] = Mark::Black;
                order.push(CellId(cell as u32));
                stack.pop();
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::netlist::{Cell, Gate, InputRole, Wire};

    #[test]
    fn order_respects_dependencies() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let t1 = b.and(p, q);
        let t2 = b.xor(t1, p);
        let t3 = b.or(t2, t1);
        b.public_output(t3);
        let n = b.build().expect("valid");
        let order = topo_order(&n).expect("acyclic");
        assert_eq!(order.len(), 3);
        let pos = |c: CellId| order.iter().position(|&x| x == c).unwrap();
        // Cell 0 (and) before cell 1 (xor) before cell 2 (or).
        assert!(pos(CellId(0)) < pos(CellId(1)));
        assert!(pos(CellId(1)) < pos(CellId(2)));
    }

    #[test]
    fn detects_cycles() {
        let mut n = crate::netlist::Netlist::new("cyc");
        n.wires.push(Wire { name: "a".into() });
        n.wires.push(Wire { name: "b".into() });
        n.inputs
            .push((crate::netlist::WireId(0), InputRole::Public));
        // b = b ∧ a: self-dependency.
        n.cells.push(Cell {
            name: "c".into(),
            gate: Gate::And,
            inputs: vec![crate::netlist::WireId(1), crate::netlist::WireId(0)],
            output: crate::netlist::WireId(1),
        });
        assert!(matches!(
            topo_order(&n),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn empty_netlist_is_fine() {
        let n = crate::netlist::Netlist::new("empty");
        assert_eq!(topo_order(&n).expect("ok").len(), 0);
    }
}
