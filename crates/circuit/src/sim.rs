//! Bit-level netlist simulation.
//!
//! Used as the ground-truth oracle: the exhaustive verifier and the test
//! suite evaluate every wire on concrete inputs and compare against the BDD
//! unfolding and the spectral engines.

use crate::netlist::{Netlist, NetlistError, WireId};
use crate::topo::topo_order;

/// A compiled simulator for a netlist.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<u32>,
}

impl<'a> Simulator<'a> {
    /// Compiles the netlist (topologically orders its cells).
    ///
    /// # Errors
    ///
    /// Fails if the netlist is cyclic.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order = topo_order(netlist)?.into_iter().map(|c| c.0).collect();
        Ok(Simulator { netlist, order })
    }

    /// Evaluates every wire. `assignment` assigns bit `i` to the `i`-th
    /// entry of `netlist.inputs` (declaration order).
    pub fn eval_all(&self, assignment: u128) -> Vec<bool> {
        let mut values = vec![false; self.netlist.wires.len()];
        for (i, &(w, _)) in self.netlist.inputs.iter().enumerate() {
            values[w.0 as usize] = assignment >> i & 1 == 1;
        }
        let mut buf = Vec::with_capacity(3);
        for &c in &self.order {
            let cell = &self.netlist.cells[c as usize];
            buf.clear();
            buf.extend(cell.inputs.iter().map(|&w| values[w.0 as usize]));
            values[cell.output.0 as usize] = cell.gate.eval(&buf);
        }
        values
    }

    /// Evaluates a single wire under `assignment`.
    pub fn eval_wire(&self, wire: WireId, assignment: u128) -> bool {
        self.eval_all(assignment)[wire.0 as usize]
    }

    /// Number of primary input bits (the width of the assignment).
    pub fn num_inputs(&self) -> usize {
        self.netlist.inputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn simulates_a_small_circuit() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let t = b.and(p, q);
        let u = b.xor(t, p);
        b.public_output(u);
        let n = b.build().expect("valid");
        let sim = Simulator::new(&n).expect("acyclic");
        assert_eq!(sim.num_inputs(), 2);
        // u = (p∧q) ⊕ p = p∧¬q.
        for a in 0..4u128 {
            let p_v = a & 1 == 1;
            let q_v = a >> 1 & 1 == 1;
            assert_eq!(sim.eval_wire(u, a), p_v && !q_v, "a={a:b}");
        }
    }

    #[test]
    fn registers_are_transparent() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let r = b.reg(p);
        let nr = b.not(r);
        b.public_output(nr);
        let n = b.build().expect("valid");
        let sim = Simulator::new(&n).expect("acyclic");
        assert!(sim.eval_wire(nr, 0b0));
        assert!(!sim.eval_wire(nr, 0b1));
    }
}
