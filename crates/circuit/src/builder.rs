//! Fluent construction of annotated netlists.
//!
//! [`NetlistBuilder`] is the programmatic front-end used by the gadget
//! generators: declare secrets, shares, randoms and outputs, then wire up
//! gates. Wire and cell names are generated automatically unless given.
//!
//! ```
//! use walshcheck_circuit::builder::NetlistBuilder;
//!
//! // q = (a0 ⊕ r) ⊕ a1 — a trivially refreshed pass-through.
//! let mut b = NetlistBuilder::new("demo");
//! let x = b.secret("x");
//! let a0 = b.share(x, 0);
//! let a1 = b.share(x, 1);
//! let r = b.random("r");
//! let t = b.xor(a0, r);
//! let q = b.xor(t, a1);
//! let o = b.output("q");
//! b.output_share(q, o, 0);
//! let netlist = b.build()?;
//! assert_eq!(netlist.num_cells(), 2);
//! # Ok::<(), walshcheck_circuit::netlist::NetlistError>(())
//! ```

use crate::netlist::{
    Cell, Gate, InputRole, Netlist, NetlistError, OutputId, OutputRole, SecretId, Wire, WireId,
};

/// Incremental builder for [`Netlist`].
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    netlist: Netlist,
    next_wire: u32,
    next_cell: u32,
}

impl NetlistBuilder {
    /// Starts a new netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            netlist: Netlist::new(name),
            next_wire: 0,
            next_cell: 0,
        }
    }

    fn fresh_wire(&mut self, name: Option<String>) -> WireId {
        let id = WireId(self.netlist.wires.len() as u32);
        let name = name.unwrap_or_else(|| {
            let n = format!("_w{}", self.next_wire);
            self.next_wire += 1;
            n
        });
        self.netlist.wires.push(Wire { name });
        id
    }

    /// Declares a new secret and returns its identifier.
    pub fn secret(&mut self, name: impl Into<String>) -> SecretId {
        let id = SecretId(self.netlist.secret_names.len() as u32);
        self.netlist.secret_names.push(name.into());
        id
    }

    /// Declares a new shared output and returns its identifier.
    pub fn output(&mut self, name: impl Into<String>) -> OutputId {
        let id = OutputId(self.netlist.output_names.len() as u32);
        self.netlist.output_names.push(name.into());
        id
    }

    /// Declares share `index` of `secret` as a primary input and returns its
    /// wire. The wire is named `<secret>[<index>]`.
    pub fn share(&mut self, secret: SecretId, index: u32) -> WireId {
        let base = self.netlist.secret_names[secret.0 as usize].clone();
        let w = self.fresh_wire(Some(format!("{base}[{index}]")));
        self.netlist
            .inputs
            .push((w, InputRole::Share { secret, index }));
        w
    }

    /// Declares `count` shares of `secret` at once (indices `0..count`).
    pub fn shares(&mut self, secret: SecretId, count: u32) -> Vec<WireId> {
        (0..count).map(|i| self.share(secret, i)).collect()
    }

    /// Declares a named random input bit.
    pub fn random(&mut self, name: impl Into<String>) -> WireId {
        let w = self.fresh_wire(Some(name.into()));
        self.netlist.inputs.push((w, InputRole::Random));
        w
    }

    /// Declares `count` random bits named `<prefix>[i]`.
    pub fn randoms(&mut self, prefix: &str, count: u32) -> Vec<WireId> {
        (0..count)
            .map(|i| self.random(format!("{prefix}[{i}]")))
            .collect()
    }

    /// Declares a named public input bit.
    pub fn public_input(&mut self, name: impl Into<String>) -> WireId {
        let w = self.fresh_wire(Some(name.into()));
        self.netlist.inputs.push((w, InputRole::Public));
        w
    }

    /// Marks `wire` as share `index` of shared output `output`.
    pub fn output_share(&mut self, wire: WireId, output: OutputId, index: u32) {
        self.netlist
            .outputs
            .push((wire, OutputRole::Share { output, index }));
    }

    /// Marks `wire` as an unshared public output.
    pub fn public_output(&mut self, wire: WireId) {
        self.netlist.outputs.push((wire, OutputRole::Public));
    }

    fn cell(&mut self, gate: Gate, inputs: Vec<WireId>, name: Option<String>) -> WireId {
        let out = self.fresh_wire(None);
        let name = name.unwrap_or_else(|| {
            let n = format!("_c{}", self.next_cell);
            self.next_cell += 1;
            n
        });
        self.netlist.cells.push(Cell {
            name,
            gate,
            inputs,
            output: out,
        });
        out
    }

    /// Adds a gate with an explicit instance name; returns the output wire.
    pub fn gate_named(&mut self, gate: Gate, inputs: &[WireId], name: impl Into<String>) -> WireId {
        self.cell(gate, inputs.to_vec(), Some(name.into()))
    }

    /// `a ∧ b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.cell(Gate::And, vec![a, b], None)
    }

    /// `¬(a ∧ b)`.
    pub fn nand(&mut self, a: WireId, b: WireId) -> WireId {
        self.cell(Gate::Nand, vec![a, b], None)
    }

    /// `a ∨ b`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        self.cell(Gate::Or, vec![a, b], None)
    }

    /// `¬(a ∨ b)`.
    pub fn nor(&mut self, a: WireId, b: WireId) -> WireId {
        self.cell(Gate::Nor, vec![a, b], None)
    }

    /// `a ⊕ b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.cell(Gate::Xor, vec![a, b], None)
    }

    /// `¬(a ⊕ b)`.
    pub fn xnor(&mut self, a: WireId, b: WireId) -> WireId {
        self.cell(Gate::Xnor, vec![a, b], None)
    }

    /// `¬a`.
    pub fn not(&mut self, a: WireId) -> WireId {
        self.cell(Gate::Not, vec![a], None)
    }

    /// Identity buffer.
    pub fn buf(&mut self, a: WireId) -> WireId {
        self.cell(Gate::Buf, vec![a], None)
    }

    /// Register (unit-delay identity; glitch boundary).
    pub fn reg(&mut self, d: WireId) -> WireId {
        self.cell(Gate::Dff, vec![d], None)
    }

    /// Multiplexer `s ? b : a`.
    pub fn mux(&mut self, s: WireId, a: WireId, b: WireId) -> WireId {
        self.cell(Gate::Mux, vec![s, a, b], None)
    }

    /// XOR-reduces a non-empty list of wires left to right.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is empty.
    pub fn xor_all(&mut self, wires: &[WireId]) -> WireId {
        let (&first, rest) = wires.split_first().expect("xor_all of empty list");
        rest.iter().fold(first, |acc, &w| self.xor(acc, w))
    }

    /// Finishes and validates the netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if a structural invariant is violated.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        self.netlist.validate()?;
        Ok(self.netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_names_are_unique_and_stable() {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let y = b.and(a0, a1);
        let o = b.output("q");
        b.output_share(y, o, 0);
        let n = b.build().expect("valid");
        assert_eq!(n.wire_name(a0), "x[0]");
        assert_eq!(n.wire_name(a1), "x[1]");
        assert_eq!(n.name, "m");
        assert_eq!(n.num_wires(), 3);
    }

    #[test]
    fn xor_all_folds_left() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let r = b.public_input("r");
        let x = b.xor_all(&[p, q, r]);
        b.public_output(x);
        let n = b.build().expect("valid");
        assert_eq!(n.num_cells(), 2);
    }

    #[test]
    fn all_gate_helpers_build() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let w1 = b.and(p, q);
        let w2 = b.nand(p, q);
        let w3 = b.or(w1, w2);
        let w4 = b.nor(p, w3);
        let w5 = b.xnor(w4, q);
        let w6 = b.not(w5);
        let w7 = b.buf(w6);
        let w8 = b.reg(w7);
        let w9 = b.mux(p, w8, q);
        b.public_output(w9);
        let n = b.build().expect("valid");
        assert_eq!(n.num_cells(), 9);
    }

    #[test]
    fn named_gates_keep_their_names() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let w = b.gate_named(Gate::And, &[p, q], "the_and");
        b.public_output(w);
        let n = b.build().expect("valid");
        assert!(n.cells.iter().any(|c| c.name == "the_and"));
    }
}
