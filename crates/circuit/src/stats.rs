//! Netlist statistics: gate counts, logic depth, masking cost metrics.

use crate::netlist::{Gate, Netlist, NetlistError};
use crate::topo::topo_order;

/// Summary metrics of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total wires.
    pub wires: usize,
    /// Total cells.
    pub cells: usize,
    /// Non-linear gates (AND/NAND/OR/NOR/MUX) — the masking cost driver.
    pub nonlinear_gates: usize,
    /// XOR/XNOR gates.
    pub linear_gates: usize,
    /// Registers.
    pub registers: usize,
    /// Inverters and buffers.
    pub unary_gates: usize,
    /// Longest combinational path (in gates, registers count as one level).
    pub depth: usize,
    /// Fresh random bits consumed.
    pub randoms: usize,
    /// Number of secrets.
    pub secrets: usize,
    /// Shares of the widest secret.
    pub max_shares: usize,
}

/// Computes [`NetlistStats`].
///
/// # Errors
///
/// Fails if the netlist is cyclic.
pub fn stats(netlist: &Netlist) -> Result<NetlistStats, NetlistError> {
    let order = topo_order(netlist)?;
    let mut depth_of = vec![0usize; netlist.num_wires()];
    let mut depth = 0;
    let mut nonlinear = 0;
    let mut linear = 0;
    let mut registers = 0;
    let mut unary = 0;
    for c in order {
        let cell = &netlist.cells[c.0 as usize];
        match cell.gate {
            Gate::And | Gate::Nand | Gate::Or | Gate::Nor | Gate::Mux => nonlinear += 1,
            Gate::Xor | Gate::Xnor => linear += 1,
            Gate::Dff => registers += 1,
            Gate::Buf | Gate::Not => unary += 1,
        }
        let d = 1 + cell
            .inputs
            .iter()
            .map(|&w| depth_of[w.0 as usize])
            .max()
            .unwrap_or(0);
        depth_of[cell.output.0 as usize] = d;
        depth = depth.max(d);
    }
    let max_shares = (0..netlist.num_secrets())
        .map(|i| netlist.shares_of(crate::netlist::SecretId(i as u32)).len())
        .max()
        .unwrap_or(0);
    Ok(NetlistStats {
        wires: netlist.num_wires(),
        cells: netlist.num_cells(),
        nonlinear_gates: nonlinear,
        linear_gates: linear,
        registers,
        unary_gates: unary,
        depth,
        randoms: netlist.randoms().len(),
        secrets: netlist.num_secrets(),
        max_shares,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn counts_and_depth() {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r");
        let t1 = b.and(a0, a1); // depth 1
        let t2 = b.xor(t1, r); // depth 2
        let t3 = b.reg(t2); // depth 3
        let t4 = b.not(t3); // depth 4
        let o = b.output("q");
        b.output_share(t4, o, 0);
        let n = b.build().expect("valid");
        let st = stats(&n).expect("acyclic");
        assert_eq!(st.nonlinear_gates, 1);
        assert_eq!(st.linear_gates, 1);
        assert_eq!(st.registers, 1);
        assert_eq!(st.unary_gates, 1);
        assert_eq!(st.depth, 4);
        assert_eq!(st.randoms, 1);
        assert_eq!(st.secrets, 1);
        assert_eq!(st.max_shares, 2);
    }

    #[test]
    fn empty_netlist() {
        let n = Netlist::new("empty");
        let st = stats(&n).expect("ok");
        assert_eq!(st.depth, 0);
        assert_eq!(st.cells, 0);
        assert_eq!(st.max_shares, 0);
    }
}
