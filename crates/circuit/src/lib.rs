//! # walshcheck-circuit — annotated gate-level netlists
//!
//! The circuit substrate of the probing-security verifier:
//!
//! * [`netlist`] — a flat bit-level netlist with maskVerif-style masking
//!   annotations (shares, randoms, publics, shared outputs);
//! * [`builder`] — fluent programmatic construction (used by the gadget
//!   generators);
//! * [`ilang`] — reader/writer for the Yosys ILANG subset with `##`
//!   annotations consumed by the paper's tool;
//! * [`compose`] — structural `g ∘ f` composition of gadget netlists;
//! * [`topo`], [`sim`], [`stats`] — topological ordering, a concrete bit
//!   simulator (the ground-truth oracle) and summary metrics;
//! * [`unfold::unfold`] — symbolic unfolding of every wire into a BDD (step 1 of the
//!   paper's methodology);
//! * [`glitch`] — glitch-extended observation sets for the robust probing
//!   model.
//!
//! ```
//! use walshcheck_circuit::builder::NetlistBuilder;
//! use walshcheck_circuit::unfold::unfold;
//!
//! let mut b = NetlistBuilder::new("tiny");
//! let x = b.secret("x");
//! let a0 = b.share(x, 0);
//! let a1 = b.share(x, 1);
//! let t = b.xor(a0, a1);
//! let o = b.output("q");
//! b.output_share(t, o, 0);
//! let n = b.build()?;
//! let unf = unfold(&n)?;
//! assert_eq!(unf.bdds.support(unf.wire_fn(t)).len(), 2);
//! # Ok::<(), walshcheck_circuit::netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod compose;
pub mod glitch;
pub mod ilang;
pub mod netlist;
pub mod sim;
pub mod stats;
pub mod topo;
pub mod unfold;

pub use builder::NetlistBuilder;
pub use glitch::ProbeModel;
pub use netlist::{Gate, InputRole, Netlist, OutputId, OutputRole, SecretId, WireId};
pub use unfold::{unfold, Unfolded};
