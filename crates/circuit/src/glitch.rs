//! Glitch-extended (robust) probing model support.
//!
//! In the robust probing model (Faust et al., "Composable Masking Schemes in
//! the Presence of Physical Defaults"), a probe on a combinational wire may —
//! through transient glitches — reveal *every stable signal in its
//! combinational fan-in cone*: primary inputs and register outputs. A probe
//! on a register output or a primary input reveals just that one stable
//! value.
//!
//! [`observation_sets`] computes, for every wire, the set of wires whose
//! values a glitch-extended probe on it observes. The standard model is the
//! degenerate case where each wire observes only itself.

use crate::netlist::{Gate, Netlist, NetlistError, WireId};
use crate::topo::topo_order;

/// The leakage model for internal probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbeModel {
    /// A probe observes exactly the probed wire's value.
    #[default]
    Standard,
    /// A probe observes every stable signal (input or register output) in
    /// the probed wire's combinational cone.
    Glitch,
}

/// For each wire, the set of wires observed by a probe placed on it under
/// `model`, indexed by wire id. Sets are sorted and deduplicated.
pub fn observation_sets(
    netlist: &Netlist,
    model: ProbeModel,
) -> Result<Vec<Vec<WireId>>, NetlistError> {
    let n = netlist.wires.len();
    match model {
        ProbeModel::Standard => Ok((0..n).map(|w| vec![WireId(w as u32)]).collect()),
        ProbeModel::Glitch => {
            let order = topo_order(netlist)?;
            let mut sets: Vec<Vec<WireId>> = vec![Vec::new(); n];
            for &(w, _) in &netlist.inputs {
                sets[w.0 as usize] = vec![w];
            }
            for c in order {
                let cell = &netlist.cells[c.0 as usize];
                let out = cell.output.0 as usize;
                if cell.gate == Gate::Dff {
                    // Register output is stable: the probe sees only it.
                    sets[out] = vec![cell.output];
                } else {
                    let mut acc: Vec<WireId> = Vec::new();
                    for &i in &cell.inputs {
                        acc.extend_from_slice(&sets[i.0 as usize]);
                    }
                    acc.sort();
                    acc.dedup();
                    sets[out] = acc;
                }
            }
            Ok(sets)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn standard_model_is_identity() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let t = b.and(p, q);
        b.public_output(t);
        let n = b.build().expect("valid");
        let sets = observation_sets(&n, ProbeModel::Standard).expect("ok");
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(s, &vec![WireId(i as u32)]);
        }
    }

    #[test]
    fn glitch_model_extends_to_stable_cone() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let r = b.public_input("r");
        let t1 = b.and(p, q);
        let t2 = b.xor(t1, r);
        b.public_output(t2);
        let n = b.build().expect("valid");
        let sets = observation_sets(&n, ProbeModel::Glitch).expect("ok");
        // Probing t2 sees all three inputs through glitches.
        assert_eq!(sets[t2.0 as usize], vec![p, q, r]);
        assert_eq!(sets[t1.0 as usize], vec![p, q]);
        assert_eq!(sets[p.0 as usize], vec![p]);
    }

    #[test]
    fn registers_stop_glitch_propagation() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let t1 = b.and(p, q);
        let ff = b.reg(t1);
        let r = b.public_input("r");
        let t2 = b.xor(ff, r);
        b.public_output(t2);
        let n = b.build().expect("valid");
        let sets = observation_sets(&n, ProbeModel::Glitch).expect("ok");
        // The register output is stable; probing it reveals only itself.
        assert_eq!(sets[ff.0 as usize], vec![ff]);
        // Downstream of the register, the cone restarts at the register.
        assert_eq!(sets[t2.0 as usize], {
            let mut v = vec![ff, r];
            v.sort();
            v
        });
    }
}
