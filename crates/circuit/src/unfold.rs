//! Circuit "unfolding": symbolic evaluation of every wire into a BDD.
//!
//! This is step (1) of the paper's methodology: the annotated gate-level
//! description is unfolded so that every possible intermediate probe has an
//! explicit Boolean function over the primary inputs. The BDD manager's
//! variable order is the input declaration order, shared between the circuit
//! BDDs and the spectral coordinates of the Walsh analysis.

use walshcheck_dd::bdd::{Bdd, BddManager};
use walshcheck_dd::var::VarId;

use crate::netlist::{Gate, Netlist, NetlistError, WireId};
use crate::topo::topo_order;

/// The result of unfolding a netlist: one BDD per wire.
#[derive(Debug)]
pub struct Unfolded {
    /// The BDD manager holding every wire function. Variable `i` is the
    /// `i`-th entry of the netlist's `inputs` list.
    pub bdds: BddManager,
    /// `wire_fns[w]` is the function computed by wire `w`.
    pub wire_fns: Vec<Bdd>,
}

impl Unfolded {
    /// The function of `wire`.
    pub fn wire_fn(&self, wire: WireId) -> Bdd {
        self.wire_fns[wire.0 as usize]
    }

    /// The BDD variable assigned to input wire position `pos` (index into
    /// the netlist's `inputs` list).
    pub fn input_var(pos: usize) -> VarId {
        VarId(pos as u32)
    }
}

/// Unfolds `netlist`, building the BDD of every wire.
///
/// # Errors
///
/// Fails if the netlist is cyclic.
///
/// # Panics
///
/// Panics if the netlist has more inputs than the BDD manager supports
/// (128 variables).
pub fn unfold(netlist: &Netlist) -> Result<Unfolded, NetlistError> {
    let order = topo_order(netlist)?;
    let mut bdds = BddManager::new(netlist.inputs.len() as u32);
    let mut wire_fns = vec![Bdd::FALSE; netlist.wires.len()];
    for (i, &(w, _)) in netlist.inputs.iter().enumerate() {
        wire_fns[w.0 as usize] = bdds.var(VarId(i as u32));
    }
    for c in order {
        let cell = &netlist.cells[c.0 as usize];
        let f = |i: usize| wire_fns[cell.inputs[i].0 as usize];
        let out = match cell.gate {
            Gate::Buf | Gate::Dff => f(0),
            Gate::Not => bdds.not(f(0)),
            Gate::And => bdds.and(f(0), f(1)),
            Gate::Nand => bdds.nand(f(0), f(1)),
            Gate::Or => bdds.or(f(0), f(1)),
            Gate::Nor => bdds.nor(f(0), f(1)),
            Gate::Xor => bdds.xor(f(0), f(1)),
            Gate::Xnor => bdds.xnor(f(0), f(1)),
            Gate::Mux => bdds.ite(f(0), f(2), f(1)),
        };
        wire_fns[cell.output.0 as usize] = out;
    }
    Ok(Unfolded { bdds, wire_fns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::sim::Simulator;

    #[test]
    fn unfolding_agrees_with_simulation() {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r");
        let t1 = b.and(a0, a1);
        let t2 = b.xor(t1, r);
        let t3 = b.mux(a0, t2, r);
        let t4 = b.nor(t3, t1);
        b.public_output(t4);
        let n = b.build().expect("valid");
        let unf = unfold(&n).expect("acyclic");
        let sim = Simulator::new(&n).expect("acyclic");
        for a in 0..8u128 {
            let values = sim.eval_all(a);
            #[allow(clippy::needless_range_loop)] // w is also the wire id
            for w in 0..n.num_wires() {
                let wire = crate::netlist::WireId(w as u32);
                assert_eq!(
                    unf.bdds.eval(unf.wire_fn(wire), a),
                    values[w],
                    "wire {} at {a:b}",
                    n.wire_name(wire)
                );
            }
        }
    }

    #[test]
    fn input_wires_are_variables() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let t = b.xor(p, q);
        b.public_output(t);
        let n = b.build().expect("valid");
        let unf = unfold(&n).expect("acyclic");
        assert_eq!(unf.bdds.num_vars(), 2);
        assert!(unf.bdds.root_var(unf.wire_fn(p)).is_some());
        let sup = unf.bdds.support(unf.wire_fn(t));
        assert_eq!(sup.len(), 2);
    }
}
