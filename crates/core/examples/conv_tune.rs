//! Calibration microbenchmark: hash convolution vs dense kernel.
//!
//! Times `MapSpectrum::convolve` against the dense convolution-theorem
//! path on random spectra across support widths and densities, printing
//! the speedup per operating point. The break-even it measures —
//! `la·lb ≈ s·2ˢ/2` — is the cost heuristic hard-coded in
//! `try_dense_convolve`; re-run this after touching either kernel and
//! update the factor there if the crossover moved.
//!
//! ```text
//! cargo run --release -p walshcheck-core --example conv_tune
//! ```
use std::time::Instant;
use walshcheck_core::spectrum::{MapSpectrum, Spectrum};
use walshcheck_dd::dyadic::Dyadic;
use walshcheck_dd::fasthash::FastMap;

fn mk(support: u128, n_entries: usize, seed: u64) -> MapSpectrum {
    let bits: Vec<u32> = (0..128).filter(|&i| support >> i & 1 == 1).collect();
    let mut state = seed | 1;
    let mut map: FastMap<u128, Dyadic> = FastMap::default();
    while map.len() < n_entries {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (state >> 20) as usize & ((1usize << bits.len()) - 1);
        let mut key = 0u128;
        for (i, &b) in bits.iter().enumerate() {
            key |= ((idx as u128 >> i) & 1) << b;
        }
        let m = ((state >> 40) as i64 % 7) - 3;
        if m != 0 {
            map.insert(key, Dyadic::new(i128::from(m), -8));
        }
    }
    MapSpectrum::from_map(&map)
}

fn main() {
    for s in [6u32, 8, 10, 12] {
        let support = (1u128 << s) - 1;
        let full = 1usize << s;
        for frac in [8usize, 4, 2, 1] {
            let n = (full / frac).max(2).min(full);
            let a = mk(support, n, 1);
            let b = mk(support, n, 99);
            let reps = (200_000 / (n * n).max(1)).max(3);
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(a.convolve(&b));
            }
            let hash_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(a.convolve_opt(&b, 24));
            }
            let opt_us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
            println!(
                "s={s:2} la=lb={n:5} la*lb={:8}  hash {hash_us:9.2}us  opt {opt_us:9.2}us  ratio {:5.2}",
                n * n,
                hash_us / opt_us
            );
        }
    }
}
