//! Property-based tests for the core verification machinery: the relation
//! matrix `T(α,ρ)` in both its forms, spectrum algebra, and the prefilter's
//! soundness as a necessary condition.

use proptest::prelude::*;

use walshcheck_circuit::builder::NetlistBuilder;
use walshcheck_circuit::netlist::Netlist;
use walshcheck_core::mask::{Mask, VarMap};
use walshcheck_core::spectrum::{LilSpectrum, MapSpectrum, Spectrum};
use walshcheck_core::tmatrix::Region;
use walshcheck_dd::bdd::BddManager;
use walshcheck_dd::dyadic::Dyadic;

/// A random port layout: per secret a share count, plus randoms/publics.
fn varmap_strategy() -> impl Strategy<Value = VarMap> {
    (
        proptest::collection::vec(1u32..4, 1..3), // share counts per secret
        0u32..3,                                  // randoms
        0u32..2,                                  // publics
    )
        .prop_map(|(share_counts, randoms, publics)| {
            let mut b = NetlistBuilder::new("layout");
            let mut wires = Vec::new();
            for (i, &count) in share_counts.iter().enumerate() {
                let s = b.secret(format!("x{i}"));
                wires.extend(b.shares(s, count));
            }
            for i in 0..randoms {
                wires.push(b.random(format!("r{i}")));
            }
            for i in 0..publics {
                wires.push(b.public_input(format!("p{i}")));
            }
            let q = b.xor_all(&wires);
            let o = b.output("q");
            b.output_share(q, o, 0);
            let n: Netlist = b.build().expect("valid");
            VarMap::from_netlist(&n)
        })
}

fn region_strategy() -> impl Strategy<Value = Region> {
    prop_oneof![
        Just(Region::Probing),
        (0u32..4).prop_map(|budget| Region::ShareBudget { budget }),
        (0u64..8, 0u32..3).prop_map(|(allowed_indices, extra)| Region::PiniBudget {
            allowed_indices,
            extra
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scan predicate and the BDD form of every region agree on every
    /// coordinate of every random port layout.
    #[test]
    fn region_matches_equals_region_bdd(vm in varmap_strategy(), region in region_strategy()) {
        let mut bdds = BddManager::new(vm.num_vars as u32);
        let t = region.to_bdd(&vm, &mut bdds);
        for a in 0..1u128 << vm.num_vars {
            prop_assert_eq!(
                bdds.eval(t, a),
                region.matches(&vm, Mask(a)),
                "{:?} at {:b}", region, a
            );
        }
    }

    /// Prefilter soundness: if no subset of the support mask matches the
    /// region, then indeed no coordinate within the support matches.
    #[test]
    fn prunable_support_contains_no_matching_coordinate(
        vm in varmap_strategy(),
        region in region_strategy(),
        support_bits in any::<u128>(),
    ) {
        let support = Mask(support_bits & ((1 << vm.num_vars) - 1));
        // Re-derive the prefilter condition from the public predicate: the
        // support is prunable iff its own mask (the maximal subset) fails
        // every monotone witness. All three regions are monotone in α on
        // the share part, so testing the full support mask suffices for
        // ShareBudget/PiniBudget; Probing needs the per-group containment.
        let prunable = match region {
            Region::Probing => !vm
                .share_groups
                .iter()
                .any(|g| g.is_subset(support)),
            Region::ShareBudget { budget } => vm
                .share_groups
                .iter()
                .all(|&g| support.weight_in(g) <= budget),
            Region::PiniBudget { allowed_indices, extra } => {
                (vm.share_indices(support) & !allowed_indices).count_ones() <= extra
            }
        };
        if prunable {
            // Enumerate all subsets of the support (support is small for
            // random layouts: ≤ 12 bits).
            let bits: Vec<usize> = support.iter().collect();
            prop_assume!(bits.len() <= 12);
            for choice in 0..1u64 << bits.len() {
                let mut alpha = Mask::ZERO;
                for (i, &b) in bits.iter().enumerate() {
                    if choice >> i & 1 == 1 {
                        alpha.0 |= 1 << b;
                    }
                }
                prop_assert!(
                    !region.matches(&vm, alpha),
                    "prefilter unsound: {:?} matches {:?} within support {:?}",
                    region, alpha, support
                );
            }
        }
    }
}

// ---- spectrum algebra ----

fn spectrum_strategy() -> impl Strategy<Value = Vec<(u128, i64)>> {
    proptest::collection::btree_map(0u128..64, -8i64..8, 0..8)
        .prop_map(|m| m.into_iter().filter(|&(_, v)| v != 0).collect())
}

fn to_specs(entries: &[(u128, i64)]) -> (MapSpectrum, LilSpectrum) {
    let map: walshcheck_dd::FastMap<u128, Dyadic> = entries
        .iter()
        .map(|&(k, v)| (k, Dyadic::from_int(v)))
        .collect();
    (MapSpectrum::from_map(&map), LilSpectrum::from_map(&map))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Convolution is commutative and container-independent.
    #[test]
    fn convolution_commutes_and_containers_agree(
        a in spectrum_strategy(),
        b in spectrum_strategy(),
    ) {
        let (ma, la) = to_specs(&a);
        let (mb, lb) = to_specs(&b);
        let ab = ma.convolve(&mb);
        let ba = mb.convolve(&ma);
        let lab = la.convolve(&lb);
        prop_assert_eq!(ab.len(), ba.len());
        prop_assert_eq!(ab.len(), lab.len());
        let mut entries = Vec::new();
        ab.for_each(&mut |mask, c| entries.push((mask, c)));
        for (mask, c) in entries {
            prop_assert_eq!(ba.coefficient(mask), c);
            prop_assert_eq!(lab.coefficient(mask), c);
        }
    }

    /// Convolution is associative.
    #[test]
    fn convolution_is_associative(
        a in spectrum_strategy(),
        b in spectrum_strategy(),
        c in spectrum_strategy(),
    ) {
        let (ma, _) = to_specs(&a);
        let (mb, _) = to_specs(&b);
        let (mc, _) = to_specs(&c);
        let left = ma.convolve(&mb).convolve(&mc);
        let right = ma.convolve(&mb.convolve(&mc));
        prop_assert_eq!(left.len(), right.len());
        let mut entries = Vec::new();
        left.for_each(&mut |mask, v| entries.push((mask, v)));
        for (mask, v) in entries {
            prop_assert_eq!(right.coefficient(mask), v);
        }
    }

    /// The unit spectrum is the convolution identity and support_union is
    /// the union of keys under the accepting predicate.
    #[test]
    fn unit_identity_and_support(entries in spectrum_strategy()) {
        let (m, l) = to_specs(&entries);
        let conv = m.convolve(&MapSpectrum::one());
        prop_assert_eq!(conv.len(), m.len());
        let mut items = Vec::new();
        m.for_each(&mut |mask, c| items.push((mask, c)));
        for (mask, c) in items {
            prop_assert_eq!(conv.coefficient(mask), c);
        }
        let expect = entries.iter().fold(0u128, |a, &(k, _)| a | k);
        prop_assert_eq!(m.support_union(&|_| true), Mask(expect));
        prop_assert_eq!(l.support_union(&|_| true), Mask(expect));
        prop_assert_eq!(m.support_union(&|_| false), Mask::ZERO);
    }
}
