//! Injectable filesystem layer for crash-consistency testing.
//!
//! Every byte-identity guarantee this crate makes (DESIGN.md §10/§13)
//! ultimately rests on what survives a crash, and *that* is decided by a
//! handful of filesystem primitives: whether a file's data was fsynced,
//! whether the rename that published it was followed by a parent-directory
//! fsync, whether an append landed as one write. [`IoFs`] is a thin trait
//! over exactly the mutating operations the artifact store and the
//! checkpoint writer perform, with two implementations:
//!
//! * [`RealFs`] — the production path: `std::fs` plus the *full* set of
//!   durability barriers (file fsync before rename, parent-directory fsync
//!   after rename/remove/create).
//! * [`TracingFs`] — wraps [`RealFs`], recording every mutating operation
//!   (with its bytes) into a crash-point schedule. The recorded [`Op`] log
//!   feeds [`crash_state`], which models a kernel page cache: data written
//!   but never fsynced may be lost or torn at a crash, and metadata
//!   (creates, renames, removes) not followed by a directory fsync may be
//!   undone.
//!
//! The model (documented in DESIGN.md §16) is deliberately adversarial
//! within POSIX: `fsync(file)` persists the file's *data* but not its
//! directory entry; only `fsync(parent_dir)` persists entries. Appends are
//! lost at whole-write granularity (the `O_APPEND` single-write guarantee)
//! except the final surviving write, which may additionally be torn to a
//! prefix. Three crash modes bracket what a real kernel may do:
//!
//! | mode                        | unsynced metadata | unsynced data        |
//! |-----------------------------|-------------------|----------------------|
//! | [`CrashMode::LoseUnsynced`] | undone            | lost                 |
//! | [`CrashMode::KeepMetadata`] | applied           | lost                 |
//! | [`CrashMode::TornTail`]     | applied           | kept, last write torn|
//!
//! A store is crash-consistent when the recovery invariants hold under
//! *every* mode at *every* point of the schedule — which is exactly what
//! the crash-point explorer (`walshcheck-daemon`'s `crashsim`) asserts.
//!
//! With the `fault-inject` feature, the `WALSHCHECK_FAULT` directive
//! `crash-at-io-op=N` aborts the process immediately before the N-th
//! (1-based) operation [`RealFs`] would perform, so the simulated schedule
//! can be cross-checked against a *real* crashed process.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The mutating filesystem operations the store and checkpoint writer use.
///
/// Reads are deliberately absent: they cannot affect what survives a
/// crash, and [`TracingFs`] performs every operation for real, so readers
/// always see a consistent live tree.
pub trait IoFs: Send + Sync + Debug {
    /// `mkdir -p`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Creates (or truncates) `path` and writes `bytes`. No fsync — the
    /// data sits in the page cache until [`IoFs::sync_file`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// `fsync` of `path`'s data (and inode). Does *not* persist the
    /// directory entry of a freshly created file — that takes
    /// [`IoFs::sync_dir`] on the parent.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// `fsync` of a directory: persists the entries (creates, renames,
    /// removes) performed inside it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Atomic rename. Durable only after [`IoFs::sync_dir`] on the parent
    /// — until then a crash may undo it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Appends `bytes` to `path` (creating it if absent) as one
    /// `O_APPEND` write, so concurrent appenders never interleave
    /// mid-record.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Removes a file. Durable only after [`IoFs::sync_dir`] on the
    /// parent.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Removes a directory tree. Durable only after [`IoFs::sync_dir`] on
    /// the parent.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// Aborts the process when the `crash-at-io-op=N` fault directive says
/// this (1-based) operation is the crash point. Compiled to nothing
/// without the `fault-inject` feature.
fn maybe_crash_io_op() {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        static OPS: AtomicU64 = AtomicU64::new(0);
        if let Some(n) = crate::fault::u64_directive("crash-at-io-op") {
            let op = OPS.fetch_add(1, Ordering::SeqCst) + 1;
            if op == n {
                eprintln!("fault-inject: crashing at I/O op {op}");
                std::process::abort();
            }
        }
    }
}

/// The production filesystem: `std::fs` with real fsyncs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl RealFs {
    /// A shareable handle (the common way to pass the default I/O layer).
    pub fn shared() -> Arc<dyn IoFs> {
        Arc::new(RealFs)
    }
}

impl IoFs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        maybe_crash_io_op();
        std::fs::create_dir_all(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        maybe_crash_io_op();
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        maybe_crash_io_op();
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        maybe_crash_io_op();
        // Opening a directory read-only and fsyncing it is the portable
        // unix idiom for persisting its entries; on platforms where
        // directories cannot be fsynced the call degrades to a no-op
        // error swallow (the data-path syncs still happened).
        match std::fs::File::open(path) {
            Ok(d) => d.sync_all(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(e),
            Err(_) => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        maybe_crash_io_op();
        std::fs::rename(from, to)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        maybe_crash_io_op();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        maybe_crash_io_op();
        std::fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        maybe_crash_io_op();
        std::fs::remove_dir_all(path)
    }
}

/// Writes `bytes` to `path` atomically *and durably*: a dot-prefixed
/// sibling temp file is written and fsynced, renamed over the target, and
/// the parent directory is fsynced — a crash leaves either the old content
/// or the new, never a torn file, and the rename itself cannot be undone.
///
/// With the `fault-inject` feature, the `store-torn-write=FILE` directive
/// tears the write of a file with that name: half the bytes land at the
/// final path with no fsync and no rename, simulating the torn write the
/// startup integrity scan must catch.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn atomic_replace(fs: &dyn IoFs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    #[cfg(feature = "fault-inject")]
    if let Some(torn) = crate::fault::string_directive("store-torn-write") {
        if path
            .file_name()
            .is_some_and(|n| n.to_string_lossy() == torn)
        {
            return fs.write_file(path, &bytes[..bytes.len() / 2]);
        }
    }
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "file".into())
    ));
    fs.write_file(&tmp, bytes)?;
    fs.sync_file(&tmp)?;
    fs.rename(&tmp, path)?;
    fs.sync_dir(dir)
}

/// One recorded filesystem operation ([`TracingFs`]'s schedule entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `mkdir -p`.
    CreateDirAll(PathBuf),
    /// Create/truncate + write (unsynced).
    WriteFile(PathBuf, Vec<u8>),
    /// File data fsync.
    SyncFile(PathBuf),
    /// Directory entry fsync.
    SyncDir(PathBuf),
    /// Atomic rename.
    Rename(PathBuf, PathBuf),
    /// One `O_APPEND` write (unsynced).
    Append(PathBuf, Vec<u8>),
    /// File removal.
    RemoveFile(PathBuf),
    /// Directory tree removal.
    RemoveDirAll(PathBuf),
}

impl Op {
    /// A compact single-line rendering for logs and failure messages.
    pub fn describe(&self) -> String {
        match self {
            Op::CreateDirAll(p) => format!("create-dir {}", p.display()),
            Op::WriteFile(p, b) => format!("write {} ({} bytes)", p.display(), b.len()),
            Op::SyncFile(p) => format!("sync-file {}", p.display()),
            Op::SyncDir(p) => format!("sync-dir {}", p.display()),
            Op::Rename(a, b) => format!("rename {} -> {}", a.display(), b.display()),
            Op::Append(p, b) => format!("append {} ({} bytes)", p.display(), b.len()),
            Op::RemoveFile(p) => format!("remove {}", p.display()),
            Op::RemoveDirAll(p) => format!("remove-dir {}", p.display()),
        }
    }
}

/// Records every mutating operation while performing it for real.
///
/// The live directory stays fully functional (reads, restarts, integrity
/// scans all work), and the recorded schedule can afterwards be replayed
/// by [`crash_state`] to materialize what the disk would have held had
/// the process crashed before any given operation.
#[derive(Debug, Default)]
pub struct TracingFs {
    real: RealFs,
    ops: Mutex<Vec<Op>>,
}

impl TracingFs {
    /// An empty-schedule tracing layer.
    pub fn new() -> Arc<TracingFs> {
        Arc::new(TracingFs::default())
    }

    /// A snapshot of the schedule so far.
    pub fn ops(&self) -> Vec<Op> {
        self.lock().clone()
    }

    /// How many operations have been recorded.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Op>> {
        self.ops
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn record(&self, op: Op) {
        self.lock().push(op);
    }
}

impl IoFs for TracingFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.real.create_dir_all(path)?;
        self.record(Op::CreateDirAll(path.to_path_buf()));
        Ok(())
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.real.write_file(path, bytes)?;
        self.record(Op::WriteFile(path.to_path_buf(), bytes.to_vec()));
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.real.sync_file(path)?;
        self.record(Op::SyncFile(path.to_path_buf()));
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.real.sync_dir(path)?;
        self.record(Op::SyncDir(path.to_path_buf()));
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.real.rename(from, to)?;
        self.record(Op::Rename(from.to_path_buf(), to.to_path_buf()));
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.real.append(path, bytes)?;
        self.record(Op::Append(path.to_path_buf(), bytes.to_vec()));
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.real.remove_file(path)?;
        self.record(Op::RemoveFile(path.to_path_buf()));
        Ok(())
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.real.remove_dir_all(path)?;
        self.record(Op::RemoveDirAll(path.to_path_buf()));
        Ok(())
    }
}

/// What a crash does to operations that were never made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Unsynced metadata is undone, unsynced data is lost — the
    /// most-forgetful legal outcome.
    LoseUnsynced,
    /// Unsynced metadata survives (the journal committed) but unsynced
    /// data is lost whole — the classic "renamed but empty" hazard.
    KeepMetadata,
    /// Metadata survives and unsynced data mostly survives, except the
    /// *last* unsynced write per file, which is torn to a half-length
    /// prefix. Earlier unsynced writes survive whole (the `O_APPEND`
    /// single-write guarantee: loss and tearing happen at write
    /// granularity, never by interleaving).
    TornTail,
}

impl CrashMode {
    /// All modes, the order the explorer iterates them.
    pub const ALL: [CrashMode; 3] = [
        CrashMode::LoseUnsynced,
        CrashMode::KeepMetadata,
        CrashMode::TornTail,
    ];

    /// A short stable name for logs and directory tags.
    pub fn as_str(self) -> &'static str {
        match self {
            CrashMode::LoseUnsynced => "lose-unsynced",
            CrashMode::KeepMetadata => "keep-metadata",
            CrashMode::TornTail => "torn-tail",
        }
    }
}

/// The tree a crash leaves behind: surviving directories and file bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashState {
    /// Surviving directories (absolute, as recorded).
    pub dirs: BTreeSet<PathBuf>,
    /// Surviving files with their surviving bytes.
    pub files: BTreeMap<PathBuf, Vec<u8>>,
}

impl CrashState {
    /// Materializes the state under `dest`, rebasing every recorded path
    /// from `root`. Paths outside `root` are skipped (nothing the store
    /// owns lives there).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating `dest`'s tree.
    pub fn write_to(&self, root: &Path, dest: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dest)?;
        for dir in &self.dirs {
            if let Ok(rel) = dir.strip_prefix(root) {
                std::fs::create_dir_all(dest.join(rel))?;
            }
        }
        for (file, bytes) in &self.files {
            if let Ok(rel) = file.strip_prefix(root) {
                if let Some(parent) = dest.join(rel).parent() {
                    std::fs::create_dir_all(parent)?;
                }
                std::fs::write(dest.join(rel), bytes)?;
            }
        }
        Ok(())
    }
}

/// A file's in-model identity: data synced to disk plus the unsynced
/// write tail (each entry one `write`/`append`).
#[derive(Debug, Clone, Default)]
struct Inode {
    synced: Vec<u8>,
    chunks: Vec<Vec<u8>>,
}

impl Inode {
    fn cache_view(&self) -> Vec<u8> {
        let mut all = self.synced.clone();
        for c in &self.chunks {
            all.extend_from_slice(c);
        }
        all
    }

    fn surviving(&self, mode: CrashMode) -> Vec<u8> {
        match mode {
            CrashMode::LoseUnsynced | CrashMode::KeepMetadata => self.synced.clone(),
            CrashMode::TornTail => {
                let mut all = self.synced.clone();
                for (i, c) in self.chunks.iter().enumerate() {
                    if i + 1 == self.chunks.len() {
                        all.extend_from_slice(&c[..c.len().div_ceil(2)]);
                    } else {
                        all.extend_from_slice(c);
                    }
                }
                all
            }
        }
    }
}

/// A node in the simulated trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Dir,
    File(usize),
}

/// One not-yet-durable directory mutation.
#[derive(Debug, Clone)]
enum MetaOp {
    Put(PathBuf, Node),
    Del(PathBuf),
}

/// The page-cache simulator: a cache view (everything applied) and a
/// durable view (only what syncs have pinned).
#[derive(Debug, Default)]
struct Sim {
    inodes: Vec<Inode>,
    cache: BTreeMap<PathBuf, Node>,
    durable: BTreeMap<PathBuf, Node>,
    /// Per-directory queues of entry mutations awaiting `sync_dir`.
    pending: BTreeMap<PathBuf, Vec<MetaOp>>,
}

fn parent_of(path: &Path) -> PathBuf {
    path.parent().unwrap_or_else(|| Path::new("")).to_path_buf()
}

impl Sim {
    fn pend(&mut self, dir: PathBuf, op: MetaOp) {
        self.pending.entry(dir).or_default().push(op);
    }

    fn ensure_cache_dirs(&mut self, path: &Path) {
        let mut missing = Vec::new();
        let mut cur = path.to_path_buf();
        while !cur.as_os_str().is_empty() && !self.cache.contains_key(&cur) {
            missing.push(cur.clone());
            cur = parent_of(&cur);
        }
        for dir in missing.into_iter().rev() {
            self.cache.insert(dir.clone(), Node::Dir);
            self.pend(parent_of(&dir), MetaOp::Put(dir, Node::Dir));
        }
    }

    fn file_inode(&mut self, path: &Path, truncate: bool) -> usize {
        match self.cache.get(path) {
            Some(&Node::File(ino)) => {
                if truncate {
                    self.inodes[ino] = Inode::default();
                }
                ino
            }
            _ => {
                let ino = self.inodes.len();
                self.inodes.push(Inode::default());
                self.cache.insert(path.to_path_buf(), Node::File(ino));
                self.pend(
                    parent_of(path),
                    MetaOp::Put(path.to_path_buf(), Node::File(ino)),
                );
                ino
            }
        }
    }

    fn remove_cache_subtree(&mut self, path: &Path) {
        let keys: Vec<PathBuf> = self
            .cache
            .keys()
            .filter(|k| k.as_path() == path || k.starts_with(path))
            .cloned()
            .collect();
        for k in keys {
            self.cache.remove(&k);
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::CreateDirAll(p) => self.ensure_cache_dirs(p),
            Op::WriteFile(p, b) => {
                self.ensure_cache_dirs(&parent_of(p));
                let ino = self.file_inode(p, true);
                self.inodes[ino].chunks.push(b.clone());
            }
            Op::Append(p, b) => {
                self.ensure_cache_dirs(&parent_of(p));
                let ino = self.file_inode(p, false);
                self.inodes[ino].chunks.push(b.clone());
            }
            Op::SyncFile(p) => {
                if let Some(&Node::File(ino)) = self.cache.get(p) {
                    let inode = &mut self.inodes[ino];
                    inode.synced = inode.cache_view();
                    inode.chunks.clear();
                }
            }
            Op::SyncDir(d) => {
                for meta in self.pending.remove(d).unwrap_or_default() {
                    match meta {
                        MetaOp::Put(p, node) => {
                            self.durable.insert(p, node);
                        }
                        MetaOp::Del(p) => {
                            let keys: Vec<PathBuf> = self
                                .durable
                                .keys()
                                .filter(|k| k.as_path() == p || k.starts_with(&p))
                                .cloned()
                                .collect();
                            for k in keys {
                                self.durable.remove(&k);
                            }
                        }
                    }
                }
            }
            Op::Rename(from, to) => {
                if let Some(node) = self.cache.remove(from) {
                    // Subtree renames (quarantine moves) drag their cached
                    // descendants along; entry durability still follows
                    // the parent-directory syncs.
                    let descendants: Vec<(PathBuf, Node)> = self
                        .cache
                        .iter()
                        .filter(|(k, _)| k.starts_with(from))
                        .map(|(k, v)| (k.clone(), *v))
                        .collect();
                    for (k, _) in &descendants {
                        self.cache.remove(k);
                    }
                    self.cache.insert(to.clone(), node);
                    for (k, v) in descendants {
                        if let Ok(rel) = k.strip_prefix(from) {
                            self.cache.insert(to.join(rel), v);
                        }
                    }
                    self.pend(parent_of(from), MetaOp::Del(from.clone()));
                    self.pend(parent_of(to), MetaOp::Put(to.clone(), node));
                }
            }
            Op::RemoveFile(p) => {
                if self.cache.remove(p).is_some() {
                    self.pend(parent_of(p), MetaOp::Del(p.clone()));
                }
            }
            Op::RemoveDirAll(p) => {
                if self.cache.contains_key(p) {
                    self.remove_cache_subtree(p);
                    self.pend(parent_of(p), MetaOp::Del(p.clone()));
                }
            }
        }
    }

    fn materialize(mut self, mode: CrashMode) -> CrashState {
        if mode != CrashMode::LoseUnsynced {
            // The metadata journal committed: apply every pending entry
            // mutation, in per-directory order.
            let dirs: Vec<PathBuf> = self.pending.keys().cloned().collect();
            for d in dirs {
                let queue = self.pending.remove(&d).unwrap_or_default();
                for meta in queue {
                    match meta {
                        MetaOp::Put(p, node) => {
                            self.durable.insert(p, node);
                        }
                        MetaOp::Del(p) => {
                            let keys: Vec<PathBuf> = self
                                .durable
                                .keys()
                                .filter(|k| k.as_path() == p || k.starts_with(&p))
                                .cloned()
                                .collect();
                            for k in keys {
                                self.durable.remove(&k);
                            }
                        }
                    }
                }
            }
        }
        let mut state = CrashState::default();
        for (path, node) in &self.durable {
            match node {
                Node::Dir => {
                    state.dirs.insert(path.clone());
                }
                Node::File(ino) => {
                    state
                        .files
                        .insert(path.clone(), self.inodes[*ino].surviving(mode));
                }
            }
        }
        state
    }
}

/// The tree a crash immediately after `ops` leaves behind, under `mode`.
///
/// Feed it a schedule prefix (`&ops[..k]`) to model a crash before the
/// `k`-th operation executed.
pub fn crash_state(ops: &[Op], mode: CrashMode) -> CrashState {
    let mut sim = Sim::default();
    for op in ops {
        sim.apply(op);
    }
    sim.materialize(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_synced(ops: &mut Vec<Op>, path: &str, bytes: &[u8]) {
        ops.push(Op::WriteFile(p(path), bytes.to_vec()));
        ops.push(Op::SyncFile(p(path)));
    }

    #[test]
    fn unsynced_write_is_lost_torn_or_empty() {
        let ops = vec![
            Op::CreateDirAll(p("/s")),
            Op::SyncDir(p("/")),
            Op::WriteFile(p("/s/a"), b"abcdefgh".to_vec()),
        ];
        // Entry and data both unsynced: the most-forgetful crash loses the
        // file entirely.
        let lost = crash_state(&ops, CrashMode::LoseUnsynced);
        assert!(!lost.files.contains_key(&p("/s/a")));
        assert!(lost.dirs.contains(&p("/s")));
        // Metadata journal committed, data lost: present but empty.
        let meta = crash_state(&ops, CrashMode::KeepMetadata);
        assert_eq!(meta.files.get(&p("/s/a")).map(Vec::len), Some(0));
        // Torn: a half-length prefix survives.
        let torn = crash_state(&ops, CrashMode::TornTail);
        assert_eq!(
            torn.files.get(&p("/s/a")).map(Vec::as_slice),
            Some(&b"abcd"[..])
        );
    }

    #[test]
    fn file_sync_pins_data_but_not_the_entry() {
        let ops = vec![
            Op::CreateDirAll(p("/s")),
            Op::SyncDir(p("/")),
            Op::WriteFile(p("/s/a"), b"data".to_vec()),
            Op::SyncFile(p("/s/a")),
        ];
        // Data is durable, the dir entry is not: strictest mode loses the
        // name, the journal-committed modes keep name + full data.
        assert!(!crash_state(&ops, CrashMode::LoseUnsynced)
            .files
            .contains_key(&p("/s/a")));
        for mode in [CrashMode::KeepMetadata, CrashMode::TornTail] {
            assert_eq!(
                crash_state(&ops, mode)
                    .files
                    .get(&p("/s/a"))
                    .map(Vec::as_slice),
                Some(&b"data"[..]),
                "{mode:?}"
            );
        }
        // After the parent sync the entry survives every mode.
        let mut synced = ops.clone();
        synced.push(Op::SyncDir(p("/s")));
        for mode in CrashMode::ALL {
            assert_eq!(
                crash_state(&synced, mode)
                    .files
                    .get(&p("/s/a"))
                    .map(Vec::as_slice),
                Some(&b"data"[..]),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn rename_without_dir_sync_can_be_undone() {
        let mut ops = vec![Op::CreateDirAll(p("/s")), Op::SyncDir(p("/"))];
        // Old durable content at the target.
        write_synced(&mut ops, "/s/t", b"old");
        ops.push(Op::SyncDir(p("/s")));
        // New content staged and renamed over it — but no dir sync.
        write_synced(&mut ops, "/s/.t.tmp", b"new!");
        ops.push(Op::Rename(p("/s/.t.tmp"), p("/s/t")));
        let undone = crash_state(&ops, CrashMode::LoseUnsynced);
        assert_eq!(
            undone.files.get(&p("/s/t")).map(Vec::as_slice),
            Some(&b"old"[..])
        );
        assert!(!undone.files.contains_key(&p("/s/.t.tmp")));
        for mode in [CrashMode::KeepMetadata, CrashMode::TornTail] {
            let kept = crash_state(&ops, mode);
            assert_eq!(
                kept.files.get(&p("/s/t")).map(Vec::as_slice),
                Some(&b"new!"[..]),
                "{mode:?}"
            );
            assert!(!kept.files.contains_key(&p("/s/.t.tmp")), "{mode:?}");
        }
        // The full atomic_replace discipline (dir sync last) makes the
        // publish durable in every mode.
        ops.push(Op::SyncDir(p("/s")));
        for mode in CrashMode::ALL {
            assert_eq!(
                crash_state(&ops, mode)
                    .files
                    .get(&p("/s/t"))
                    .map(Vec::as_slice),
                Some(&b"new!"[..]),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn appends_lose_whole_writes_and_tear_only_the_tail() {
        let mut ops = vec![Op::CreateDirAll(p("/s")), Op::SyncDir(p("/"))];
        ops.push(Op::Append(p("/s/log"), b"one\n".to_vec()));
        ops.push(Op::Append(p("/s/log"), b"two\n".to_vec()));
        ops.push(Op::SyncFile(p("/s/log")));
        ops.push(Op::SyncDir(p("/s")));
        ops.push(Op::Append(p("/s/log"), b"three\n".to_vec()));
        ops.push(Op::Append(p("/s/log"), b"four\n".to_vec()));
        // Synced prefix survives everywhere.
        let lost = crash_state(&ops, CrashMode::LoseUnsynced);
        assert_eq!(
            lost.files.get(&p("/s/log")).map(Vec::as_slice),
            Some(&b"one\ntwo\n"[..])
        );
        // Whole-write granularity: KeepMetadata drops the unsynced writes
        // entirely — never a torn middle.
        let meta = crash_state(&ops, CrashMode::KeepMetadata);
        assert_eq!(
            meta.files.get(&p("/s/log")).map(Vec::as_slice),
            Some(&b"one\ntwo\n"[..])
        );
        // TornTail keeps every unsynced write whole except the last,
        // which survives as a prefix: "three\n" intact, "four\n" torn.
        let torn = crash_state(&ops, CrashMode::TornTail);
        assert_eq!(
            torn.files.get(&p("/s/log")).map(Vec::as_slice),
            Some(&b"one\ntwo\nthree\nfou"[..])
        );
    }

    #[test]
    fn remove_without_dir_sync_can_resurrect() {
        let mut ops = vec![Op::CreateDirAll(p("/s")), Op::SyncDir(p("/"))];
        write_synced(&mut ops, "/s/f", b"x");
        ops.push(Op::SyncDir(p("/s")));
        ops.push(Op::RemoveFile(p("/s/f")));
        assert!(crash_state(&ops, CrashMode::LoseUnsynced)
            .files
            .contains_key(&p("/s/f")));
        assert!(!crash_state(&ops, CrashMode::KeepMetadata)
            .files
            .contains_key(&p("/s/f")));
        ops.push(Op::SyncDir(p("/s")));
        for mode in CrashMode::ALL {
            assert!(
                !crash_state(&ops, mode).files.contains_key(&p("/s/f")),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn tracing_fs_performs_and_records() {
        let root = std::env::temp_dir().join(format!("walshcheck-iofs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let fs = TracingFs::new();
        fs.create_dir_all(&root).expect("mkdir");
        atomic_replace(&*fs, &root.join("f.json"), b"{}").expect("atomic");
        fs.append(&root.join("log"), b"a\n").expect("append");
        assert_eq!(std::fs::read(root.join("f.json")).expect("read"), b"{}");
        let ops = fs.ops();
        // mkdir, write tmp, sync tmp, rename, sync dir, append.
        assert_eq!(ops.len(), 6);
        assert!(matches!(&ops[3], Op::Rename(_, to) if to.ends_with("f.json")));
        assert!(matches!(&ops[4], Op::SyncDir(d) if *d == root));
        // The recorded schedule replays to the same bytes when everything
        // is synced... and loses the unsynced append in the strict mode.
        let state = crash_state(&ops, CrashMode::LoseUnsynced);
        assert_eq!(
            state.files.get(&root.join("f.json")).map(Vec::as_slice),
            Some(&b"{}"[..])
        );
        assert!(!state.files.contains_key(&root.join("log")));
        let torn = crash_state(&ops, CrashMode::TornTail);
        assert_eq!(
            torn.files.get(&root.join("log")).map(Vec::as_slice),
            Some(&b"a"[..])
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_state_writes_to_a_rebased_tree() {
        let ops = vec![
            Op::CreateDirAll(p("/store/jobs/j1")),
            Op::SyncDir(p("/store/jobs")),
            Op::WriteFile(p("/store/jobs/j1/a"), b"aa".to_vec()),
            Op::SyncFile(p("/store/jobs/j1/a")),
            Op::SyncDir(p("/store/jobs/j1")),
        ];
        let state = crash_state(&ops, CrashMode::LoseUnsynced);
        let dest = std::env::temp_dir().join(format!("walshcheck-iofs-mat-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dest);
        state
            .write_to(Path::new("/store"), &dest)
            .expect("materialize");
        assert_eq!(std::fs::read(dest.join("jobs/j1/a")).expect("read"), b"aa");
        let _ = std::fs::remove_dir_all(&dest);
    }
}
