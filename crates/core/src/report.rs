//! Machine-readable run reports.
//!
//! The build environment vendors no serialization framework, so this module
//! hand-rolls the small, stable JSON surface that `walshcheck check --json`
//! emits (schema `walshcheck-report/5`, documented in the README). All
//! emitters produce compact single-line JSON with escaped strings; numbers
//! are plain decimals, durations are fractional seconds.
//!
//! Report/3 added the resilience surface on top of report/2: a top-level
//! `"outcome"` (`"secure"` / `"violated"` / `"inconclusive"`) and a
//! `"degradation"` block saying exactly how much of the sweep is missing
//! from an inconclusive verdict (timeout, lost workers, quarantined
//! combinations, resume provenance).
//!
//! Report/4 adds the recovery surface: an `"interrupted"` stat flag and a
//! `"recovery"` block (`null` when the rescue pass did not run) recording
//! every escalation-ladder attempt made for quarantined combinations.
//!
//! Report/5 makes results content-addressable: the run document gains
//! `"netlist_sha256"` (hash of the canonical ILANG dump) and
//! `"report_hash"` — the SHA-256 of the run's [`Report`] *artifact*, a
//! canonical-JSON document carrying only the deterministic result surface
//! (verdict, witness, quarantines, recovery, space counters — no timings,
//! no cache counters, no thread count). Two runs of the same job produce
//! byte-identical artifacts no matter the thread count or wall clock,
//! which is what lets the `walshcheckd` artifact store deduplicate and
//! serve resubmissions from disk.

use std::fmt::Write as _;
use std::time::Duration;

use walshcheck_circuit::netlist::Netlist;

use crate::hash::sha256_hex;
use crate::job::{netlist_sha256, JobSpec};
use crate::json::{self, Json};
use crate::property::{CheckStats, Outcome, ProbeRef, SkippedCombination, Verdict, Witness};

/// Quarantined combinations listed inline in a report before the list is
/// truncated to a count (keeps reports bounded on pathological runs where
/// thousands of combinations blow the budget).
const MAX_SKIPPED_IN_REPORT: usize = 64;

/// Escapes `s` as the contents of a JSON string literal (quotes not
/// included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn seconds(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

impl CheckStats {
    /// The counters as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"combinations\":{},\"pruned\":{},\"convolutions\":{},",
                "\"rows_checked\":{},\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_evictions\":{},\"cache_peak_bytes\":{},",
                "\"dd_cache_hits\":{},\"dd_cache_misses\":{},",
                "\"dd_cache_evictions\":{},\"dd_cache_peak_bytes\":{},",
                "\"skipped\":{},\"worker_failures\":{},",
                "\"convolution_seconds\":{},",
                "\"verification_seconds\":{},\"total_seconds\":{},\"timed_out\":{},",
                "\"interrupted\":{}}}"
            ),
            self.combinations,
            self.pruned,
            self.convolutions,
            self.rows_checked,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_peak_bytes,
            self.dd_cache_hits,
            self.dd_cache_misses,
            self.dd_cache_evictions,
            self.dd_cache_peak_bytes,
            self.skipped,
            self.worker_failures,
            seconds(self.convolution_time),
            seconds(self.verification_time),
            seconds(self.total_time),
            self.timed_out,
            self.interrupted,
        )
    }
}

impl SkippedCombination {
    /// The quarantined combination as a JSON object; wire names resolve
    /// through `netlist` when provided.
    pub fn to_json(&self, netlist: Option<&Netlist>) -> String {
        let probes: Vec<String> = self
            .combination
            .iter()
            .map(|p| p.to_json(netlist))
            .collect();
        format!(
            "{{\"index\":{},\"reason\":\"{}\",\"probes\":[{}]}}",
            self.index,
            self.reason.as_str(),
            probes.join(","),
        )
    }
}

impl ProbeRef {
    /// The probe as a JSON object; wire names resolve through `netlist`
    /// when provided.
    pub fn to_json(&self, netlist: Option<&Netlist>) -> String {
        let name = netlist
            .map(|n| format!(",\"name\":\"{}\"", json_escape(n.wire_name(self.wire()))))
            .unwrap_or_default();
        match *self {
            ProbeRef::Output {
                wire,
                output,
                index,
            } => format!(
                "{{\"kind\":\"output\",\"wire\":{}{name},\"output\":{},\"share\":{}}}",
                wire.0, output.0, index
            ),
            ProbeRef::Internal { wire } => {
                format!("{{\"kind\":\"internal\",\"wire\":{}{name}}}", wire.0)
            }
        }
    }
}

impl Witness {
    /// The witness as a JSON object; wire names resolve through `netlist`
    /// when provided.
    pub fn to_json(&self, netlist: Option<&Netlist>) -> String {
        let probes: Vec<String> = self
            .combination
            .iter()
            .map(|p| p.to_json(netlist))
            .collect();
        let coefficient = match &self.coefficient {
            Some(c) => format!("\"{}\"", json_escape(&c.to_string())),
            None => "null".into(),
        };
        format!(
            "{{\"probes\":[{}],\"mask\":\"{}\",\"reason\":\"{}\",\"coefficient\":{}}}",
            probes.join(","),
            self.mask,
            json_escape(&self.reason),
            coefficient,
        )
    }
}

impl crate::recover::RescueAttempt {
    /// The attempt as a JSON object.
    pub fn to_json(&self) -> String {
        let budget = match self.node_budget {
            Some(n) => n.to_string(),
            None => "null".into(),
        };
        format!(
            "{{\"rung\":\"{}\",\"engine\":\"{}\",\"node_budget\":{},\"outcome\":\"{}\"}}",
            self.rung.as_str(),
            self.engine.to_string().to_lowercase(),
            budget,
            self.outcome.as_str(),
        )
    }
}

impl crate::recover::RescuedCombination {
    /// The per-combination rescue record as a JSON object; wire names
    /// resolve through `netlist` when provided.
    pub fn to_json(&self, netlist: Option<&Netlist>) -> String {
        let probes: Vec<String> = self
            .combination
            .iter()
            .map(|p| p.to_json(netlist))
            .collect();
        let attempts: Vec<String> = self.attempts.iter().map(|a| a.to_json()).collect();
        format!(
            concat!(
                "{{\"index\":{},\"reason\":\"{}\",\"probes\":[{}],",
                "\"attempts\":[{}],\"resolution\":\"{}\"}}"
            ),
            self.index,
            self.reason.as_str(),
            probes.join(","),
            attempts.join(","),
            self.resolution.as_str(),
        )
    }
}

impl crate::recover::RecoveryReport {
    /// The `"recovery"` block of a report/4 document. The per-combination
    /// list is truncated like the skipped list, with a flag saying so.
    pub fn to_json(&self, netlist: Option<&Netlist>) -> String {
        let listed: Vec<String> = self
            .combinations
            .iter()
            .take(MAX_SKIPPED_IN_REPORT)
            .map(|c| c.to_json(netlist))
            .collect();
        format!(
            concat!(
                "{{\"attempted\":{},\"resolved\":{},\"unresolved\":{},",
                "\"combinations\":[{}],\"combinations_truncated\":{}}}"
            ),
            self.attempted,
            self.resolved,
            self.unresolved,
            listed.join(","),
            self.combinations.len() > MAX_SKIPPED_IN_REPORT,
        )
    }
}

impl Verdict {
    /// The verdict as a JSON object (property, outcome, witness, skipped,
    /// stats, recovery). `secure` is kept next to `outcome` for 0.2
    /// consumers.
    pub fn to_json(&self, netlist: Option<&Netlist>) -> String {
        let witness = match &self.witness {
            Some(w) => w.to_json(netlist),
            None => "null".into(),
        };
        let skipped: Vec<String> = self
            .skipped
            .iter()
            .take(MAX_SKIPPED_IN_REPORT)
            .map(|s| s.to_json(netlist))
            .collect();
        let recovery = match &self.recovery {
            Some(r) => r.to_json(netlist),
            None => "null".into(),
        };
        format!(
            concat!(
                "{{\"property\":\"{}\",\"secure\":{},\"outcome\":\"{}\",",
                "\"witness\":{},\"skipped\":[{}],\"stats\":{},\"recovery\":{}}}"
            ),
            json_escape(&self.property.to_string()),
            self.secure,
            self.outcome.as_str(),
            witness,
            skipped.join(","),
            self.stats.to_json(),
            recovery,
        )
    }
}

/// The prefix-cache configuration of a run, echoed in the report so cache
/// counters can be interpreted (schema `walshcheck-report/2`).
#[derive(Debug, Clone, Copy)]
pub struct ReportCacheConfig {
    /// Whether prefix-shared convolution caching was enabled.
    pub enabled: bool,
    /// The per-worker byte budget the run was configured with.
    pub budget_bytes: usize,
}

impl From<&crate::engine::VerifyOptions> for ReportCacheConfig {
    fn from(options: &crate::engine::VerifyOptions) -> Self {
        ReportCacheConfig {
            enabled: options.cache && options.cache_budget > 0,
            budget_bytes: options.cache_budget,
        }
    }
}

/// The `"degradation"` block of a report/3 document: how far the verdict is
/// from a full sweep. `reason` is `null` on conclusive runs.
fn degradation_json(verdict: &Verdict, netlist: &Netlist, resumed: bool) -> String {
    let reason = match verdict.outcome {
        Outcome::Inconclusive(r) => format!("\"{}\"", r.as_str()),
        Outcome::Secure | Outcome::Violated => "null".into(),
    };
    let listed: Vec<String> = verdict
        .skipped
        .iter()
        .take(MAX_SKIPPED_IN_REPORT)
        .map(|s| s.to_json(Some(netlist)))
        .collect();
    format!(
        concat!(
            "{{\"reason\":{},\"timed_out\":{},\"worker_failures\":{},",
            "\"skipped_count\":{},\"skipped\":[{}],\"skipped_truncated\":{},",
            "\"resumed\":{}}}"
        ),
        reason,
        verdict.stats.timed_out,
        verdict.stats.worker_failures,
        verdict.skipped.len(),
        listed.join(","),
        verdict.skipped.len() > MAX_SKIPPED_IN_REPORT,
        resumed,
    )
}

/// The schema tag of the run document and of [`Report`] artifacts.
pub const REPORT_SCHEMA: &str = "walshcheck-report/5";

/// The deterministic result artifact of one verification job.
///
/// A report carries only what every run of the same job reproduces
/// exactly: the job identity (netlist hash + spec identity), the verdict
/// with witness / quarantine / recovery evidence, and the combination-space
/// counters. Timings, cache counters and the thread count are deliberately
/// absent — [`Report::canonical_json`] is byte-identical across thread
/// counts, checkpoint/resume, and machines, and [`Report::hash`] over those
/// bytes is the run's content address.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Report {
    doc: Json,
    canonical: String,
    hash: String,
}

impl Report {
    /// Builds the artifact for `verdict` obtained by running `spec` on
    /// `netlist`.
    pub fn new(netlist: &Netlist, spec: &JobSpec, verdict: &Verdict) -> Report {
        let parsed =
            json::parse(&verdict.to_json(Some(netlist))).expect("verdict JSON is well-formed");
        let mut result = match parsed {
            Json::Obj(map) => map,
            _ => unreachable!("verdict serializes to an object"),
        };
        // The stats block mixes deterministic space counters with wall-clock
        // and cache telemetry; keep only the former in the artifact.
        // `rows_checked` stays out too: a resumed run skips the rows of
        // already-completed combinations, so the counter is history-
        // dependent even though the verdict is not. On violated runs even
        // `combinations`/`pruned` are scheduling-dependent — workers may
        // probe a few extra combinations before the cancellation bound
        // reaches them — so they are nulled whenever a witness exists
        // (exhaustive sweeps pin them exactly; cancelled sweeps cannot).
        let stats = result.remove("stats").unwrap_or(Json::Null);
        let exhaustive = matches!(result.get("witness"), None | Some(Json::Null));
        for counter in ["combinations", "pruned"] {
            let value = if exhaustive {
                stats.get(counter).cloned().unwrap_or(Json::Null)
            } else {
                Json::Null
            };
            result.insert(counter.into(), value);
        }
        let doc = Json::obj([
            ("schema", Json::str(REPORT_SCHEMA)),
            (
                "job",
                Json::obj([
                    ("netlist", Json::str(netlist.name.clone())),
                    ("netlist_sha256", Json::str(netlist_sha256(netlist))),
                    ("spec", spec.identity_json()),
                ]),
            ),
            ("result", Json::Obj(result)),
        ]);
        let canonical = doc.to_canonical();
        let hash = sha256_hex(canonical.as_bytes());
        Report {
            doc,
            canonical,
            hash,
        }
    }

    /// The artifact bytes: canonical JSON, stable across runs of the same
    /// job. This exact string is what the artifact store persists and what
    /// `GET /v1/jobs/{id}/report` serves verbatim.
    pub fn canonical_json(&self) -> &str {
        &self.canonical
    }

    /// SHA-256 (lowercase hex) of [`Report::canonical_json`] — the content
    /// address. `sha256sum report.json` reproduces it.
    pub fn hash(&self) -> &str {
        &self.hash
    }

    /// The artifact as a JSON value.
    pub fn doc(&self) -> &Json {
        &self.doc
    }

    /// The run's outcome string (`"secure"` / `"violated"` /
    /// `"inconclusive"`).
    pub fn outcome(&self) -> &str {
        self.doc
            .get("result")
            .and_then(|r| r.get("outcome"))
            .and_then(Json::as_str)
            .expect("artifact carries an outcome")
    }

    /// Whether no violating combination was found (the 0.2 `secure` bool).
    pub fn secure(&self) -> bool {
        self.doc
            .get("result")
            .and_then(|r| r.get("secure"))
            .and_then(Json::as_bool)
            .expect("artifact carries the secure bool")
    }

    /// The netlist content hash the job ran against.
    pub fn netlist_sha256(&self) -> &str {
        self.doc
            .get("job")
            .and_then(|j| j.get("netlist_sha256"))
            .and_then(Json::as_str)
            .expect("artifact carries the netlist hash")
    }
}

/// The full `walshcheck check --json` run report (schema
/// `walshcheck-report/5`): the verdict (with its three-valued outcome,
/// degradation block, and recovery block) plus the job configuration from
/// `spec`, content addressing (`netlist_sha256`, `report_hash`), the
/// prefix-cache configuration and counters, and the observer-collected
/// engine-phase timings `(name, duration)`. `resumed` records whether the
/// run was seeded from a checkpoint.
///
/// The `"backend"` field records which DD backend executed the run. Like
/// `"threads"`, it lives only in this run document, never in the [`Report`]
/// artifact: backends produce byte-identical artifacts (DESIGN.md §14), so
/// the content address must not depend on it.
pub fn run_report_json(
    netlist: &Netlist,
    verdict: &Verdict,
    spec: &JobSpec,
    phases: &[(String, Duration)],
    resumed: bool,
) -> String {
    let phase_fields: Vec<String> = phases
        .iter()
        .map(|(name, d)| format!("\"{}\":{}", json_escape(name), seconds(*d)))
        .collect();
    let stats = &verdict.stats;
    let cache = ReportCacheConfig::from(&spec.options);
    let artifact = Report::new(netlist, spec, verdict);
    format!(
        concat!(
            "{{\"schema\":\"{}\",\"netlist\":\"{}\",\"netlist_sha256\":\"{}\",",
            "\"report_hash\":\"{}\",",
            "\"engine\":\"{}\",\"mode\":\"{}\",\"threads\":{},\"backend\":\"{}\",",
            "\"cache\":{{\"enabled\":{},\"budget_bytes\":{},\"hits\":{},",
            "\"misses\":{},\"evictions\":{},\"peak_bytes\":{},",
            "\"dd\":{{\"hits\":{},\"misses\":{},\"evictions\":{},",
            "\"peak_bytes\":{}}}}},",
            "\"property\":\"{}\",\"secure\":{},\"outcome\":\"{}\",",
            "\"degradation\":{},\"recovery\":{},\"witness\":{},",
            "\"stats\":{},\"phases\":{{{}}}}}"
        ),
        REPORT_SCHEMA,
        json_escape(&netlist.name),
        artifact.netlist_sha256(),
        artifact.hash(),
        spec.engine().as_str(),
        spec.mode().as_str(),
        spec.threads(),
        spec.options.backend.as_str(),
        cache.enabled,
        cache.budget_bytes,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_peak_bytes,
        stats.dd_cache_hits,
        stats.dd_cache_misses,
        stats.dd_cache_evictions,
        stats.dd_cache_peak_bytes,
        json_escape(&verdict.property.to_string()),
        verdict.secure,
        verdict.outcome.as_str(),
        degradation_json(verdict, netlist, resumed),
        match &verdict.recovery {
            Some(r) => r.to_json(Some(netlist)),
            None => "null".into(),
        },
        match &verdict.witness {
            Some(w) => w.to_json(Some(netlist)),
            None => "null".into(),
        },
        verdict.stats.to_json(),
        phase_fields.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::Mask;
    use crate::property::Property;
    use walshcheck_circuit::netlist::{OutputId, WireId};

    #[test]
    fn escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn stats_json_shape() {
        let s = CheckStats {
            combinations: 3,
            pruned: 1,
            ..CheckStats::default()
        };
        let j = s.to_json();
        assert!(j.starts_with("{\"combinations\":3,\"pruned\":1,"));
        assert!(j.ends_with("\"timed_out\":false,\"interrupted\":false}"));
    }

    #[test]
    fn witness_and_verdict_json() {
        let w = Witness {
            combination: vec![
                ProbeRef::Output {
                    wire: WireId(2),
                    output: OutputId(0),
                    index: 1,
                },
                ProbeRef::Internal { wire: WireId(5) },
            ],
            mask: Mask(0b101),
            reason: "says \"leak\"".into(),
            coefficient: None,
        };
        let j = w.to_json(None);
        assert!(j.contains("\"kind\":\"output\",\"wire\":2,\"output\":0,\"share\":1"));
        assert!(j.contains("\"kind\":\"internal\",\"wire\":5"));
        assert!(j.contains("\\\"leak\\\""));
        assert!(j.contains("\"coefficient\":null"));

        let v = Verdict::conclude(Property::Sni(1), Some(w), vec![], CheckStats::default());
        let j = v.to_json(None);
        assert!(j.contains("\"property\":\"1-SNI\""));
        assert!(j.contains("\"secure\":false"));
        assert!(j.contains("\"outcome\":\"violated\""));
        assert!(j.contains("\"witness\":{"));
    }

    #[test]
    fn secure_verdict_has_null_witness() {
        let v = Verdict::conclude(Property::Probing(1), None, vec![], CheckStats::default());
        let j = v.to_json(None);
        assert!(j.contains("\"witness\":null"));
        assert!(j.contains("\"outcome\":\"secure\""));
        assert!(j.contains("\"skipped\":[]"));
    }

    #[test]
    fn recovery_block_json_shape() {
        use crate::engine::EngineKind;
        use crate::recover::{
            RecoveryReport, RescueAttempt, RescueAttemptOutcome, RescueResolution, RescueRung,
            RescuedCombination,
        };
        let report = RecoveryReport {
            attempted: 1,
            resolved: 1,
            unresolved: 0,
            combinations: vec![RescuedCombination {
                index: 7,
                combination: vec![ProbeRef::Internal { wire: WireId(3) }],
                reason: crate::property::IncompleteReason::NodeBudget,
                attempts: vec![RescueAttempt {
                    rung: RescueRung::Budget,
                    engine: EngineKind::Mapi,
                    node_budget: Some(16),
                    outcome: RescueAttemptOutcome::Clean,
                }],
                resolution: RescueResolution::Clean,
            }],
        };
        let j = report.to_json(None);
        assert!(j.starts_with("{\"attempted\":1,\"resolved\":1,\"unresolved\":0,"));
        assert!(j.contains("\"rung\":\"budget\""));
        assert!(j.contains("\"engine\":\"mapi\""));
        assert!(j.contains("\"node_budget\":16"));
        assert!(j.contains("\"resolution\":\"clean\""));
        assert!(j.ends_with("\"combinations_truncated\":false}"));
    }

    #[test]
    fn inconclusive_verdict_reports_degradation() {
        use crate::property::IncompleteReason;
        let skipped = vec![SkippedCombination {
            index: 9,
            combination: vec![ProbeRef::Internal { wire: WireId(4) }],
            reason: IncompleteReason::NodeBudget,
        }];
        let v = Verdict::conclude(Property::Sni(2), None, skipped, CheckStats::default());
        let j = v.to_json(None);
        assert!(j.contains("\"outcome\":\"inconclusive\""));
        assert!(j.contains("\"reason\":\"node-budget\""));
        assert!(j.contains("\"index\":9"));
    }
}
