//! The front-door verification API.
//!
//! A [`Session`] owns a prepared verifier for one netlist and carries the
//! whole run configuration — property, engine options, worker count,
//! progress observer — behind a chainable builder surface:
//!
//! ```
//! use walshcheck_core::{EngineKind, Property, Session};
//! use walshcheck_gadgets::dom::dom_and;
//!
//! let netlist = dom_and(1);
//! let verdict = Session::new(&netlist)
//!     .expect("valid netlist")
//!     .property(Property::Sni(1))
//!     .engine(EngineKind::Mapi)
//!     .threads(2)
//!     .run();
//! assert!(verdict.secure);
//! ```
//!
//! Setup (validation and symbolic unfolding) happens once in
//! [`Session::new`]; repeated [`Session::run`] calls reuse it. Every run
//! goes through the work-stealing batch scheduler — with one thread that
//! degenerates to the serial enumeration (same combination order, same
//! counters), so verdicts are thread-count-independent by construction.

use std::sync::Arc;
use std::time::{Duration, Instant};

use walshcheck_circuit::glitch::ProbeModel;
use walshcheck_circuit::netlist::Netlist;
use walshcheck_dd::var::VarId;

use crate::engine::{EngineKind, Verifier, VerifyOptions};
use crate::error::Error;
use crate::observe::ProgressObserver;
use crate::property::{CheckMode, Property, Verdict, Witness};
use crate::scheduler::{self, SetupTimings};

/// A configured verification run over one netlist. See the module docs.
pub struct Session {
    verifier: Verifier,
    options: VerifyOptions,
    property: Option<Property>,
    threads: usize,
    observer: Option<Arc<dyn ProgressObserver>>,
    setup: SetupTimings,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("options", &self.options)
            .field("property", &self.property)
            .field("threads", &self.threads)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Validates and unfolds `netlist`, preparing a session with the
    /// default options (MAPI engine, joint mode, one thread).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Netlist`] if the netlist is structurally invalid
    /// or cyclic, and with [`Error::Capacity`] if it has more input
    /// variables than a spectral coordinate can index.
    pub fn new(netlist: &Netlist) -> Result<Self, Error> {
        if netlist.inputs.len() > VarId::MAX_VARS as usize {
            return Err(Error::Capacity(format!(
                "{} input variables (limit {})",
                netlist.inputs.len(),
                VarId::MAX_VARS
            )));
        }
        let t = Instant::now();
        netlist.validate()?;
        let validate = t.elapsed();
        let t = Instant::now();
        let verifier = Verifier::new(netlist)?;
        let unfold = t.elapsed();
        Ok(Session {
            verifier,
            options: VerifyOptions::default(),
            property: None,
            threads: 1,
            observer: None,
            setup: SetupTimings { validate, unfold },
        })
    }

    /// The property to check. Must be set before [`Session::run`].
    #[must_use]
    pub fn property(mut self, property: Property) -> Self {
        self.property = Some(property);
        self
    }

    /// Replaces the whole option set (e.g. with a
    /// [`VerifyOptions::paper`] preset or a built configuration).
    #[must_use]
    pub fn options(mut self, options: VerifyOptions) -> Self {
        self.options = options;
        self
    }

    /// Engine backend.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.options.engine = engine;
        self
    }

    /// Row-wise or joint checking.
    #[must_use]
    pub fn mode(mut self, mode: CheckMode) -> Self {
        self.options.mode = mode;
        self
    }

    /// Probe model (standard or glitch-extended).
    #[must_use]
    pub fn probe_model(mut self, model: ProbeModel) -> Self {
        self.options.sites.probe_model = model;
        self
    }

    /// Functional-support prefilter on/off.
    #[must_use]
    pub fn prefilter(mut self, on: bool) -> Self {
        self.options.prefilter = on;
        self
    }

    /// Largest-combinations-first enumeration on/off.
    #[must_use]
    pub fn largest_first(mut self, on: bool) -> Self {
        self.options.largest_first = on;
        self
    }

    /// Wall-clock budget for each run.
    #[must_use]
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.options.time_limit = Some(limit);
        self
    }

    /// Prefix-shared convolution caching on/off (on by default). Purely a
    /// time/memory trade: verdicts and witnesses are identical either way.
    #[must_use]
    pub fn cache(mut self, on: bool) -> Self {
        self.options.cache = on;
        self
    }

    /// Byte budget of each worker's prefix cache (least-recently-used
    /// eviction above it; `0` disables caching).
    #[must_use]
    pub fn cache_budget(mut self, bytes: usize) -> Self {
        self.options.cache_budget = bytes;
        self
    }

    /// Number of worker threads (clamped to at least 1). The verdict —
    /// including the selected witness — is independent of this.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Registers a progress observer receiving scheduler callbacks.
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn ProgressObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The current option set.
    pub fn options_ref(&self) -> &VerifyOptions {
        &self.options
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &Netlist {
        self.verifier.netlist()
    }

    /// The underlying verifier, for advanced per-combination queries
    /// ([`Verifier::check_specific`], [`Verifier::minimize_witness`]).
    pub fn verifier_mut(&mut self) -> &mut Verifier {
        &mut self.verifier
    }

    /// Runs the check with the configured property, engine and threads.
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]).
    pub fn run(&mut self) -> Verdict {
        let property = self
            .property
            .expect("Session::property(..) must be set before Session::run()");
        scheduler::run(
            &mut self.verifier,
            property,
            &self.options,
            self.threads,
            self.observer.as_ref(),
            self.setup,
        )
    }

    /// Enumerates violating combinations (serially) until `limit` witnesses
    /// are found or the space is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]).
    pub fn find_witnesses(&mut self, limit: usize) -> Vec<Witness> {
        let property = self
            .property
            .expect("Session::property(..) must be set before Session::find_witnesses()");
        self.verifier.find_witnesses(property, &self.options, limit)
    }
}
