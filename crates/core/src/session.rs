//! The front-door verification API.
//!
//! A [`Session`] owns a prepared verifier for one netlist and carries the
//! whole run configuration — property, engine options, worker count,
//! progress observer — behind a chainable builder surface:
//!
//! ```
//! use walshcheck_core::{EngineKind, Property, Session};
//! use walshcheck_gadgets::dom::dom_and;
//!
//! let netlist = dom_and(1);
//! let verdict = Session::new(&netlist)
//!     .expect("valid netlist")
//!     .property(Property::Sni(1))
//!     .engine(EngineKind::Mapi)
//!     .threads(2)
//!     .run();
//! assert!(verdict.secure);
//! ```
//!
//! Setup (validation and symbolic unfolding) happens once in
//! [`Session::new`]; repeated [`Session::run`] calls reuse it. Every run
//! goes through the work-stealing batch scheduler — with one thread that
//! degenerates to the serial enumeration (same combination order, same
//! counters), so verdicts are thread-count-independent by construction.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use walshcheck_circuit::glitch::ProbeModel;
use walshcheck_circuit::netlist::Netlist;
use walshcheck_dd::var::VarId;

use crate::checkpoint::{self, CheckpointConfig, ResumeState};
use crate::engine::{EngineKind, Verifier, VerifyOptions};
use crate::error::Error;
use crate::observe::ProgressObserver;
use crate::property::{CheckMode, CheckStats, Property, SkippedCombination, Verdict, Witness};
use crate::recover::RescueConfig;
use crate::scheduler::{self, SetupTimings};

/// A configured verification run over one netlist. See the module docs.
pub struct Session {
    verifier: Verifier,
    options: VerifyOptions,
    property: Option<Property>,
    threads: usize,
    observer: Option<Arc<dyn ProgressObserver>>,
    setup: SetupTimings,
    checkpoint: Option<CheckpointConfig>,
    resume: Option<ResumeState>,
    rescue: RescueConfig,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("options", &self.options)
            .field("property", &self.property)
            .field("threads", &self.threads)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Validates and unfolds `netlist`, preparing a session with the
    /// default options (MAPI engine, joint mode, one thread).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Netlist`] if the netlist is structurally invalid
    /// or cyclic, and with [`Error::Capacity`] if it has more input
    /// variables than a spectral coordinate can index.
    pub fn new(netlist: &Netlist) -> Result<Self, Error> {
        if netlist.inputs.len() > VarId::MAX_VARS as usize {
            return Err(Error::Capacity(format!(
                "{} input variables (limit {})",
                netlist.inputs.len(),
                VarId::MAX_VARS
            )));
        }
        let t = Instant::now();
        netlist.validate()?;
        let validate = t.elapsed();
        let t = Instant::now();
        let verifier = Verifier::new(netlist)?;
        let unfold = t.elapsed();
        Ok(Session {
            verifier,
            options: VerifyOptions::default(),
            property: None,
            threads: 1,
            observer: None,
            setup: SetupTimings { validate, unfold },
            checkpoint: None,
            resume: None,
            rescue: RescueConfig::default(),
        })
    }

    /// The property to check. Must be set before [`Session::run`].
    #[must_use]
    pub fn property(mut self, property: Property) -> Self {
        self.property = Some(property);
        self
    }

    /// Replaces the whole option set (e.g. with a
    /// [`VerifyOptions::paper`] preset or a built configuration).
    #[must_use]
    pub fn options(mut self, options: VerifyOptions) -> Self {
        self.options = options;
        self
    }

    /// Engine backend.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.options.engine = engine;
        self
    }

    /// Row-wise or joint checking.
    #[must_use]
    pub fn mode(mut self, mode: CheckMode) -> Self {
        self.options.mode = mode;
        self
    }

    /// Probe model (standard or glitch-extended).
    #[must_use]
    pub fn probe_model(mut self, model: ProbeModel) -> Self {
        self.options.sites.probe_model = model;
        self
    }

    /// Functional-support prefilter on/off.
    #[must_use]
    pub fn prefilter(mut self, on: bool) -> Self {
        self.options.prefilter = on;
        self
    }

    /// Largest-combinations-first enumeration on/off.
    #[must_use]
    pub fn largest_first(mut self, on: bool) -> Self {
        self.options.largest_first = on;
        self
    }

    /// Wall-clock budget for each run.
    #[must_use]
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.options.time_limit = Some(limit);
        self
    }

    /// Prefix-shared convolution caching on/off (on by default). Purely a
    /// time/memory trade: verdicts and witnesses are identical either way.
    #[must_use]
    pub fn cache(mut self, on: bool) -> Self {
        self.options.cache = on;
        self
    }

    /// Byte budget of each worker's prefix cache (least-recently-used
    /// eviction above it; `0` disables caching).
    #[must_use]
    pub fn cache_budget(mut self, bytes: usize) -> Self {
        self.options.cache_budget = bytes;
        self
    }

    /// Caps decision-diagram arena growth per checked combination, in
    /// nodes. A combination whose check (or whose deterministic size
    /// pre-charge) would grow the arenas past the cap is *quarantined*
    /// instead of checked: the sweep continues, the combination lands in
    /// [`Verdict::skipped`], and the verdict degrades to at best
    /// [`crate::Outcome::Inconclusive`] with
    /// [`crate::IncompleteReason::NodeBudget`]. The quarantine list is
    /// deterministic and thread-count-independent.
    #[must_use]
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.options.node_budget = Some(nodes);
        self
    }

    /// Post-sweep rescue pass on/off (off by default). When on, every
    /// quarantined combination is re-verified through a deterministic
    /// escalation ladder — doubled node budgets, then BDD variable sifting,
    /// then engine fallback (see [`crate::recover`]) — and the verdict
    /// upgrades from `Inconclusive` to `Secure`/`Violated` if *every*
    /// quarantine resolves. Results stay byte-identical across thread
    /// counts and checkpoint/resume.
    #[must_use]
    pub fn rescue(mut self, on: bool) -> Self {
        self.rescue.enabled = on;
        self
    }

    /// Number of budget-doubling attempts on the first rescue rung
    /// (default [`crate::recover::DEFAULT_RESCUE_ATTEMPTS`]). Implies
    /// nothing about the later sift/fallback rungs, which always run once
    /// each if reached.
    #[must_use]
    pub fn rescue_attempts(mut self, attempts: u32) -> Self {
        self.rescue.attempts = attempts;
        self
    }

    /// Global cap, in bytes, on the node budget any single rescue attempt
    /// may be granted (default [`crate::recover::DEFAULT_RESCUE_BUDGET`]).
    #[must_use]
    pub fn rescue_budget(mut self, bytes: usize) -> Self {
        self.rescue.budget_bytes = bytes;
        self
    }

    /// Periodically persists run progress to `path` (at most every
    /// `every`; [`Duration::ZERO`] writes after every completed batch). The
    /// file can be fed back through [`Session::resume_from`] after an
    /// interrupted run.
    #[must_use]
    pub fn checkpoint_to(mut self, path: impl Into<std::path::PathBuf>, every: Duration) -> Self {
        self.checkpoint = Some(CheckpointConfig::new(path, every));
        self
    }

    /// Seeds the *next* [`Session::run`] from a checkpoint written by
    /// [`Session::checkpoint_to`]: completed combinations are skipped and
    /// the recorded evidence (candidates, quarantines, counters) is carried
    /// over. The resumed verdict — outcome, witness, quarantine list — is
    /// identical to an uninterrupted run's.
    ///
    /// Call this *after* [`Session::property`] and any option setters: the
    /// checkpoint is validated against a fingerprint of the netlist, the
    /// property, and the enumeration-relevant options as configured now.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if `path` cannot be read, [`Error::Checkpoint`] if the
    /// file is malformed or does not match this session's fingerprint,
    /// [`Error::Config`] if no property is set yet.
    pub fn resume_from(mut self, path: impl AsRef<Path>) -> Result<Self, Error> {
        let property = self.property.ok_or_else(|| {
            Error::Config("set Session::property(..) before Session::resume_from(..)".into())
        })?;
        let text = std::fs::read_to_string(path.as_ref())?;
        let ck = checkpoint::parse(&text)?;
        let expect = checkpoint::fingerprint(self.verifier.netlist(), property, &self.options);
        if ck.fingerprint != expect {
            return Err(Error::Checkpoint(format!(
                "fingerprint mismatch: checkpoint was written for {} ({}), this session is {} ({})",
                ck.fingerprint, ck.property, expect, property
            )));
        }
        self.resume = Some(ck.into_resume());
        Ok(self)
    }

    /// Number of worker threads (clamped to at least 1). The verdict —
    /// including the selected witness — is independent of this.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Registers a progress observer receiving scheduler callbacks.
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn ProgressObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The current option set.
    pub fn options_ref(&self) -> &VerifyOptions {
        &self.options
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &Netlist {
        self.verifier.netlist()
    }

    /// The underlying verifier, for advanced per-combination queries
    /// ([`Verifier::check_specific`], [`Verifier::minimize_witness`]).
    pub fn verifier_mut(&mut self) -> &mut Verifier {
        &mut self.verifier
    }

    /// Runs the check with the configured property, engine and threads.
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]).
    pub fn run(&mut self) -> Verdict {
        let property = self
            .property
            .expect("Session::property(..) must be set before Session::run()");
        // A resume state seeds exactly one run; later runs sweep fresh.
        let resume = self.resume.take();
        scheduler::run(
            &mut self.verifier,
            property,
            &self.options,
            self.threads,
            self.observer.as_ref(),
            self.setup,
            self.checkpoint.as_ref(),
            resume,
            &self.rescue,
        )
    }

    /// Enumerates violating combinations (serially) until `limit` witnesses
    /// are found, the space is exhausted, or a configured
    /// [`Session::time_limit`] expires. Unlike the bare witness list of
    /// [`Session::find_witnesses`], the result says *why* the search ended:
    /// `timed_out` and the quarantine list distinguish "no more witnesses
    /// exist" from "the search gave up looking".
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]).
    pub fn search_witnesses(&mut self, limit: usize) -> WitnessSearch {
        let property = self
            .property
            .expect("Session::property(..) must be set before Session::search_witnesses()");
        let (witnesses, skipped, stats) =
            self.verifier
                .find_witnesses_full(property, &self.options, limit);
        WitnessSearch {
            complete: !stats.timed_out
                && !stats.interrupted
                && skipped.is_empty()
                && witnesses.len() < limit,
            witnesses,
            skipped,
            stats,
        }
    }

    /// Enumerates violating combinations (serially) until `limit` witnesses
    /// are found or the space is exhausted. Honors
    /// [`Session::time_limit`] and [`Session::node_budget`]; call
    /// [`Session::search_witnesses`] to distinguish an exhausted space from
    /// a truncated search.
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]).
    pub fn find_witnesses(&mut self, limit: usize) -> Vec<Witness> {
        let property = self
            .property
            .expect("Session::property(..) must be set before Session::find_witnesses()");
        self.verifier.find_witnesses(property, &self.options, limit)
    }
}

/// The result of [`Session::search_witnesses`]: the witnesses plus the
/// completeness evidence a bare `Vec<Witness>` cannot carry.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct WitnessSearch {
    /// Violating combinations, in enumeration order.
    pub witnesses: Vec<Witness>,
    /// Combinations the search could not check (budget / panic
    /// quarantines).
    pub skipped: Vec<SkippedCombination>,
    /// Counters of the search sweep; `stats.timed_out` is set when a
    /// [`Session::time_limit`] cut the search short.
    pub stats: CheckStats,
    /// `true` when the whole space was swept: not timed out, nothing
    /// quarantined, and the search stopped because the space was exhausted
    /// rather than because `limit` was reached. An empty `witnesses` with
    /// `complete == false` proves nothing.
    pub complete: bool,
}
