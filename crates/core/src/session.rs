//! The front-door verification API.
//!
//! A [`Session`] owns a prepared verifier for one netlist and carries the
//! whole run configuration — property, engine options, worker count,
//! progress observer — behind a chainable builder surface:
//!
//! ```
//! use walshcheck_core::{EngineKind, Property, Session};
//! use walshcheck_gadgets::dom::dom_and;
//!
//! let netlist = dom_and(1);
//! let verdict = Session::new(&netlist)
//!     .expect("valid netlist")
//!     .property(Property::Sni(1))
//!     .engine(EngineKind::Mapi)
//!     .threads(2)
//!     .run();
//! assert!(verdict.secure);
//! ```
//!
//! Since 0.3 a session is a thin builder over the [`Job`] API: every
//! setter writes into the session's [`JobSpec`], and [`Session::run`]
//! delegates to [`Job::run`] — the same execution path the CLI and the
//! `walshcheckd` daemon use. [`Session::into_job`] hands over the
//! underlying job (e.g. to serialize its spec with
//! [`JobSpec::to_json`]).
//!
//! Setup (validation and symbolic unfolding) happens once in
//! [`Session::new`]; repeated [`Session::run`] calls reuse it. Every run
//! goes through the work-stealing batch scheduler — with one thread that
//! degenerates to the serial enumeration (same combination order, same
//! counters), so verdicts are thread-count-independent by construction.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use walshcheck_circuit::glitch::ProbeModel;
use walshcheck_circuit::netlist::Netlist;
use walshcheck_dd::backend::Backend;

use crate::engine::{EngineKind, SiftMode, Verifier, VerifyOptions};
use crate::error::Error;
use crate::job::{Job, JobSpec};
use crate::observe::ProgressObserver;
use crate::property::{CheckMode, CheckStats, Property, SkippedCombination, Verdict, Witness};

/// A configured verification run over one netlist. See the module docs.
pub struct Session {
    job: Job,
    /// `Job` always carries a property; the session API keeps "unset" as a
    /// state so [`Session::run`] can fail loudly on a forgotten
    /// [`Session::property`] call instead of silently checking a default.
    property_set: bool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("job", &self.job)
            .field("property_set", &self.property_set)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Validates and unfolds `netlist`, preparing a session with the
    /// default options (MAPI engine, joint mode, one thread).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Netlist`] if the netlist is structurally invalid
    /// or cyclic, and with [`Error::Capacity`] if it has more input
    /// variables than a spectral coordinate can index.
    pub fn new(netlist: &Netlist) -> Result<Self, Error> {
        // Placeholder property until Session::property is called;
        // `property_set` guards every path that would read it.
        let job = Job::new(netlist, JobSpec::new(Property::Sni(1)))?;
        Ok(Session {
            job,
            property_set: false,
        })
    }

    /// The property to check. Must be set before [`Session::run`].
    #[must_use]
    pub fn property(mut self, property: Property) -> Self {
        self.job.spec_mut().property = property;
        self.property_set = true;
        self
    }

    /// Replaces the whole option set (e.g. with a
    /// [`VerifyOptions::paper`] preset or a built configuration).
    #[must_use]
    pub fn options(mut self, options: VerifyOptions) -> Self {
        self.job.spec_mut().options = options;
        self
    }

    /// Engine backend.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.job.spec_mut().options.engine = engine;
        self
    }

    /// Row-wise or joint checking.
    #[must_use]
    pub fn mode(mut self, mode: CheckMode) -> Self {
        self.job.spec_mut().options.mode = mode;
        self
    }

    /// Probe model (standard or glitch-extended).
    #[must_use]
    pub fn probe_model(mut self, model: ProbeModel) -> Self {
        self.job.spec_mut().options.sites.probe_model = model;
        self
    }

    /// Functional-support prefilter on/off.
    #[must_use]
    pub fn prefilter(mut self, on: bool) -> Self {
        self.job.spec_mut().options.prefilter = on;
        self
    }

    /// Largest-combinations-first enumeration on/off.
    #[must_use]
    pub fn largest_first(mut self, on: bool) -> Self {
        self.job.spec_mut().options.largest_first = on;
        self
    }

    /// Wall-clock budget for each run.
    #[must_use]
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.job.spec_mut().options.time_limit = Some(limit);
        self
    }

    /// Prefix-shared convolution caching on/off (on by default). Purely a
    /// time/memory trade: verdicts and witnesses are identical either way.
    #[must_use]
    pub fn cache(mut self, on: bool) -> Self {
        self.job.spec_mut().options.cache = on;
        self
    }

    /// Byte budget of each worker's prefix cache (least-recently-used
    /// eviction above it; `0` disables caching).
    #[must_use]
    pub fn cache_budget(mut self, bytes: usize) -> Self {
        self.job.spec_mut().options.cache_budget = bytes;
        self
    }

    /// Decision-diagram backend: [`Backend::Private`] (each worker owns its
    /// node arenas — the default, and the only behaviour before 0.3) or
    /// [`Backend::Shared`] (all workers intern into one concurrent store,
    /// reusing each other's nodes and apply results). Purely a speed/memory
    /// knob: verdicts, witnesses and report artifacts are byte-identical
    /// across backends at any thread count. The process-wide default can be
    /// set with the `WALSHCHECK_DD_BACKEND` environment variable.
    #[must_use]
    pub fn dd_backend(mut self, backend: Backend) -> Self {
        self.job.spec_mut().options.backend = backend;
        self
    }

    /// Pre-sifting on/off (off by default). When on, greedy variable
    /// sifting runs once on the unfolded circuit before enumeration, so
    /// every combination is checked under the improved order. Witness masks
    /// are always reported in the original input numbering. Changes which
    /// combinations fit a [`Session::node_budget`], so it participates in
    /// the job identity.
    #[must_use]
    pub fn presift(mut self, on: bool) -> Self {
        self.job.spec_mut().options.presift = on;
        self
    }

    /// Support width at or below which the spectral kernels (map
    /// convolution, sparse Walsh transforms, the ADD WHT) drop to a flat
    /// integer butterfly (`0` disables; default
    /// [`crate::engine::DEFAULT_DENSE_CUT`]). The dense kernels are exact,
    /// so verdicts, witnesses and report artifacts are byte-identical at
    /// any cut — a pure speed knob, excluded from job identity.
    #[must_use]
    pub fn dense_cut(mut self, cut: u32) -> Self {
        self.job.spec_mut().options.dense_cut = cut;
        self
    }

    /// Where greedy variable sifting may run (default
    /// [`SiftMode::Rescue`]): `Off` removes the rescue ladder's sift rung,
    /// `Auto` additionally screens sweep combinations in a sifted order
    /// when the circuit is large enough to pay for the reorder, re-deriving
    /// any violation in the original order. All three modes produce
    /// byte-identical artifacts; the knob is excluded from job identity.
    #[must_use]
    pub fn sift(mut self, mode: SiftMode) -> Self {
        self.job.spec_mut().options.sift = mode;
        self
    }

    /// Caps decision-diagram arena growth per checked combination, in
    /// nodes. A combination whose check (or whose deterministic size
    /// pre-charge) would grow the arenas past the cap is *quarantined*
    /// instead of checked: the sweep continues, the combination lands in
    /// [`Verdict::skipped`], and the verdict degrades to at best
    /// [`crate::Outcome::Inconclusive`] with
    /// [`crate::IncompleteReason::NodeBudget`]. The quarantine list is
    /// deterministic and thread-count-independent.
    #[must_use]
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.job.spec_mut().options.node_budget = Some(nodes);
        self
    }

    /// Post-sweep rescue pass on/off (off by default). When on, every
    /// quarantined combination is re-verified through a deterministic
    /// escalation ladder — doubled node budgets, then BDD variable sifting,
    /// then engine fallback (see [`crate::recover`]) — and the verdict
    /// upgrades from `Inconclusive` to `Secure`/`Violated` if *every*
    /// quarantine resolves. Results stay byte-identical across thread
    /// counts and checkpoint/resume.
    #[must_use]
    pub fn rescue(mut self, on: bool) -> Self {
        self.job.spec_mut().rescue.enabled = on;
        self
    }

    /// Number of budget-doubling attempts on the first rescue rung
    /// (default [`crate::recover::DEFAULT_RESCUE_ATTEMPTS`]). Implies
    /// nothing about the later sift/fallback rungs, which always run once
    /// each if reached.
    #[must_use]
    pub fn rescue_attempts(mut self, attempts: u32) -> Self {
        self.job.spec_mut().rescue.attempts = attempts;
        self
    }

    /// Global cap, in bytes, on the node budget any single rescue attempt
    /// may be granted (default [`crate::recover::DEFAULT_RESCUE_BUDGET`]).
    #[must_use]
    pub fn rescue_budget(mut self, bytes: usize) -> Self {
        self.job.spec_mut().rescue.budget_bytes = bytes;
        self
    }

    /// Periodically persists run progress to `path` (at most every
    /// `every`; [`Duration::ZERO`] writes after every completed batch). The
    /// file can be fed back through [`Session::resume_from`] after an
    /// interrupted run.
    #[must_use]
    pub fn checkpoint_to(mut self, path: impl Into<std::path::PathBuf>, every: Duration) -> Self {
        self.job.checkpoint_to(path, every);
        self
    }

    /// Seeds the *next* [`Session::run`] from a checkpoint written by
    /// [`Session::checkpoint_to`]: completed combinations are skipped and
    /// the recorded evidence (candidates, quarantines, counters) is carried
    /// over. The resumed verdict — outcome, witness, quarantine list — is
    /// identical to an uninterrupted run's.
    ///
    /// Call this *after* [`Session::property`] and any option setters: the
    /// checkpoint is validated against a fingerprint of the netlist, the
    /// property, and the enumeration-relevant options as configured now.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if `path` cannot be read, [`Error::Checkpoint`] if the
    /// file is malformed or does not match this session's fingerprint,
    /// [`Error::Config`] if no property is set yet.
    pub fn resume_from(mut self, path: impl AsRef<Path>) -> Result<Self, Error> {
        if !self.property_set {
            return Err(Error::Config(
                "set Session::property(..) before Session::resume_from(..)".into(),
            ));
        }
        self.job.resume_from(path)?;
        Ok(self)
    }

    /// Number of worker threads (clamped to at least 1). The verdict —
    /// including the selected witness — is independent of this.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.job.spec_mut().threads = threads.max(1);
        self
    }

    /// Registers a progress observer receiving scheduler callbacks.
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn ProgressObserver>) -> Self {
        self.job.set_observer(observer);
        self
    }

    /// The current option set.
    pub fn options_ref(&self) -> &VerifyOptions {
        &self.job.spec().options
    }

    /// The current job specification (property, options, threads, rescue).
    pub fn spec(&self) -> &JobSpec {
        self.job.spec()
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &Netlist {
        self.job.netlist()
    }

    /// The underlying verifier, for advanced per-combination queries
    /// ([`Verifier::check_specific`], [`Verifier::minimize_witness`]).
    pub fn verifier_mut(&mut self) -> &mut Verifier {
        self.job.verifier_mut()
    }

    /// Hands over the underlying [`Job`] — observer, checkpoint
    /// configuration and pending resume included. The job API is what the
    /// daemon and the artifact store consume ([`JobSpec::to_json`],
    /// [`JobSpec::identity_hash`]).
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]): a job
    /// always carries a definite property.
    pub fn into_job(self) -> Job {
        assert!(
            self.property_set,
            "Session::property(..) must be set before Session::into_job()"
        );
        self.job
    }

    /// Runs the check with the configured property, engine and threads.
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]).
    pub fn run(&mut self) -> Verdict {
        assert!(
            self.property_set,
            "Session::property(..) must be set before Session::run()"
        );
        self.job.run()
    }

    /// Enumerates violating combinations (serially) until `limit` witnesses
    /// are found, the space is exhausted, or a configured
    /// [`Session::time_limit`] expires. Unlike the bare witness list of
    /// [`Session::find_witnesses`], the result says *why* the search ended:
    /// `timed_out` and the quarantine list distinguish "no more witnesses
    /// exist" from "the search gave up looking".
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]).
    pub fn search_witnesses(&mut self, limit: usize) -> WitnessSearch {
        assert!(
            self.property_set,
            "Session::property(..) must be set before Session::search_witnesses()"
        );
        let spec = self.job.spec();
        let (property, options) = (spec.property, spec.options.clone());
        let (witnesses, skipped, stats) = self
            .job
            .verifier_mut()
            .find_witnesses_full(property, &options, limit);
        WitnessSearch {
            complete: !stats.timed_out
                && !stats.interrupted
                && skipped.is_empty()
                && witnesses.len() < limit,
            witnesses,
            skipped,
            stats,
        }
    }

    /// Enumerates violating combinations (serially) until `limit` witnesses
    /// are found or the space is exhausted. Honors
    /// [`Session::time_limit`] and [`Session::node_budget`]; call
    /// [`Session::search_witnesses`] to distinguish an exhausted space from
    /// a truncated search.
    ///
    /// # Panics
    ///
    /// Panics if no property was set (see [`Session::property`]).
    pub fn find_witnesses(&mut self, limit: usize) -> Vec<Witness> {
        assert!(
            self.property_set,
            "Session::property(..) must be set before Session::find_witnesses()"
        );
        let spec = self.job.spec();
        let (property, options) = (spec.property, spec.options.clone());
        self.job
            .verifier_mut()
            .find_witnesses(property, &options, limit)
    }
}

/// The result of [`Session::search_witnesses`]: the witnesses plus the
/// completeness evidence a bare `Vec<Witness>` cannot carry.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct WitnessSearch {
    /// Violating combinations, in enumeration order.
    pub witnesses: Vec<Witness>,
    /// Combinations the search could not check (budget / panic
    /// quarantines).
    pub skipped: Vec<SkippedCombination>,
    /// Counters of the search sweep; `stats.timed_out` is set when a
    /// [`Session::time_limit`] cut the search short.
    pub stats: CheckStats,
    /// `true` when the whole space was swept: not timed out, nothing
    /// quarantined, and the search stopped because the space was exhausted
    /// rather than because `limit` was reached. An empty `witnesses` with
    /// `complete == false` proves nothing.
    pub complete: bool,
}
