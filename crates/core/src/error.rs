//! The unified error type of the core crate.
//!
//! Fallible entry points ([`crate::Session::new`], the deprecated
//! `check_*` wrappers, the CLI front end) return [`Error`] instead of
//! leaking the circuit crate's error types directly, so a caller matches
//! one enum regardless of which layer failed.

use std::fmt;

use walshcheck_circuit::ilang::ParseIlangError;
use walshcheck_circuit::netlist::NetlistError;

/// Any failure the verification API can report.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The netlist is structurally invalid (multiple drivers, cycles,
    /// bad sharing annotations, …).
    Netlist(NetlistError),
    /// An RTLIL (`.il`) source failed to parse.
    ParseIlang(ParseIlangError),
    /// The run configuration is inconsistent or unusable.
    Config(String),
    /// The design exceeds an engine capacity limit (e.g. more input
    /// variables than a spectral coordinate can index).
    Capacity(String),
    /// A filesystem operation (checkpoint read/write) failed.
    Io(std::io::Error),
    /// A checkpoint file is malformed, has the wrong schema, or does not
    /// match the current netlist/property/options fingerprint.
    Checkpoint(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Netlist(e) => write!(f, "invalid netlist: {e}"),
            Error::ParseIlang(e) => write!(f, "parse error: {e}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Capacity(msg) => write!(f, "capacity exceeded: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Checkpoint(msg) => write!(f, "bad checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist(e) => Some(e),
            Error::ParseIlang(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Config(_) | Error::Capacity(_) | Error::Checkpoint(_) => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<NetlistError> for Error {
    fn from(e: NetlistError) -> Self {
        Error::Netlist(e)
    }
}

impl From<ParseIlangError> for Error {
    fn from(e: ParseIlangError) -> Self {
        Error::ParseIlang(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = Error::from(NetlistError::CombinationalCycle("t".into()));
        assert!(e.to_string().starts_with("invalid netlist:"));
        assert!(e.source().is_some());
        let e = Error::Capacity("129 input variables (limit 128)".into());
        assert!(e.to_string().contains("capacity exceeded"));
        assert!(e.source().is_none());
        let e = Error::Config("no property set".into());
        assert!(e.to_string().contains("invalid configuration"));
    }
}
