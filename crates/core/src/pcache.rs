//! Memory-bounded prefix cache for partial convolution products.
//!
//! The combination enumeration is lexicographic, which is exactly a DFS over
//! the prefix trie of site-index tuples: consecutive tuples share long
//! prefixes. The engines exploit that by caching, per worker, the list of
//! partial correlation rows of each proper prefix they compute — a later
//! tuple extending the same prefix reuses the rows instead of re-convolving
//! them (see DESIGN.md §9).
//!
//! [`PrefixCache`] is the container behind that reuse: a hash map keyed by
//! `(prefix, mode)` with least-recently-used eviction driven by an estimated
//! byte budget, replacing the unbounded maps a naive memoization would grow.
//! Values are opaque to the cache; the caller supplies a byte estimate at
//! insertion time (spectra report their own heap footprint, decision-diagram
//! handles are accounted as handles since their nodes live in a shared
//! arena).
//!
//! Counting convention: a **hit** is a lookup served from the cache; a
//! **miss** is an entry the engine had to compute and insert (the descending
//! prefix probe of one tuple is not counted as multiple misses); an
//! **eviction** is an entry dropped by the budget, rejected as oversized, or
//! invalidated by [`PrefixCache::clear`].

use walshcheck_dd::FastMap;

/// Aggregate counters of one [`PrefixCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PrefixCacheStats {
    /// Lookups served from the cache.
    pub(crate) hits: u64,
    /// Entries computed and inserted.
    pub(crate) misses: u64,
    /// Entries dropped (budget, oversized, or invalidation).
    pub(crate) evictions: u64,
    /// Largest estimated footprint reached, in bytes.
    pub(crate) peak_bytes: u64,
}

/// Cache key: the site-index prefix plus the row-construction mode (joint
/// mode interleaves empty-choice rows, so its row lists differ from
/// row-wise ones for the same prefix).
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
struct Key {
    prefix: Vec<u32>,
    joint: bool,
}

fn key_of(prefix: &[usize], joint: bool) -> Key {
    Key {
        prefix: prefix.iter().map(|&i| i as u32).collect(),
        joint,
    }
}

/// Estimated heap bytes of a key (for budget accounting).
fn key_bytes(key: &Key) -> usize {
    key.prefix.len() * 4 + 32
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    bytes: usize,
    last_used: u64,
}

/// An LRU cache bounded by an estimated byte budget. See the module docs.
#[derive(Debug)]
pub(crate) struct PrefixCache<V> {
    map: FastMap<Key, Slot<V>>,
    /// Reusable lookup key, so the hot `get` path allocates nothing.
    scratch: Key,
    budget: usize,
    used: usize,
    tick: u64,
    stats: PrefixCacheStats,
}

impl<V: Clone> PrefixCache<V> {
    pub(crate) fn new(budget: usize) -> Self {
        PrefixCache {
            map: FastMap::default(),
            scratch: Key {
                prefix: Vec::new(),
                joint: false,
            },
            budget,
            used: 0,
            tick: 0,
            stats: PrefixCacheStats::default(),
        }
    }

    /// Looks up the row list of `(prefix, joint)`, refreshing its recency.
    /// Values are refcounted handles, so a hit hands out a clone.
    pub(crate) fn get(&mut self, prefix: &[usize], joint: bool) -> Option<V> {
        let mut key = std::mem::take(&mut self.scratch);
        key.prefix.clear();
        key.prefix.extend(prefix.iter().map(|&i| i as u32));
        key.joint = joint;
        self.tick += 1;
        let tick = self.tick;
        let found = self.map.get_mut(&key).map(|slot| {
            slot.last_used = tick;
            slot.value.clone()
        });
        self.scratch = key;
        if found.is_some() {
            self.stats.hits += 1;
        }
        found
    }

    /// Inserts a freshly computed entry of estimated `bytes` size, evicting
    /// least-recently-used entries if the budget is exceeded. Counts one
    /// miss (the caller had to compute `value`).
    pub(crate) fn insert(&mut self, prefix: &[usize], joint: bool, value: V, bytes: usize) {
        self.stats.misses += 1;
        let key = key_of(prefix, joint);
        let bytes = bytes + key_bytes(&key);
        if bytes > self.budget {
            // A single oversized value would immediately flush everything
            // else; refusing it keeps the cache useful.
            self.stats.evictions += 1;
            return;
        }
        self.tick += 1;
        let slot = Slot {
            value,
            bytes,
            last_used: self.tick,
        };
        if let Some(old) = self.map.insert(key, slot) {
            self.used -= old.bytes;
        }
        self.used += bytes;
        if self.used > self.budget {
            self.evict();
        }
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.used as u64);
    }

    /// Evicts in LRU order until usage drops below 7/8 of the budget (the
    /// slack amortizes the O(n log n) recency sort over many insertions).
    fn evict(&mut self) {
        let target = self.budget - self.budget / 8;
        let mut order: Vec<(u64, Key)> = self
            .map
            .iter()
            .map(|(k, s)| (s.last_used, k.clone()))
            .collect();
        order.sort_unstable_by_key(|&(t, _)| t);
        for (_, key) in order {
            if self.used <= target {
                break;
            }
            if let Some(slot) = self.map.remove(&key) {
                self.used -= slot.bytes;
                self.stats.evictions += 1;
            }
        }
    }

    /// Drops every entry (used when cached decision-diagram handles are
    /// invalidated by an arena reset). Cleared entries count as evictions.
    pub(crate) fn clear(&mut self) {
        self.stats.evictions += self.map.len() as u64;
        self.map.clear();
        self.used = 0;
    }

    /// Current counter snapshot.
    pub(crate) fn stats(&self) -> PrefixCacheStats {
        self.stats
    }

    /// Current estimated footprint in bytes.
    #[cfg(test)]
    pub(crate) fn used_bytes(&self) -> usize {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c: PrefixCache<u32> = PrefixCache::new(1 << 20);
        assert!(c.get(&[0, 1], false).is_none());
        c.insert(&[0, 1], false, 7, 100);
        assert_eq!(c.get(&[0, 1], false), Some(7));
        // Same prefix, other mode: distinct entry.
        assert!(c.get(&[0, 1], true).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert!(s.peak_bytes > 0);
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        // Each entry costs ~1000 + key bytes; budget fits about three.
        let mut c: PrefixCache<u32> = PrefixCache::new(3_200);
        c.insert(&[0], false, 0, 1000);
        c.insert(&[1], false, 1, 1000);
        c.insert(&[2], false, 2, 1000);
        // Refresh [0] so [1] is the LRU entry.
        assert!(c.get(&[0], false).is_some());
        c.insert(&[3], false, 3, 1000);
        assert!(c.get(&[1], false).is_none(), "LRU entry evicted");
        assert!(c.get(&[3], false).is_some(), "new entry resident");
        assert!(c.stats().evictions >= 1);
        assert!(c.used_bytes() <= 3_200);
    }

    #[test]
    fn oversized_values_are_rejected() {
        let mut c: PrefixCache<u32> = PrefixCache::new(100);
        c.insert(&[0], false, 9, 1000);
        assert!(c.get(&[0], false).is_none());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn clear_counts_invalidations() {
        let mut c: PrefixCache<u32> = PrefixCache::new(1 << 20);
        c.insert(&[0], false, 0, 10);
        c.insert(&[0, 1], true, 1, 10);
        c.clear();
        assert_eq!(c.stats().evictions, 2);
        assert!(c.get(&[0], false).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn replacing_an_entry_keeps_accounting_consistent() {
        let mut c: PrefixCache<u32> = PrefixCache::new(1 << 20);
        c.insert(&[0], false, 1, 500);
        let used = c.used_bytes();
        c.insert(&[0], false, 2, 500);
        assert_eq!(c.used_bytes(), used);
        assert_eq!(c.get(&[0], false), Some(2));
    }
}
