//! Adaptive recovery: a bounded escalation ladder for quarantined
//! combinations.
//!
//! The resilient sweep (DESIGN.md §10) quarantines a combination instead of
//! aborting when it blows its node budget or its worker panics. This module
//! is the healing half: after the sweep, every quarantined combination is
//! re-verified through a deterministic, bounded ladder of attempts —
//!
//! 1. **Budget escalation** — retry under the original engine with the node
//!    budget doubled per attempt (geometric), capped by the global rescue
//!    budget ([`RescueConfig::budget_bytes`]).
//! 2. **Variable sifting** — rebuild the combination's BDDs under a greedily
//!    sifted variable order ([`walshcheck_dd::reorder::sift`]) and retry at
//!    the budget cap. Reordering attacks the *cause* of a blow-up (a bad
//!    order can be exponentially larger), so it comes before switching
//!    algorithms.
//! 3. **Engine fallback** — retry with the remaining engines in MAPI → MAP →
//!    LIL order, trading memory for time (LIL streams rows and keeps almost
//!    nothing resident).
//!
//! Every attempt runs under the same `catch_unwind` isolation as the sweep,
//! so a rescue attempt that panics is just a recorded [`Panicked`] outcome,
//! never a crash. The per-attempt record feeds the `recovery` block of
//! `walshcheck-report/4` and the [`ProgressObserver`] rescue callbacks.
//!
//! Determinism: the ladder for a given combination depends only on the
//! verification options and the rescue configuration — never on thread
//! count, timing, or which attempt another combination needed — so a rescued
//! run's outcome and witness are byte-identical across thread counts and
//! across checkpoint/resume (see `tests/resilience.rs`).
//!
//! [`Panicked`]: RescueAttemptOutcome::Panicked
//! [`ProgressObserver`]: crate::observe::ProgressObserver

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::engine::{ComboStep, EngineKind, SiftMode, Verifier, VerifyOptions};
use crate::observe::ProgressObserver;
use crate::property::{CheckStats, IncompleteReason, ProbeRef, Property};
use crate::sites::Site;

/// Default global rescue budget: 256 MiB of decision-diagram nodes.
pub const DEFAULT_RESCUE_BUDGET: usize = 256 << 20;

/// Default number of budget-doubling attempts on the first rung.
pub const DEFAULT_RESCUE_ATTEMPTS: u32 = 3;

/// Rough per-node footprint used to convert the byte-denominated rescue
/// budget into a node cap (a packed BDD node plus its share of the unique
/// table).
const BYTES_PER_NODE: usize = 32;

/// Configuration of the post-sweep rescue pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescueConfig {
    /// Whether the rescue pass runs at all. Off by default: a plain run
    /// keeps PR-3 semantics (quarantine → `Inconclusive`).
    pub enabled: bool,
    /// Number of budget-doubling attempts on the first rung.
    pub attempts: u32,
    /// Global cap, in bytes, on the node budget any single rescue attempt
    /// may be granted. Converted to nodes at a fixed per-node estimate.
    pub budget_bytes: usize,
}

impl Default for RescueConfig {
    fn default() -> Self {
        RescueConfig {
            enabled: false,
            attempts: DEFAULT_RESCUE_ATTEMPTS,
            budget_bytes: DEFAULT_RESCUE_BUDGET,
        }
    }
}

impl RescueConfig {
    /// The node cap every rung is clamped to (at least one node).
    pub fn node_cap(&self) -> usize {
        (self.budget_bytes / BYTES_PER_NODE).max(1)
    }
}

/// Which rung of the escalation ladder an attempt belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RescueRung {
    /// Retry under the original engine with a doubled node budget.
    Budget,
    /// Retry after greedy variable sifting, at the budget cap.
    Sift,
    /// Retry with a different engine, at the budget cap.
    EngineFallback,
}

impl RescueRung {
    /// Stable machine-readable name (report/4, checkpoints, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            RescueRung::Budget => "budget",
            RescueRung::Sift => "sift",
            RescueRung::EngineFallback => "engine-fallback",
        }
    }
}

impl std::fmt::Display for RescueRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a single rescue attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RescueAttemptOutcome {
    /// The combination verified clean under this attempt's settings.
    Clean,
    /// The combination is a genuine violation — the run's verdict will be
    /// `Violated` with a deterministically recomputed witness.
    Violated,
    /// The attempt ran out of its node budget; the ladder continues.
    NodeBudget,
    /// The attempt panicked (isolated); the ladder continues.
    Panicked,
}

impl RescueAttemptOutcome {
    /// Stable machine-readable name (report/4).
    pub fn as_str(self) -> &'static str {
        match self {
            RescueAttemptOutcome::Clean => "clean",
            RescueAttemptOutcome::Violated => "violated",
            RescueAttemptOutcome::NodeBudget => "node-budget",
            RescueAttemptOutcome::Panicked => "panicked",
        }
    }
}

impl std::fmt::Display for RescueAttemptOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Final resolution of one quarantined combination after the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RescueResolution {
    /// Some attempt proved the combination clean.
    Clean,
    /// Some attempt found a violation.
    Violated,
    /// Every attempt failed; the combination stays quarantined and the run
    /// stays `Inconclusive`.
    Unresolved,
}

impl RescueResolution {
    /// Stable machine-readable name (report/4).
    pub fn as_str(self) -> &'static str {
        match self {
            RescueResolution::Clean => "clean",
            RescueResolution::Violated => "violated",
            RescueResolution::Unresolved => "unresolved",
        }
    }
}

impl std::fmt::Display for RescueResolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded attempt of the escalation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RescueAttempt {
    /// Which rung produced this attempt.
    pub rung: RescueRung,
    /// The engine the attempt ran under.
    pub engine: EngineKind,
    /// The node budget granted to the attempt (`None` = unbounded, only for
    /// re-running a panic quarantine that never exhausted a budget).
    pub node_budget: Option<usize>,
    /// How the attempt ended.
    pub outcome: RescueAttemptOutcome,
}

/// The full rescue record of one quarantined combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RescuedCombination {
    /// Global enumeration index of the combination.
    pub index: u64,
    /// The probes of the combination.
    pub combination: Vec<ProbeRef>,
    /// Why the sweep quarantined it.
    pub reason: IncompleteReason,
    /// Every attempt made, in ladder order (empty for combinations carried
    /// from a resumed checkpoint — their ladder ran in the earlier process).
    pub attempts: Vec<RescueAttempt>,
    /// The final resolution.
    pub resolution: RescueResolution,
}

/// Summary of the whole rescue pass, attached to the [`Verdict`] and
/// rendered as the `recovery` block of `walshcheck-report/4`.
///
/// [`Verdict`]: crate::property::Verdict
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Combinations the pass attempted (including carried resolutions).
    pub attempted: usize,
    /// Combinations resolved (clean or violated).
    pub resolved: usize,
    /// Combinations still quarantined after the ladder.
    pub unresolved: usize,
    /// Per-combination records, in enumeration order.
    pub combinations: Vec<RescuedCombination>,
}

/// One planned attempt: rung, engine, budget, and whether to sift first.
struct AttemptPlan {
    rung: RescueRung,
    engine: EngineKind,
    node_budget: Option<usize>,
    sift: bool,
}

/// Builds the deterministic attempt ladder for the given options. The plan
/// depends only on `(options, config)` — never on which combination is being
/// rescued — which is what makes the rescue pass order- and
/// thread-independent.
fn ladder(options: &VerifyOptions, config: &RescueConfig) -> Vec<AttemptPlan> {
    let cap = config.node_cap();
    let mut plans = Vec::new();
    match options.node_budget {
        // Rung 1: geometric budget escalation, capped.
        Some(base) => {
            let mut budget = base.max(1);
            for _ in 0..config.attempts {
                budget = budget.saturating_mul(2).min(cap);
                plans.push(AttemptPlan {
                    rung: RescueRung::Budget,
                    engine: options.engine,
                    node_budget: Some(budget),
                    sift: false,
                });
                if budget >= cap {
                    break;
                }
            }
        }
        // No budget was configured (the quarantine came from a panic, not
        // an overrun): a single plain retry stands in for the rung.
        None => {
            if config.attempts > 0 {
                plans.push(AttemptPlan {
                    rung: RescueRung::Budget,
                    engine: options.engine,
                    node_budget: None,
                    sift: false,
                });
            }
        }
    }
    // Rung 2: sifted variable order at the cap. Reordering attacks the
    // size blow-up itself, so it precedes changing the algorithm.
    // `--sift off` removes the rung (the ladder stays deterministic: the
    // plan is still a pure function of the options).
    if options.sift != SiftMode::Off {
        plans.push(AttemptPlan {
            rung: RescueRung::Sift,
            engine: options.engine,
            node_budget: Some(cap),
            sift: true,
        });
    }
    // Rung 3: engine fallback, memory-hungry to memory-lean.
    for engine in [EngineKind::Mapi, EngineKind::Map, EngineKind::Lil] {
        if engine != options.engine {
            plans.push(AttemptPlan {
                rung: RescueRung::EngineFallback,
                engine,
                node_budget: Some(cap),
                sift: false,
            });
        }
    }
    plans
}

/// Runs one attempt under full panic isolation and classifies the result.
/// Attempt-local counters are deliberately dropped: rescue work must not
/// perturb the run's sweep statistics, which are part of the determinism
/// contract with an unconstrained run.
fn run_attempt(
    verifier: &Verifier,
    property: Property,
    options: &VerifyOptions,
    plan: &AttemptPlan,
    sites: &[Site],
    idxs: &[usize],
    index: u64,
) -> RescueAttemptOutcome {
    let mut opts = options.clone();
    opts.engine = plan.engine;
    opts.node_budget = plan.node_budget;
    opts.prefilter = false;
    let mut stats = CheckStats::default();
    let result = catch_unwind(AssertUnwindSafe(|| {
        crate::fault::maybe_inject_rescue(index);
        if plan.sift {
            verifier.check_sifted(property, &opts, sites, idxs, &mut stats)
        } else {
            verifier.check_fresh(property, &opts, sites, idxs, &mut stats)
        }
    }));
    match result {
        Ok(ComboStep::Violation(_)) => RescueAttemptOutcome::Violated,
        Ok(_) => RescueAttemptOutcome::Clean,
        Err(payload) => match crate::isolate::classify(payload.as_ref()) {
            IncompleteReason::NodeBudget => RescueAttemptOutcome::NodeBudget,
            _ => RescueAttemptOutcome::Panicked,
        },
    }
}

/// Walks one quarantined combination up the escalation ladder, stopping at
/// the first conclusive attempt, and returns the full record.
#[allow(clippy::too_many_arguments)] // scheduler-internal plumbing
pub(crate) fn rescue_one(
    verifier: &Verifier,
    property: Property,
    options: &VerifyOptions,
    config: &RescueConfig,
    sites: &[Site],
    index: u64,
    idxs: &[usize],
    reason: IncompleteReason,
    observer: Option<&dyn ProgressObserver>,
) -> RescuedCombination {
    let mut attempts = Vec::new();
    let mut resolution = RescueResolution::Unresolved;
    for plan in ladder(options, config) {
        let outcome = run_attempt(verifier, property, options, &plan, sites, idxs, index);
        let attempt = RescueAttempt {
            rung: plan.rung,
            engine: plan.engine,
            node_budget: plan.node_budget,
            outcome,
        };
        if let Some(obs) = observer {
            obs.rescue_attempt(index, &attempt);
        }
        attempts.push(attempt);
        match outcome {
            RescueAttemptOutcome::Clean => {
                resolution = RescueResolution::Clean;
                break;
            }
            RescueAttemptOutcome::Violated => {
                resolution = RescueResolution::Violated;
                break;
            }
            RescueAttemptOutcome::NodeBudget | RescueAttemptOutcome::Panicked => {}
        }
    }
    if let Some(obs) = observer {
        obs.rescue_resolved(index, resolution);
    }
    RescuedCombination {
        index,
        combination: idxs.iter().map(|&i| sites[i].probe.clone()).collect(),
        reason,
        attempts,
        resolution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(engine: EngineKind, budget: Option<usize>) -> VerifyOptions {
        let mut o = VerifyOptions::builder().engine(engine).build();
        o.node_budget = budget;
        o
    }

    #[test]
    fn ladder_escalates_geometrically_then_sifts_then_falls_back() {
        let config = RescueConfig {
            enabled: true,
            ..RescueConfig::default()
        };
        let plans = ladder(&opts(EngineKind::Mapi, Some(1)), &config);
        let cap = config.node_cap();
        let shape: Vec<_> = plans
            .iter()
            .map(|p| (p.rung, p.engine, p.node_budget, p.sift))
            .collect();
        assert_eq!(
            shape,
            vec![
                (RescueRung::Budget, EngineKind::Mapi, Some(2), false),
                (RescueRung::Budget, EngineKind::Mapi, Some(4), false),
                (RescueRung::Budget, EngineKind::Mapi, Some(8), false),
                (RescueRung::Sift, EngineKind::Mapi, Some(cap), true),
                (
                    RescueRung::EngineFallback,
                    EngineKind::Map,
                    Some(cap),
                    false
                ),
                (
                    RescueRung::EngineFallback,
                    EngineKind::Lil,
                    Some(cap),
                    false
                ),
            ]
        );
    }

    #[test]
    fn ladder_caps_the_geometric_climb() {
        let config = RescueConfig {
            enabled: true,
            attempts: 10,
            budget_bytes: 4 * 32, // cap = 4 nodes
        };
        let plans = ladder(&opts(EngineKind::Lil, Some(1)), &config);
        let budgets: Vec<_> = plans
            .iter()
            .filter(|p| p.rung == RescueRung::Budget)
            .map(|p| p.node_budget)
            .collect();
        // 2, then 4 == cap stops the climb — never ten attempts.
        assert_eq!(budgets, vec![Some(2), Some(4)]);
    }

    #[test]
    fn panic_quarantines_get_a_single_plain_retry() {
        let config = RescueConfig::default();
        let plans = ladder(&opts(EngineKind::Mapi, None), &config);
        assert_eq!(plans[0].rung, RescueRung::Budget);
        assert_eq!(plans[0].node_budget, None);
        assert_eq!(
            plans
                .iter()
                .filter(|p| p.rung == RescueRung::Budget)
                .count(),
            1
        );
        // Full ladder: plain retry, sift, two fallbacks (MAPI is the base).
        assert_eq!(plans.len(), 4);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RescueRung::EngineFallback.as_str(), "engine-fallback");
        assert_eq!(RescueAttemptOutcome::NodeBudget.as_str(), "node-budget");
        assert_eq!(RescueResolution::Unresolved.to_string(), "unresolved");
    }
}
