//! Work-stealing batched scheduler for the combination enumeration.
//!
//! The paper lists parallelization as future work; the first cut here was
//! static modulo sharding (kept as `check_parallel_modulo` for baseline
//! measurements), which splits the space by leading site index. That split
//! is badly unbalanced: the largest-first heuristic makes combination cost
//! depend on position, and a worker whose shard holds the expensive leading
//! indices becomes the critical path while the others idle.
//!
//! This scheduler instead dispenses the enumeration as contiguous batches
//! from a shared cursor (self-scheduling / work stealing from a central
//! queue): idle workers always find work while any remains, so imbalance is
//! bounded by one batch. Combinations keep their global enumeration index —
//! the exact order the serial verifier uses — which preserves deterministic
//! witness selection (see below) no matter how batches interleave at run
//! time.
//!
//! # Batching policy
//!
//! Combinations are grouped into size buckets (`k = d..1` under
//! largest-first). Each bucket's batch length is `C(n, k) / (threads × 16)`
//! clamped to `[1, 1024]`: small enough that every worker gets many batches
//! per bucket (load balance), large enough that the shared-cursor lock is
//! cold (one lock round-trip per batch, not per combination).
//!
//! # Cancellation and determinism
//!
//! A worker that finds a violation at global index `g` lowers the shared
//! `stop_before` bound with a `fetch_min`. The queue stops issuing batches
//! at or past the bound, and in-flight workers skip their remaining
//! combinations with index `≥ stop_before` — but every batch below the
//! bound runs to completion. Since batches are claimed in enumeration
//! order, all combinations before the final bound are fully checked, and
//! the minimum-index candidate is exactly the witness the serial
//! enumeration would have returned first. A wall-clock timeout instead
//! raises a hard stop that abandons all remaining work (the verdict is then
//! flagged `timed_out`, matching the serial semantics).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use walshcheck_circuit::netlist::Netlist;
use walshcheck_dd::backend::DdBackend;

use crate::checkpoint::{self, Checkpoint, CheckpointConfig, RangeSet, ResumeState};
use crate::engine::{ComboStep, EnumState, Verifier, VerifyOptions};
use crate::observe::{EnginePhase, ProgressObserver};
use crate::property::{
    CheckStats, IncompleteReason, Property, SkippedCombination, Verdict, Witness,
};
use crate::recover::{RecoveryReport, RescueConfig, RescueResolution, RescuedCombination};

/// Wall-times of the setup work done in `Session::new`, reported to the
/// observer as engine phases.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SetupTimings {
    pub(crate) validate: Duration,
    pub(crate) unfold: Duration,
}

/// `C(n, k)`, saturating at `u64::MAX` (only used for progress accounting;
/// the enumeration itself never materializes the count).
fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

/// A claimed slice of the enumeration: `len` combinations of size `k`
/// starting at global index `first_index`, stored flattened.
struct Batch {
    k: usize,
    first_index: u64,
    flat: Vec<usize>,
}

impl Batch {
    fn len(&self) -> usize {
        self.flat.len() / self.k
    }

    fn combos(&self) -> impl Iterator<Item = &[usize]> {
        self.flat.chunks_exact(self.k)
    }
}

/// Cursor state behind the queue's mutex: the current bucket, the next
/// combination in it, and that combination's global index.
struct Cursor {
    /// Index into `BatchQueue::sizes`.
    bucket: usize,
    /// The next combination to hand out (`None` once the bucket must be
    /// (re-)initialized).
    next: Option<Vec<usize>>,
    /// Global enumeration index of `next`.
    global: u64,
}

/// The shared batch dispenser.
struct BatchQueue {
    n: usize,
    /// Bucket sizes in enumeration order (largest-first by default).
    sizes: Vec<usize>,
    /// Batch length per bucket (see module docs for the policy).
    batch_lens: Vec<usize>,
    cursor: Mutex<Cursor>,
    /// Combinations with global index `>= stop_before` need not run: a
    /// violation with a smaller index has already been found.
    stop_before: AtomicU64,
    /// Abandon everything (wall-clock timeout).
    hard_stop: AtomicBool,
    /// Set when a graceful-shutdown request drained the queue while
    /// dispensable work remained — distinguishes "interrupted" from
    /// "exhausted" (a sweep that finished before the signal stays
    /// conclusive).
    cut: AtomicBool,
    /// Job-scoped interrupt token ([`crate::Job::set_interrupt`]): drains
    /// this queue exactly like the process-global flag, without touching
    /// sibling runs in the same process.
    interrupt: Option<Arc<AtomicBool>>,
}

impl BatchQueue {
    fn new(
        n: usize,
        sizes: Vec<usize>,
        threads: usize,
        interrupt: Option<Arc<AtomicBool>>,
    ) -> Self {
        let batch_lens = sizes
            .iter()
            .map(|&k| {
                let total = binomial(n, k);
                (total / (threads as u64 * 16).max(1)).clamp(1, 1024) as usize
            })
            .collect();
        BatchQueue {
            n,
            sizes,
            batch_lens,
            cursor: Mutex::new(Cursor {
                bucket: 0,
                next: None,
                global: 0,
            }),
            stop_before: AtomicU64::new(u64::MAX),
            hard_stop: AtomicBool::new(false),
            cut: AtomicBool::new(false),
            interrupt,
        }
    }

    /// Whether a graceful interruption was requested — process-global
    /// shutdown or this run's own token.
    fn interrupt_requested(&self) -> bool {
        crate::shutdown::requested()
            || self
                .interrupt
                .as_ref()
                .is_some_and(|t| t.load(Ordering::Relaxed))
    }

    fn stop_before(&self) -> u64 {
        self.stop_before.load(Ordering::Relaxed)
    }

    fn record_violation(&self, index: u64) {
        self.stop_before.fetch_min(index, Ordering::Relaxed);
    }

    fn hard_stop(&self) {
        self.hard_stop.store(true, Ordering::Relaxed);
    }

    fn hard_stopped(&self) -> bool {
        self.hard_stop.load(Ordering::Relaxed)
    }

    fn was_cut(&self) -> bool {
        self.cut.load(Ordering::Relaxed)
    }

    /// Claims the next batch, or `None` when the enumeration is exhausted,
    /// cancelled past the cursor, or hard-stopped.
    fn next_batch(&self) -> Option<Batch> {
        if self.hard_stopped() {
            return None;
        }
        let mut cur = self.cursor.lock().expect("queue poisoned");
        // Position the cursor on a combination (entering the next bucket if
        // the current one is drained).
        while cur.next.is_none() {
            if cur.bucket >= self.sizes.len() {
                return None;
            }
            let k = self.sizes[cur.bucket];
            if k >= 1 && k <= self.n {
                cur.next = Some((0..k).collect());
            } else {
                cur.bucket += 1;
            }
        }
        if cur.global >= self.stop_before() {
            return None;
        }
        // Graceful shutdown — process-global or job-scoped — drains the
        // queue at the batch boundary: the check sits *after* the
        // exhaustion and cancellation tests, so `cut` is only raised when
        // checkable work was actually abandoned.
        if self.interrupt_requested() {
            self.cut.store(true, Ordering::Relaxed);
            return None;
        }
        let k = self.sizes[cur.bucket];
        let want = self.batch_lens[cur.bucket];
        let first_index = cur.global;
        let mut flat = Vec::with_capacity(want * k);
        let mut produced = 0usize;
        loop {
            let combo = cur.next.as_mut().expect("cursor positioned");
            // A combination ending at `n - 1` is the last extension of its
            // (k−1)-prefix: stopping the batch only there keeps every
            // subtree of the prefix trie on a single worker, so its prefix
            // cache sees all the reuse (the overshoot past `want` is at
            // most `n − 1` combinations).
            let closes_subtree = k < 2 || combo[k - 1] == self.n - 1;
            flat.extend_from_slice(combo);
            produced += 1;
            if !next_combination(combo, self.n) {
                cur.next = None;
                cur.bucket += 1;
                break;
            }
            if produced >= want && closes_subtree {
                break;
            }
        }
        cur.global += produced as u64;
        Some(Batch {
            k,
            first_index,
            flat,
        })
    }
}

/// Frontier and counters persisted by a checkpoint, behind one lock so
/// every snapshot is internally consistent (a range is never visible as
/// completed without the combinations counted inside it).
#[derive(Default)]
struct Progress {
    completed: RangeSet,
    combinations: u64,
    pruned: u64,
}

/// Shared checkpointing state for one run.
struct CheckpointShared {
    config: CheckpointConfig,
    fingerprint: String,
    property: String,
    progress: Mutex<Progress>,
    last_write: Mutex<Instant>,
    /// Quarantines already resolved by an earlier (interrupted) run's
    /// rescue pass, carried through every sweep-time snapshot so a second
    /// interruption does not lose them. The current run's own rescue pass
    /// appends to a separate list and writes via [`Self::write_snapshot`].
    carried_rescued: Vec<Quarantined>,
}

impl CheckpointShared {
    /// Writes a checkpoint if at least `config.every` has elapsed since the
    /// previous one. Lock order matters for snapshot consistency: workers
    /// push evidence (candidates / skipped) *before* marking the containing
    /// batch complete, so reading `progress` first guarantees any range seen
    /// as completed already has its evidence in the lists read afterwards.
    fn maybe_write(
        &self,
        candidates: &Mutex<Vec<Candidate>>,
        skipped: &Mutex<Vec<Quarantined>>,
        observer: Option<&dyn ProgressObserver>,
    ) {
        {
            let mut last = self.last_write.lock().expect("checkpoint clock poisoned");
            if last.elapsed() < self.config.every {
                return;
            }
            *last = Instant::now();
        }
        self.write(candidates, skipped, &self.carried_rescued, observer);
    }

    /// Unconditionally writes a checkpoint (best-effort: an I/O failure of a
    /// periodic write must not abort the verification it is backing up).
    fn write(
        &self,
        candidates: &Mutex<Vec<Candidate>>,
        skipped: &Mutex<Vec<Quarantined>>,
        rescued: &[Quarantined],
        observer: Option<&dyn ProgressObserver>,
    ) {
        // Progress first, evidence second — see `maybe_write`.
        let (completed, combinations, pruned) = {
            let p = self.progress.lock().expect("progress poisoned");
            (p.completed.clone(), p.combinations, p.pruned)
        };
        let cands = candidates
            .lock()
            .expect("candidates poisoned")
            .iter()
            .map(|(g, idxs, _)| (*g, idxs.clone()))
            .collect();
        let skips = skipped.lock().expect("skipped poisoned").clone();
        self.emit(
            completed,
            combinations,
            pruned,
            cands,
            skips,
            rescued,
            observer,
        );
    }

    /// Snapshot-based variant for the (single-threaded) rescue pass, where
    /// the evidence lists are plain vectors again and the frontier is
    /// static.
    fn write_snapshot(
        &self,
        candidates: &[(u64, Vec<usize>)],
        skipped: &[Quarantined],
        rescued: &[Quarantined],
        observer: Option<&dyn ProgressObserver>,
    ) {
        let (completed, combinations, pruned) = {
            let p = self.progress.lock().expect("progress poisoned");
            (p.completed.clone(), p.combinations, p.pruned)
        };
        self.emit(
            completed,
            combinations,
            pruned,
            candidates.to_vec(),
            skipped.to_vec(),
            rescued,
            observer,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        completed: RangeSet,
        combinations: u64,
        pruned: u64,
        candidates: Vec<(u64, Vec<usize>)>,
        skipped: Vec<Quarantined>,
        rescued: &[Quarantined],
        observer: Option<&dyn ProgressObserver>,
    ) {
        let ck = Checkpoint {
            fingerprint: self.fingerprint.clone(),
            property: self.property.clone(),
            combinations,
            pruned,
            completed,
            candidates,
            skipped,
            rescued: rescued.to_vec(),
        };
        if crate::iofs::atomic_replace(
            &*self.config.fs,
            &self.config.path,
            checkpoint::render(&ck).as_bytes(),
        )
        .is_ok()
        {
            if let Some(obs) = observer {
                obs.checkpoint_written(&self.config.path, combinations);
            }
            crate::fault::on_checkpoint_written();
        }
    }
}

/// A violation candidate: global index, site indices, and the witness —
/// `None` for candidates seeded from a checkpoint, whose witness is
/// recomputed only if they win the minimal-index selection.
type Candidate = (u64, Vec<usize>, Option<Witness>);

/// A quarantined combination: global index, site indices, reason.
type Quarantined = (u64, Vec<usize>, IncompleteReason);

/// Advances `idxs` to the next `k`-combination of `0..n` in lexicographic
/// order; returns `false` when `idxs` was the last one.
fn next_combination(idxs: &mut [usize], n: usize) -> bool {
    let k = idxs.len();
    let mut i = k;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        if idxs[i] != i + n - k {
            break;
        }
    }
    idxs[i] += 1;
    for j in i + 1..k {
        idxs[j] = idxs[j - 1] + 1;
    }
    true
}

/// Runs the batched enumeration with `threads` workers on the calling
/// thread plus `threads - 1` scoped worker threads. `verifier` doubles as
/// worker 0's engine (its unfolding is reused across runs); the other
/// workers build their own `Verifier` from the shared netlist, since the
/// decision-diagram managers are single-threaded by design.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    verifier: &mut Verifier,
    property: Property,
    options: &VerifyOptions,
    threads: usize,
    observer: Option<&Arc<dyn ProgressObserver>>,
    setup: SetupTimings,
    ckpt: Option<&CheckpointConfig>,
    resume: Option<ResumeState>,
    rescue: &RescueConfig,
    interrupt: Option<&Arc<AtomicBool>>,
) -> Verdict {
    crate::isolate::install_quiet_hook();
    let start = Instant::now();
    let threads = threads.max(1);

    if options.presift {
        verifier.apply_presift();
    }
    // One runtime backend per run: on `Backend::Shared` this is the single
    // concurrent store every worker interns into; on `Backend::Private`
    // the factory hands each worker its own managers as before.
    let dd = Verifier::runtime_backend(options);
    let dd: &dyn DdBackend = dd.as_ref();

    let t = Instant::now();
    let mut state0 = verifier.begin_enumeration_with(property, options, dd);
    let extract_time = t.elapsed();

    let n = state0.sites.len();
    let max_k = (property.order() as usize).min(n);
    let sizes: Vec<usize> = if options.largest_first {
        (1..=max_k).rev().collect()
    } else {
        (1..=max_k).collect()
    };
    let buckets: Vec<(usize, u64)> = sizes.iter().map(|&k| (k, binomial(n, k))).collect();
    let total = buckets
        .iter()
        .fold(0u64, |acc, &(_, c)| acc.saturating_add(c));

    if let Some(obs) = observer {
        obs.run_started(n, total, &buckets);
        obs.phase_timing(EnginePhase::Validate, setup.validate);
        obs.phase_timing(EnginePhase::Unfold, setup.unfold);
        obs.phase_timing(EnginePhase::ExtractSites, extract_time);
    }

    let queue = BatchQueue::new(n, sizes, threads, interrupt.cloned());
    let enum_start = Instant::now();

    // Seed shared evidence from the resume state (if any); the done-set of
    // completed ranges lets workers skip already-checked combinations.
    let resume = resume.unwrap_or_default();
    let resumed_combinations = resume.combinations;
    let resumed_pruned = resume.pruned;
    let done: Option<&RangeSet> = if resume.completed.is_empty() {
        None
    } else {
        Some(&resume.completed)
    };
    let candidates: Mutex<Vec<Candidate>> = Mutex::new(
        resume
            .candidates
            .iter()
            .map(|(g, idxs)| (*g, idxs.clone(), None))
            .collect(),
    );
    for &(g, _) in &resume.candidates {
        // A seeded candidate cancels everything past it, exactly as a live
        // violation would.
        queue.record_violation(g);
    }
    let skipped: Mutex<Vec<Quarantined>> = Mutex::new(resume.skipped.clone());

    let ck_shared: Option<CheckpointShared> = ckpt.map(|cfg| CheckpointShared {
        config: cfg.clone(),
        fingerprint: checkpoint::fingerprint(verifier.netlist(), property, options),
        property: property.to_string(),
        progress: Mutex::new(Progress {
            completed: resume.completed.clone(),
            combinations: resumed_combinations,
            pruned: resumed_pruned,
        }),
        last_write: Mutex::new(Instant::now()),
        carried_rescued: resume.rescued.clone(),
    });

    let shared: &Verifier = verifier;
    let netlist: &Netlist = shared.netlist();
    let obs_dyn: Option<&dyn ProgressObserver> = observer.map(|o| o.as_ref());
    let ck_ref = ck_shared.as_ref();
    let mut lost_workers: u64 = 0;
    let mut worker_stats: Vec<CheckStats> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..threads)
            .map(|wid| {
                let queue = &queue;
                let candidates = &candidates;
                let skipped = &skipped;
                // The whole worker body sits behind a `catch_unwind`: the
                // per-combination boundary in `worker_loop` already converts
                // engine panics into quarantines, so anything escaping here
                // (worker setup, an injected worker loss, a scheduler bug)
                // kills only this worker. Siblings keep draining the queue
                // and the run degrades to Inconclusive(WorkerFailure)
                // instead of aborting.
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        crate::fault::maybe_lose_worker(wid);
                        let mut worker = Verifier::new(netlist).expect("validated in Session::new");
                        if options.presift {
                            // Sifting is deterministic, so every worker lands
                            // on the same order (and site list) as worker 0.
                            worker.apply_presift();
                        }
                        let mut state = worker.begin_enumeration_with(property, options, dd);
                        debug_assert_eq!(state.sites.len(), n, "site extraction is deterministic");
                        worker_loop(
                            wid, &worker, &mut state, queue, property, options, dd, enum_start,
                            obs_dyn, candidates, skipped, done, ck_ref,
                        )
                    }))
                    .ok()
                })
            })
            .collect();
        let mine = catch_unwind(AssertUnwindSafe(|| {
            crate::fault::maybe_lose_worker(0);
            worker_loop(
                0,
                shared,
                &mut state0,
                &queue,
                property,
                options,
                dd,
                enum_start,
                obs_dyn,
                &candidates,
                &skipped,
                done,
                ck_ref,
            )
        }))
        .ok();
        match mine {
            Some(s) => worker_stats.push(s),
            None => lost_workers += 1,
        }
        for h in handles {
            // `join` cannot panic — the closure catches its own unwinds —
            // but a lost worker surfaces as `None` either way.
            match h.join().ok().flatten() {
                Some(s) => worker_stats.push(s),
                None => lost_workers += 1,
            }
        }
    });
    let enum_time = enum_start.elapsed();
    verifier.end_enumeration();

    let mut stats: CheckStats = worker_stats.drain(..).sum();
    stats.worker_failures += lost_workers;
    stats.combinations += resumed_combinations;
    stats.pruned += resumed_pruned;
    stats.interrupted |= queue.was_cut();

    // Quarantines an earlier (interrupted) run's rescue pass already
    // resolved stay resolved; their ladder ran in that process and is not
    // replayed here.
    let mut rescued: Vec<Quarantined> = resume.rescued.clone();

    // Post-sweep flush: even a finished run leaves a coherent frontier
    // file, so a later resume of a completed sweep is a cheap no-op — and
    // for a graceful shutdown this write *is* the flush the signal handler
    // promises.
    if let Some(ck) = ck_ref {
        ck.write(&candidates, &skipped, &rescued, obs_dyn);
    }

    let mut cand_list: Vec<Candidate> = candidates.into_inner().expect("candidates poisoned");
    let mut raw_skipped: Vec<Quarantined> = skipped.into_inner().expect("skipped poisoned");
    raw_skipped.sort_by_key(|&(g, _, _)| g);
    raw_skipped.dedup_by_key(|&mut (g, _, _)| g);

    // Rescue pass: serial, on this thread, in ascending quarantine order.
    // The escalation ladder is a pure function of (options, rescue config),
    // so the pass is deterministic no matter how many workers the sweep
    // used. Skipped entirely after a timeout or an interrupt — both mean
    // the sweep itself is incomplete and rescue could not upgrade the
    // verdict anyway.
    let mut records: Vec<RescuedCombination> = rescued
        .iter()
        .map(|(g, idxs, reason)| RescuedCombination {
            index: *g,
            combination: idxs
                .iter()
                .map(|&i| state0.sites[i].probe.clone())
                .collect(),
            reason: *reason,
            attempts: Vec::new(),
            resolution: RescueResolution::Clean,
        })
        .collect();
    let can_rescue =
        rescue.enabled && !raw_skipped.is_empty() && !stats.timed_out && !stats.interrupted;
    if can_rescue {
        let todo = std::mem::take(&mut raw_skipped);
        if let Some(obs) = observer {
            obs.rescue_started(todo.len());
        }
        // Only quarantines at or below the minimal violation index can
        // change the verdict: anything past it is outranked by the witness
        // in `Verdict::conclude`, exactly as the sweep's cancellation bound
        // skips combinations past a found violation. A rescued violation
        // lowers the bound the same way.
        let mut cutoff: Option<u64> = cand_list.iter().map(|&(g, _, _)| g).min();
        for (i, (g, idxs, reason)) in todo.iter().enumerate() {
            // A kill or deadline landing mid-rescue drains like one landing
            // mid-sweep: the unprocessed tail (including this entry) stays
            // skipped, and the per-resolution snapshots already written make
            // the run resumable from exactly this point.
            if crate::shutdown::requested() || interrupt.is_some_and(|t| t.load(Ordering::Relaxed))
            {
                raw_skipped.push((*g, idxs.clone(), *reason));
                raw_skipped.extend_from_slice(&todo[i + 1..]);
                stats.interrupted = true;
                break;
            }
            if cutoff.is_some_and(|c| *g > c) {
                raw_skipped.push((*g, idxs.clone(), *reason));
                continue;
            }
            let rec = crate::recover::rescue_one(
                verifier,
                property,
                options,
                rescue,
                &state0.sites,
                *g,
                idxs,
                *reason,
                obs_dyn,
            );
            match rec.resolution {
                RescueResolution::Clean => rescued.push((*g, idxs.clone(), *reason)),
                RescueResolution::Violated => {
                    // Witness recomputed below only if this index wins the
                    // minimal-index selection — with the run's own engine
                    // and no budget, byte-identical to a sweep-found one.
                    cand_list.push((*g, idxs.clone(), None));
                    cutoff = Some(cutoff.map_or(*g, |c| c.min(*g)));
                }
                RescueResolution::Unresolved => raw_skipped.push((*g, idxs.clone(), *reason)),
            }
            records.push(rec);
            // Persist every resolution so a kill mid-rescue resumes without
            // replaying healed combinations; the unprocessed tail goes back
            // into the snapshot as still-skipped.
            if let Some(ck) = ck_ref {
                let cands: Vec<(u64, Vec<usize>)> = cand_list
                    .iter()
                    .map(|(g, idxs, _)| (*g, idxs.clone()))
                    .collect();
                let mut skips = raw_skipped.clone();
                skips.extend_from_slice(&todo[i + 1..]);
                skips.sort_by_key(|&(g, _, _)| g);
                ck.write_snapshot(&cands, &skips, &rescued, obs_dyn);
            }
        }
        // The skipped counter mirrors the surviving quarantine list (fresh
        // sweep quarantines were counted by workers; rescue just resolved
        // some of them).
        stats.skipped = raw_skipped.len() as u64;
    }
    let recovery: Option<RecoveryReport> = if can_rescue || !records.is_empty() {
        records.sort_by_key(|r| r.index);
        let resolved = records
            .iter()
            .filter(|r| r.resolution != RescueResolution::Unresolved)
            .count();
        let report = RecoveryReport {
            attempted: records.len(),
            resolved,
            unresolved: records.len() - resolved,
            combinations: records,
        };
        if can_rescue {
            if let Some(obs) = observer {
                obs.rescue_finished(&report);
            }
        }
        Some(report)
    } else {
        None
    };

    let winner: Option<(u64, Witness)> = {
        cand_list.sort_by_key(|&(g, _, _)| g);
        cand_list.into_iter().next().map(|(g, idxs, w)| {
            let w = w.unwrap_or_else(|| recompute_witness(verifier, property, options, &idxs));
            (g, w)
        })
    };
    // Workers stopped by cancellation (a witness exists) are complete for
    // our purposes; only a time-limit stop on a clean run is partial.
    stats.timed_out = stats.timed_out && winner.is_none();
    stats.total_time = start.elapsed();

    raw_skipped.sort_by_key(|&(g, _, _)| g);
    let skipped: Vec<SkippedCombination> = raw_skipped
        .into_iter()
        .map(|(index, idxs, reason)| SkippedCombination {
            index,
            combination: idxs
                .iter()
                .map(|&i| state0.sites[i].probe.clone())
                .collect(),
            reason,
        })
        .collect();

    if let Some(obs) = observer {
        obs.phase_timing(EnginePhase::Enumerate, enum_time);
        obs.phase_timing(EnginePhase::Convolution, stats.convolution_time);
        obs.phase_timing(EnginePhase::Verification, stats.verification_time);
        obs.cache_stats(
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions,
            stats.cache_peak_bytes,
        );
        obs.dd_cache_stats(
            stats.dd_cache_hits,
            stats.dd_cache_misses,
            stats.dd_cache_evictions,
            stats.dd_cache_peak_bytes,
        );
        obs.run_finished(&stats);
    }

    let mut verdict = Verdict::conclude(property, winner.map(|(_, w)| w), skipped, stats);
    verdict.recovery = recovery;
    verdict
}

/// Recomputes the witness of a checkpointed candidate. Deterministic: the
/// candidate's site indices identify the combination, and the engine's
/// verdict for one combination is a pure function of netlist + property.
/// Budget and prefilter are disabled — the combination already proved it
/// violates, so capacity concessions must not re-quarantine it.
fn recompute_witness(
    verifier: &Verifier,
    property: Property,
    options: &VerifyOptions,
    idxs: &[usize],
) -> Witness {
    let mut opts = options.clone();
    opts.node_budget = None;
    opts.prefilter = false;
    let mut state = verifier.begin_enumeration(property, &opts);
    let mut stats = CheckStats::default();
    match verifier.check_indices(&mut state, property, false, idxs, &mut stats) {
        ComboStep::Violation(w) => w,
        _ => unreachable!(
            "checkpointed candidate no longer violates — checkpoint does not \
             match this netlist/property (fingerprint collision?)"
        ),
    }
}

/// One worker: claim batches until the queue dries up. Combination
/// counting, arena collection cadence, and the per-combination time-limit
/// check replicate the serial enumeration exactly, so a one-thread
/// scheduler run produces the same counters as `Verifier::check`.
///
/// Every combination runs behind the [`crate::isolate`] boundary: a panic
/// or budget blow-out quarantines that one combination (pushed onto
/// `skipped`) and the sweep continues. Batches that ran to their end —
/// normally or cut short by the cancellation bound, but *not* by a
/// hard stop — are recorded in the checkpoint frontier: cancellation-cut
/// combinations all sit at or past a recorded violation index, so a resume
/// can never lose a minimal witness to them.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    wid: usize,
    verifier: &Verifier,
    state: &mut EnumState,
    queue: &BatchQueue,
    property: Property,
    options: &VerifyOptions,
    dd: &dyn DdBackend,
    run_start: Instant,
    observer: Option<&dyn ProgressObserver>,
    candidates: &Mutex<Vec<Candidate>>,
    skipped: &Mutex<Vec<Quarantined>>,
    done: Option<&RangeSet>,
    ckpt: Option<&CheckpointShared>,
) -> CheckStats {
    let worker_start = Instant::now();
    let mut stats = CheckStats::default();
    'claim: while let Some(batch) = queue.next_batch() {
        if let Some(obs) = observer {
            obs.batch_claimed(wid, batch.k, batch.first_index, batch.len());
        }
        let checked0 = stats.combinations;
        let pruned0 = stats.pruned;
        for (i, idxs) in batch.combos().enumerate() {
            let index = batch.first_index + i as u64;
            // Later combinations in the batch only have larger indices, so
            // once the cancellation bound is crossed the rest can be
            // dropped wholesale.
            if index >= queue.stop_before() {
                break;
            }
            if queue.hard_stopped() {
                break 'claim;
            }
            // Already covered by the resumed frontier: the combination was
            // checked (and counted) by the interrupted run.
            if done.is_some_and(|d| d.contains(index)) {
                continue;
            }
            stats.combinations += 1;
            if stats.combinations % 256 == 1 {
                state.maybe_collect();
            }
            if let Some(limit) = options.time_limit {
                if run_start.elapsed() > limit {
                    stats.timed_out = true;
                    queue.hard_stop();
                    break 'claim;
                }
            }
            match crate::isolate::check_isolated(
                verifier, state, property, options, dd, index, idxs, &mut stats,
            ) {
                Ok(ComboStep::Clean) => {}
                Ok(ComboStep::Pruned) => {
                    if let Some(obs) = observer {
                        obs.combination_pruned(wid, index);
                    }
                }
                Ok(ComboStep::Violation(witness)) => {
                    queue.record_violation(index);
                    if let Some(obs) = observer {
                        obs.violation_found(wid, index, &witness);
                    }
                    candidates.lock().expect("candidates poisoned").push((
                        index,
                        idxs.to_vec(),
                        Some(witness),
                    ));
                }
                Err(reason) => {
                    if let Some(obs) = observer {
                        obs.combination_quarantined(wid, index, reason);
                    }
                    skipped
                        .lock()
                        .expect("skipped poisoned")
                        .push((index, idxs.to_vec(), reason));
                }
            }
        }
        if let Some(obs) = observer {
            obs.batch_finished(wid, stats.combinations - checked0, stats.pruned - pruned0);
        }
        // This point is only reached when the batch ran to its end (a hard
        // stop breaks out of `'claim` above), so the batch's whole index
        // range — including any cancellation-cut tail, see the function
        // docs — joins the checkpoint frontier.
        if let Some(ck) = ckpt {
            {
                let mut p = ck.progress.lock().expect("progress poisoned");
                p.completed
                    .insert(batch.first_index, batch.first_index + batch.len() as u64);
                p.combinations += stats.combinations - checked0;
                p.pruned += stats.pruned - pruned0;
            }
            ck.maybe_write(candidates, skipped, observer);
        }
    }
    state.finish(&mut stats);
    stats.total_time = worker_start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(33, 2), 528);
        assert_eq!(binomial(128, 64), u64::MAX); // saturates
    }

    #[test]
    fn successor_walks_lexicographic_order() {
        let mut c = vec![0, 1, 2];
        let mut seen = vec![c.clone()];
        while next_combination(&mut c, 5) {
            seen.push(c.clone());
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], [0, 1, 2]);
        assert_eq!(seen[1], [0, 1, 3]);
        assert_eq!(seen[9], [2, 3, 4]);
    }

    #[test]
    fn queue_dispenses_every_combination_once_in_order() {
        let queue = BatchQueue::new(6, vec![3, 2, 1], 2, None);
        let mut indices = Vec::new();
        let mut combos = Vec::new();
        while let Some(batch) = queue.next_batch() {
            for (i, c) in batch.combos().enumerate() {
                indices.push(batch.first_index + i as u64);
                combos.push((batch.k, c.to_vec()));
            }
        }
        let expect_total = binomial(6, 3) + binomial(6, 2) + binomial(6, 1);
        assert_eq!(indices.len() as u64, expect_total);
        // Global indices are consecutive from zero — the serial order.
        assert_eq!(indices, (0..expect_total).collect::<Vec<_>>());
        // Bucket boundaries respected: all k=3 first, then k=2, then k=1.
        let ks: Vec<usize> = combos.iter().map(|(k, _)| *k).collect();
        let mut sorted = ks.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(ks, sorted);
        // First and last combination of the first bucket.
        assert_eq!(combos[0].1, [0, 1, 2]);
        assert_eq!(combos[(binomial(6, 3) - 1) as usize].1, [3, 4, 5]);
    }

    #[test]
    fn queue_respects_stop_before() {
        let queue = BatchQueue::new(6, vec![2], 1, None);
        queue.record_violation(3);
        let mut count = 0u64;
        while let Some(batch) = queue.next_batch() {
            count += batch.len() as u64;
        }
        // The queue stops issuing once the cursor crosses the bound; at
        // most one in-flight batch straddles it.
        assert!(count < binomial(6, 2));
        queue.record_violation(0);
        assert!(queue.next_batch().is_none());
    }

    #[test]
    fn hard_stop_drains_the_queue() {
        let queue = BatchQueue::new(10, vec![2], 4, None);
        assert!(queue.next_batch().is_some());
        queue.hard_stop();
        assert!(queue.next_batch().is_none());
    }

    #[test]
    fn batches_end_on_subtree_boundaries() {
        // C(9,3) = 84 with threads = 2 gives a nominal batch length of 2,
        // so nearly every batch must be extended to its subtree boundary.
        let queue = BatchQueue::new(9, vec![3], 2, None);
        let mut total = 0u64;
        while let Some(batch) = queue.next_batch() {
            let last = batch.flat.chunks_exact(batch.k).last().expect("non-empty");
            assert_eq!(last[batch.k - 1], 8, "batch ends mid-subtree: {last:?}");
            total += batch.len() as u64;
        }
        assert_eq!(total, binomial(9, 3));
        // Size-1 buckets have no prefix to align on.
        let queue = BatchQueue::new(9, vec![1], 2, None);
        let mut total = 0u64;
        while let Some(batch) = queue.next_batch() {
            total += batch.len() as u64;
        }
        assert_eq!(total, 9);
    }

    #[test]
    fn batch_lengths_are_positive_and_bounded() {
        for threads in [1, 4, 64] {
            let queue = BatchQueue::new(40, vec![3, 2, 1], threads, None);
            for len in &queue.batch_lens {
                assert!((1..=1024).contains(len));
            }
        }
    }
}
