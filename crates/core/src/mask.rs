//! Spectral coordinates and the input-variable map.
//!
//! A spectral coordinate (the paper's `(α, ρ)` pair) selects an XOR
//! combination of input variables; [`Mask`] packs one into a `u128` whose bit
//! `i` corresponds to BDD variable `i`, i.e. the `i`-th declared input of the
//! netlist. [`VarMap`] records which bit positions are shares of which
//! secret, randoms, or publics — everything the non-interference predicates
//! need to classify a coordinate.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor};

use walshcheck_circuit::netlist::{InputRole, Netlist, SecretId};
use walshcheck_dd::var::{VarId, VarSet};

/// A spectral coordinate: an XOR selection of input variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mask(pub u128);

impl Mask {
    /// The empty (zero) coordinate.
    pub const ZERO: Mask = Mask(0);

    /// Whether no variable is selected.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether variable position `i` is selected.
    pub fn contains(self, i: usize) -> bool {
        self.0 >> i & 1 == 1
    }

    /// Number of selected variables.
    pub fn weight(self) -> u32 {
        self.0.count_ones()
    }

    /// Number of selected variables also present in `other`.
    pub fn weight_in(self, other: Mask) -> u32 {
        (self.0 & other.0).count_ones()
    }

    /// Whether `self ⊆ other` as variable sets.
    pub fn is_subset(self, other: Mask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates the selected variable positions in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Converts to a [`VarSet`] of BDD variables.
    pub fn to_var_set(self) -> VarSet {
        VarSet(self.0)
    }

    /// Builds a mask from a [`VarSet`].
    pub fn from_var_set(s: VarSet) -> Mask {
        Mask(s.0)
    }
}

impl BitXor for Mask {
    type Output = Mask;
    fn bitxor(self, rhs: Mask) -> Mask {
        Mask(self.0 ^ rhs.0)
    }
}

impl BitOr for Mask {
    type Output = Mask;
    fn bitor(self, rhs: Mask) -> Mask {
        Mask(self.0 | rhs.0)
    }
}

impl BitAnd for Mask {
    type Output = Mask;
    fn bitand(self, rhs: Mask) -> Mask {
        Mask(self.0 & rhs.0)
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:b}", self.0)
    }
}

/// Classification of the input variables of a netlist, fixing the meaning of
/// every [`Mask`] bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarMap {
    /// Total number of input variables (mask width).
    pub num_vars: usize,
    /// For each secret, the mask of its share variable positions.
    pub share_groups: Vec<Mask>,
    /// For each variable position: `(secret, share index)` if it is a share.
    pub share_of: Vec<Option<(SecretId, u32)>>,
    /// Mask of all random variable positions (the `ρ` coordinates).
    pub randoms: Mask,
    /// Mask of all public variable positions.
    pub publics: Mask,
    /// Mask of all share variable positions (union of the groups).
    pub all_shares: Mask,
}

impl VarMap {
    /// Builds the map from a netlist's input declaration.
    pub fn from_netlist(netlist: &Netlist) -> VarMap {
        let num_vars = netlist.inputs.len();
        let mut share_groups = vec![Mask::ZERO; netlist.num_secrets()];
        let mut share_of = vec![None; num_vars];
        let mut randoms = Mask::ZERO;
        let mut publics = Mask::ZERO;
        for (pos, &(_, role)) in netlist.inputs.iter().enumerate() {
            match role {
                InputRole::Share { secret, index } => {
                    share_groups[secret.0 as usize].0 |= 1 << pos;
                    share_of[pos] = Some((secret, index));
                }
                InputRole::Random => randoms.0 |= 1 << pos,
                InputRole::Public => publics.0 |= 1 << pos,
            }
        }
        let all_shares = share_groups.iter().fold(Mask::ZERO, |a, &g| a | g);
        VarMap {
            num_vars,
            share_groups,
            share_of,
            randoms,
            publics,
            all_shares,
        }
    }

    /// Number of secrets.
    pub fn num_secrets(&self) -> usize {
        self.share_groups.len()
    }

    /// Number of shares of `secret`.
    pub fn shares_of(&self, secret: SecretId) -> u32 {
        self.share_groups[secret.0 as usize].weight()
    }

    /// Whether the coordinate has no random component (`ρ = 0`), i.e. is
    /// relevant for the simulatability analysis.
    pub fn rho_is_zero(&self, mask: Mask) -> bool {
        (mask & self.randoms).is_zero()
    }

    /// The share part of a coordinate (`α` restricted to share positions).
    pub fn share_part(&self, mask: Mask) -> Mask {
        mask & self.all_shares
    }

    /// Whether the share part of `mask` is a non-empty union of *complete*
    /// share groups — the critical region of the probing-security check
    /// (such a coordinate correlates a probe combination with the XOR of
    /// one or more raw secrets).
    pub fn is_full_group_union(&self, mask: Mask) -> bool {
        let sp = self.share_part(mask);
        if sp.is_zero() {
            return false;
        }
        for &g in &self.share_groups {
            let inter = sp & g;
            if !inter.is_zero() && inter != g {
                return false;
            }
        }
        true
    }

    /// The set of share indices (column indices in PINI terminology) that
    /// appear in the share part of `mask`, as a bitmask over indices.
    pub fn share_indices(&self, mask: Mask) -> u64 {
        let mut out = 0u64;
        for pos in self.share_part(mask).iter() {
            if let Some((_, index)) = self.share_of[pos] {
                out |= 1 << index;
            }
        }
        out
    }

    /// The BDD variables of the random positions.
    pub fn random_vars(&self) -> VarSet {
        self.randoms.to_var_set()
    }

    /// The BDD variables of secret `secret`'s shares.
    pub fn group_vars(&self, secret: SecretId) -> VarSet {
        self.share_groups[secret.0 as usize].to_var_set()
    }

    /// The variable id of input position `pos`.
    pub fn var(&self, pos: usize) -> VarId {
        VarId(pos as u32)
    }

    /// Re-expresses the map under a variable permutation (`order[i]` = the
    /// new level of old variable `i`, as produced by
    /// [`walshcheck_dd::reorder::sift`]): every mask bit `i` moves to bit
    /// `order[i]`, and the per-position share table is reindexed to match.
    /// Used when a combination is re-checked under a sifted order — the
    /// spectral coordinates must agree with the reordered BDD variables.
    pub fn permuted(&self, order: &[VarId]) -> VarMap {
        assert!(
            order.len() >= self.num_vars,
            "permutation must cover all input variables"
        );
        let remap = |m: Mask| {
            let mut out = Mask::ZERO;
            for i in m.iter() {
                out.0 |= 1 << order[i].0;
            }
            out
        };
        let mut share_of = vec![None; self.num_vars];
        for (i, &s) in self.share_of.iter().enumerate() {
            share_of[order[i].0 as usize] = s;
        }
        VarMap {
            num_vars: self.num_vars,
            share_groups: self.share_groups.iter().map(|&g| remap(g)).collect(),
            share_of,
            randoms: remap(self.randoms),
            publics: remap(self.publics),
            all_shares: remap(self.all_shares),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walshcheck_circuit::builder::NetlistBuilder;

    fn example() -> (Netlist, VarMap) {
        let mut b = NetlistBuilder::new("m");
        let sx = b.secret("x");
        let sy = b.secret("y");
        let x = b.shares(sx, 2);
        let y = b.shares(sy, 2);
        let r = b.random("r");
        let p = b.public_input("clk");
        let _ = p;
        let t1 = b.and(x[0], y[0]);
        let t2 = b.xor(t1, r);
        let t3 = b.xor(t2, x[1]);
        let t4 = b.xor(t3, y[1]);
        let o = b.output("q");
        b.output_share(t4, o, 0);
        let n = b.build().expect("valid");
        let vm = VarMap::from_netlist(&n);
        (n, vm)
    }

    #[test]
    fn mask_basic_ops() {
        let m = Mask(0b1011);
        assert_eq!(m.weight(), 3);
        assert!(m.contains(0));
        assert!(!m.contains(2));
        assert_eq!(m.weight_in(Mask(0b0011)), 2);
        assert!(Mask(0b0010).is_subset(m));
        assert!(!Mask(0b0100).is_subset(m));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!((m ^ Mask(0b0001)).0, 0b1010);
        assert_eq!((m | Mask(0b0100)).0, 0b1111);
        assert_eq!((m & Mask(0b0110)).0, 0b0010);
    }

    #[test]
    fn varmap_classifies_positions() {
        // Input order: x0 x1 y0 y1 r clk → positions 0..6.
        let (_, vm) = example();
        assert_eq!(vm.num_vars, 6);
        assert_eq!(vm.share_groups[0], Mask(0b000011));
        assert_eq!(vm.share_groups[1], Mask(0b001100));
        assert_eq!(vm.randoms, Mask(0b010000));
        assert_eq!(vm.publics, Mask(0b100000));
        assert_eq!(vm.all_shares, Mask(0b001111));
        assert_eq!(vm.share_of[2], Some((SecretId(1), 0)));
        assert_eq!(vm.shares_of(SecretId(0)), 2);
    }

    #[test]
    fn rho_zero_and_share_part() {
        let (_, vm) = example();
        assert!(vm.rho_is_zero(Mask(0b001011)));
        assert!(!vm.rho_is_zero(Mask(0b010001)));
        assert_eq!(vm.share_part(Mask(0b111111)), Mask(0b001111));
    }

    #[test]
    fn full_group_union_detection() {
        let (_, vm) = example();
        // Both shares of x: a full group.
        assert!(vm.is_full_group_union(Mask(0b000011)));
        // Both groups complete.
        assert!(vm.is_full_group_union(Mask(0b001111)));
        // Half of x: not full.
        assert!(!vm.is_full_group_union(Mask(0b000001)));
        // Full x plus half y: not full.
        assert!(!vm.is_full_group_union(Mask(0b000111)));
        // Publics do not matter.
        assert!(vm.is_full_group_union(Mask(0b100011)));
        // Empty share part: not a leak coordinate.
        assert!(!vm.is_full_group_union(Mask(0b100000)));
    }

    #[test]
    fn permuted_map_moves_every_classification() {
        // Reverse the 6 positions: old i → new 5−i.
        let (_, vm) = example();
        let order: Vec<VarId> = (0..6).map(|i| VarId(5 - i)).collect();
        let p = vm.permuted(&order);
        assert_eq!(p.num_vars, 6);
        assert_eq!(p.share_groups[0], Mask(0b110000));
        assert_eq!(p.share_groups[1], Mask(0b001100));
        assert_eq!(p.randoms, Mask(0b000010));
        assert_eq!(p.publics, Mask(0b000001));
        assert_eq!(p.all_shares, Mask(0b111100));
        // share_of[2] was (y, 0) at old position 2 → new position 3.
        assert_eq!(p.share_of[3], Some((SecretId(1), 0)));
        // The identity permutation is a no-op.
        let id: Vec<VarId> = (0..6).map(VarId).collect();
        assert_eq!(vm.permuted(&id), vm);
    }

    #[test]
    fn share_indices_collects_columns() {
        let (_, vm) = example();
        // x0 and y1 → indices {0, 1}.
        assert_eq!(vm.share_indices(Mask(0b001001)), 0b11);
        assert_eq!(vm.share_indices(Mask(0b000001)), 0b01);
        assert_eq!(vm.share_indices(Mask::ZERO), 0);
    }
}
