//! Sparse Walsh-spectrum containers and convolution.
//!
//! A probe combination's correlation-matrix row is the spectrum of the XOR
//! of the selected functions, which equals the *convolution* of the
//! individual spectra (`W_{f⊕g}(α) = Σ_β W_f(β)·W_g(α⊕β)` for normalized
//! coefficients). The paper compares two container choices for this
//! computation:
//!
//! * [`LilSpectrum`] — sorted list of `(coordinate, coefficient)` pairs, the
//!   "list of lists" structure of the prior exact tool (reference \[11\]);
//! * [`MapSpectrum`] — a hash map (the Rust analogue of C++
//!   `unordered_map`, using the kernel's fast multiplicative hasher — see
//!   [`walshcheck_dd::fasthash`]), the container of the paper's MAP / MAPI
//!   methods with O(1) average insertion.
//!
//! Both implement [`Spectrum`] and are interchangeable in the engines; the
//! benchmark harness measures the difference.

use walshcheck_dd::dyadic::Dyadic;
use walshcheck_dd::FastMap;

use crate::mask::Mask;

/// Common interface of sparse spectrum containers.
pub trait Spectrum: Clone {
    /// Builds a spectrum from a coordinate → coefficient map (zeros are
    /// dropped).
    fn from_map(map: &FastMap<u128, Dyadic>) -> Self;

    /// The convolution `Σ_β self(β)·other(α⊕β)` — the spectrum of the XOR
    /// of the underlying functions.
    fn convolve(&self, other: &Self) -> Self;

    /// [`Spectrum::convolve`] with an optional dense fast path: when the
    /// union support of both operands spans at most `dense_cut` variables,
    /// an implementation may switch to an exact dense kernel (via the
    /// convolution theorem `conv = 2⁻ˢ·H((Ha)∘(Hb))`). The result is
    /// **exactly** the same spectrum either way — dyadic arithmetic is
    /// exact, so `dense_cut` is a pure speed knob and can never affect
    /// verdicts or witnesses. `dense_cut == 0` disables the fast path. The
    /// default just forwards to [`Spectrum::convolve`]; `LilSpectrum`
    /// deliberately keeps it, staying the paper's untouched baseline.
    fn convolve_opt(&self, other: &Self, dense_cut: u32) -> Self {
        let _ = dense_cut;
        self.convolve(other)
    }

    /// Number of non-zero entries.
    fn len(&self) -> usize;

    /// Whether the spectrum is identically zero.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f` for every non-zero entry.
    fn for_each(&self, f: &mut dyn FnMut(Mask, Dyadic));

    /// The entry with the smallest coordinate satisfying `pred`, if any.
    ///
    /// Taking the minimum (rather than the first match seen) keeps the
    /// reported witness mask independent of the container's iteration
    /// order — `MapSpectrum`'s hash map iterates in a per-instance random
    /// order, and the full scan happens regardless since `for_each` has no
    /// early exit.
    fn find(&self, pred: &dyn Fn(Mask, Dyadic) -> bool) -> Option<(Mask, Dyadic)> {
        let mut found: Option<(Mask, Dyadic)> = None;
        self.for_each(&mut |m, c| {
            if found.is_none_or(|(best, _)| m < best) && pred(m, c) {
                found = Some((m, c));
            }
        });
        found
    }

    /// Union of the coordinates of all entries accepted by `relevant`
    /// (typically "ρ = 0").
    fn support_union(&self, relevant: &dyn Fn(Mask) -> bool) -> Mask {
        let mut acc = Mask::ZERO;
        self.for_each(&mut |m, _| {
            if relevant(m) {
                acc = acc | m;
            }
        });
        acc
    }

    /// The coefficient at `mask` (zero if absent).
    fn coefficient(&self, mask: Mask) -> Dyadic;

    /// Estimated heap footprint in bytes, used by the prefix-cache budget
    /// accounting. An estimate (container overhead is approximated), not an
    /// exact measure.
    fn heap_bytes(&self) -> usize;
}

/// Hash-map backed spectrum (the paper's MAP/MAPI container).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapSpectrum {
    entries: FastMap<u128, Dyadic>,
}

impl MapSpectrum {
    /// The spectrum of the constant-zero function (`W(0) = 1`).
    pub fn one() -> Self {
        MapSpectrum {
            entries: [(0, Dyadic::ONE)].into_iter().collect(),
        }
    }

    /// Direct access to the underlying map.
    pub fn entries(&self) -> &FastMap<u128, Dyadic> {
        &self.entries
    }

    /// Attempts the dense convolution-theorem kernel: compress both
    /// operands onto the union support (`s` variables), transform with
    /// exact integer butterflies (common-exponent `i64` mantissas),
    /// multiply pointwise in `i128`, transform back and re-expand only the
    /// nonzero coefficients. Returns `None` — falling back to the hash
    /// path — when the support is too wide, the integer representation
    /// would overflow, or the O(s·2ˢ) dense work would exceed the O(la·lb)
    /// hash work.
    fn try_dense_convolve(&self, other: &Self, dense_cut: u32) -> Option<MapSpectrum> {
        let (la, lb) = (self.entries.len(), other.entries.len());
        if dense_cut == 0 || la == 0 || lb == 0 {
            return None;
        }
        let mut union: u128 = 0;
        for &k in self.entries.keys() {
            union |= k;
        }
        for &k in other.entries.keys() {
            union |= k;
        }
        let s = union.count_ones();
        // Hard cap independent of the knob: the two scratch tables are
        // 2ˢ·(8+16) bytes.
        if s > dense_cut || s > 24 {
            return None;
        }
        // Cost heuristic, calibrated by microbenchmark: the dense side
        // costs ~1.5ns per butterfly add over ~3 passes of s·2ˢ plus table
        // allocation, the hash side ~20-40ns per la·lb update; measured
        // break-even sits at la·lb ≈ s·2ˢ/2 across s ∈ [6, 12]. Both paths
        // yield the identical spectrum, so this choice is a pure time
        // trade.
        if (s as u128) << s > 2 * (la as u128) * (lb as u128) {
            return None;
        }
        let bits: Vec<u32> = (0..128).filter(|&i| union >> i & 1 == 1).collect();
        let compress = |k: u128| -> usize {
            let mut idx = 0usize;
            for (i, &b) in bits.iter().enumerate() {
                idx |= ((k >> b & 1) as usize) << i;
            }
            idx
        };
        // Integer mantissas over a per-operand common exponent.
        let pack = |entries: &FastMap<u128, Dyadic>| -> Option<(Vec<i64>, i32, u128)> {
            let e0 = entries.values().map(Dyadic::exponent).min()?;
            let mut v = vec![0i64; 1usize << s];
            let mut sum: u128 = 0;
            for (&k, c) in entries {
                let shift = u32::try_from(c.exponent() - e0).ok()?;
                let m = i64::try_from(c.mantissa()).ok()?;
                if shift > 62 || m.unsigned_abs() > u64::MAX >> 1 >> shift {
                    return None;
                }
                let m = m << shift;
                sum += u128::from(m.unsigned_abs());
                v[compress(k)] = m;
            }
            // Forward-transform intermediates are ±-subset sums, bounded
            // by Σ|m|.
            (sum <= i64::MAX as u128).then_some((v, e0, sum))
        };
        let (mut va, ea, suma) = pack(&self.entries)?;
        let (mut vb, eb, sumb) = pack(&other.entries)?;
        // The inverse transform peaks at 2ˢ·Σ|a|·Σ|b|; keep it inside i128.
        if suma.checked_mul(sumb)? > (i128::MAX as u128) >> s {
            return None;
        }
        dense_wht_i64(&mut va);
        dense_wht_i64(&mut vb);
        let mut prod: Vec<i128> = va
            .iter()
            .zip(&vb)
            .map(|(&a, &b)| i128::from(a) * i128::from(b))
            .collect();
        dense_wht_i128(&mut prod);
        // H·H = 2ˢ·I, so every coefficient is the exact integer convolution
        // scaled by 2ˢ; Dyadic::new renormalizes exactly.
        let scale = ea + eb - s as i32;
        let mut out: FastMap<u128, Dyadic> = FastMap::default();
        for (idx, &c) in prod.iter().enumerate() {
            if c != 0 {
                let mut key = 0u128;
                for (i, &b) in bits.iter().enumerate() {
                    key |= ((idx as u128 >> i) & 1) << b;
                }
                out.insert(key, Dyadic::new(c, scale));
            }
        }
        Some(MapSpectrum { entries: out })
    }
}

/// In-place unnormalized Walsh–Hadamard butterfly over `i64`, manually
/// unrolled pairwise so the inner loop vectorizes (the "SIMD-style" dense
/// kernel — portable, no intrinsics).
fn dense_wht_i64(v: &mut [i64]) {
    let mut h = 1;
    while h < v.len() {
        let mut base = 0;
        while base < v.len() {
            for i in base..base + h {
                let (x, y) = (v[i], v[i + h]);
                v[i] = x + y;
                v[i + h] = x - y;
            }
            base += h * 2;
        }
        h *= 2;
    }
}

/// In-place unnormalized Walsh–Hadamard butterfly over `i128` (the
/// pointwise-product leg, which needs the wider accumulator).
fn dense_wht_i128(v: &mut [i128]) {
    let mut h = 1;
    while h < v.len() {
        let mut base = 0;
        while base < v.len() {
            for i in base..base + h {
                let (x, y) = (v[i], v[i + h]);
                v[i] = x + y;
                v[i + h] = x - y;
            }
            base += h * 2;
        }
        h *= 2;
    }
}

impl Spectrum for MapSpectrum {
    fn from_map(map: &FastMap<u128, Dyadic>) -> Self {
        MapSpectrum {
            entries: map
                .iter()
                .filter(|(_, c)| !c.is_zero())
                .map(|(&k, &c)| (k, c))
                .collect(),
        }
    }

    fn convolve(&self, other: &Self) -> Self {
        // Iterate the smaller operand outside for cache behaviour.
        let (small, large) = if self.entries.len() <= other.entries.len() {
            (&self.entries, &other.entries)
        } else {
            (&other.entries, &self.entries)
        };
        let mut out: FastMap<u128, Dyadic> = FastMap::with_capacity_and_hasher(
            small.len() * large.len() / 2 + 1,
            Default::default(),
        );
        for (&ka, &ca) in small {
            for (&kb, &cb) in large {
                let key = ka ^ kb;
                let prod = ca * cb;
                let slot = out.entry(key).or_insert(Dyadic::ZERO);
                *slot += prod;
            }
        }
        out.retain(|_, c| !c.is_zero());
        MapSpectrum { entries: out }
    }

    fn convolve_opt(&self, other: &Self, dense_cut: u32) -> Self {
        match self.try_dense_convolve(other, dense_cut) {
            Some(r) => r,
            None => self.convolve(other),
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(Mask, Dyadic)) {
        for (&k, &c) in &self.entries {
            f(Mask(k), c);
        }
    }

    fn coefficient(&self, mask: Mask) -> Dyadic {
        self.entries.get(&mask.0).copied().unwrap_or(Dyadic::ZERO)
    }

    fn heap_bytes(&self) -> usize {
        // (u128, Dyadic) payload plus hash-map control bytes and slack.
        self.entries.len() * 48 + 48
    }
}

/// Sorted-list backed spectrum (the "list of lists" baseline of \[11\]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LilSpectrum {
    /// Sorted by coordinate, no zero coefficients.
    entries: Vec<(u128, Dyadic)>,
}

impl LilSpectrum {
    /// The spectrum of the constant-zero function.
    pub fn one() -> Self {
        LilSpectrum {
            entries: vec![(0, Dyadic::ONE)],
        }
    }

    /// The sorted entry list.
    pub fn entries(&self) -> &[(u128, Dyadic)] {
        &self.entries
    }
}

impl Spectrum for LilSpectrum {
    fn from_map(map: &FastMap<u128, Dyadic>) -> Self {
        let mut entries: Vec<(u128, Dyadic)> = map
            .iter()
            .filter(|(_, c)| !c.is_zero())
            .map(|(&k, &c)| (k, c))
            .collect();
        entries.sort_by_key(|&(k, _)| k);
        LilSpectrum { entries }
    }

    fn convolve(&self, other: &Self) -> Self {
        // List processing as in the baseline of [11]: each product term is
        // inserted/updated in a sorted list, paying the linear shuffle cost
        // a list store implies (this is precisely the behaviour the paper's
        // hash-map containers avoid with O(1) average insertion).
        let mut out: Vec<(u128, Dyadic)> = Vec::new();
        for &(ka, ca) in &self.entries {
            for &(kb, cb) in &other.entries {
                let key = ka ^ kb;
                let prod = ca * cb;
                match out.binary_search_by_key(&key, |&(k, _)| k) {
                    Ok(i) => out[i].1 += prod,
                    Err(i) => out.insert(i, (key, prod)),
                }
            }
        }
        out.retain(|(_, c)| !c.is_zero());
        LilSpectrum { entries: out }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(Mask, Dyadic)) {
        for &(k, c) in &self.entries {
            f(Mask(k), c);
        }
    }

    fn coefficient(&self, mask: Mask) -> Dyadic {
        match self.entries.binary_search_by_key(&mask.0, |&(k, _)| k) {
            Ok(i) => self.entries[i].1,
            Err(_) => Dyadic::ZERO,
        }
    }

    fn heap_bytes(&self) -> usize {
        self.entries.len() * 32 + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walshcheck_dd::bdd::BddManager;
    use walshcheck_dd::spectral::{walsh_sparse, SparseWalshCache};
    use walshcheck_dd::var::VarId;

    fn spectra_of(f: walshcheck_dd::bdd::Bdd, m: &BddManager) -> (MapSpectrum, LilSpectrum) {
        let mut cache = SparseWalshCache::new();
        let s = walsh_sparse(m, f, &mut cache);
        (MapSpectrum::from_map(&s), LilSpectrum::from_map(&s))
    }

    #[test]
    fn map_and_lil_agree_on_construction() {
        let mut m = BddManager::new(3);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.and(x, y);
        let (ms, ls) = spectra_of(f, &m);
        assert_eq!(ms.len(), ls.len());
        ms.for_each(&mut |mask, c| assert_eq!(ls.coefficient(mask), c));
    }

    #[test]
    fn convolution_equals_xor_spectrum() {
        let mut m = BddManager::new(4);
        let w = m.var(VarId(0));
        let x = m.var(VarId(1));
        let y = m.var(VarId(2));
        let z = m.var(VarId(3));
        let f = m.and(w, x);
        let g = m.or(y, z);
        let fg = m.xor(f, g);
        let (mf, lf) = spectra_of(f, &m);
        let (mg, lg) = spectra_of(g, &m);
        let (mfg, lfg) = spectra_of(fg, &m);
        let conv_m = mf.convolve(&mg);
        let conv_l = lf.convolve(&lg);
        assert_eq!(conv_m.len(), mfg.len());
        mfg.for_each(&mut |mask, c| {
            assert_eq!(conv_m.coefficient(mask), c, "map conv at {mask}");
            assert_eq!(conv_l.coefficient(mask), c, "lil conv at {mask}");
        });
        assert_eq!(conv_l.entries().len(), lfg.entries().len());
    }

    #[test]
    fn convolution_with_overlapping_supports_cancels() {
        // f ⊕ f = 0, whose spectrum is the unit impulse.
        let mut m = BddManager::new(2);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.and(x, y);
        let (mf, lf) = spectra_of(f, &m);
        let conv_m = mf.convolve(&mf);
        let conv_l = lf.convolve(&lf);
        assert_eq!(conv_m.len(), 1);
        assert_eq!(conv_m.coefficient(Mask::ZERO), Dyadic::ONE);
        assert_eq!(conv_l.len(), 1);
        assert_eq!(conv_l.coefficient(Mask::ZERO), Dyadic::ONE);
    }

    #[test]
    fn unit_spectrum_is_identity() {
        let mut m = BddManager::new(2);
        let x = m.var(VarId(0));
        let (ms, ls) = spectra_of(x, &m);
        let conv = ms.convolve(&MapSpectrum::one());
        assert_eq!(conv, ms);
        let conv = ls.convolve(&LilSpectrum::one());
        assert_eq!(conv.entries(), ls.entries());
    }

    #[test]
    fn support_union_and_find() {
        let mut m = BddManager::new(3);
        let x = m.var(VarId(0));
        let z = m.var(VarId(2));
        let f = m.and(x, z);
        let (ms, _) = spectra_of(f, &m);
        // Entries at 000, 001, 100, 101 → union 101.
        let all = ms.support_union(&|_| true);
        assert_eq!(all, Mask(0b101));
        let none = ms.support_union(&|mask| mask.contains(1));
        assert_eq!(none, Mask::ZERO);
        let hit = ms.find(&|mask, _| mask.weight() == 2);
        assert_eq!(hit.map(|(m, _)| m), Some(Mask(0b101)));
        // With several matches, the smallest coordinate wins — independent
        // of the hash map's iteration order.
        let hit = ms.find(&|mask, _| mask.weight() == 1);
        assert_eq!(hit.map(|(m, _)| m), Some(Mask(0b001)));
    }

    #[test]
    fn dense_convolution_matches_hash_convolution() {
        // Exercise supports up to 7 vars with scattered coordinates and
        // mixed exponents; the dense path must reproduce the hash path's
        // map exactly (same keys, same canonical dyadics).
        let mut m = BddManager::new(7);
        let mut funcs = Vec::new();
        for (i, j, k) in [(0u32, 3u32, 6u32), (1, 2, 4), (0, 5, 6), (2, 3, 5)] {
            let a = m.var(VarId(i));
            let b = m.var(VarId(j));
            let c = m.var(VarId(k));
            let ab = m.and(a, b);
            funcs.push(m.xor(ab, c));
        }
        let mut dense_taken = 0;
        for f in &funcs {
            for g in &funcs {
                let (mf, _) = spectra_of(*f, &m);
                let (mg, _) = spectra_of(*g, &m);
                let hash = mf.convolve(&mg);
                // The cost heuristic may decline tiny pairs; when it takes
                // the dense path the map must match exactly.
                if let Some(dense) = mf.try_dense_convolve(&mg, 12) {
                    dense_taken += 1;
                    assert_eq!(dense, hash);
                }
                // And through the public knob, both settings agree.
                assert_eq!(mf.convolve_opt(&mg, 12), hash);
                assert_eq!(mf.convolve_opt(&mg, 0), hash);
            }
        }
        assert!(dense_taken > 0, "dense kernel never exercised");
        // Degenerate operands fall back gracefully.
        let empty = MapSpectrum::default();
        assert!(empty.try_dense_convolve(&empty, 12).is_none());
        let (mf, _) = spectra_of(funcs[0], &m);
        assert_eq!(empty.convolve_opt(&mf, 12).len(), 0);
    }

    #[test]
    fn parseval_via_for_each() {
        let mut m = BddManager::new(3);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let z = m.var(VarId(2));
        let t = m.or(x, y);
        let f = m.xor(t, z);
        let (ms, _) = spectra_of(f, &m);
        let mut energy = Dyadic::ZERO;
        ms.for_each(&mut |_, c| energy += c * c);
        assert_eq!(energy, Dyadic::ONE);
    }
}
