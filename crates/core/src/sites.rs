//! Probe-site extraction from an unfolded netlist.
//!
//! A *site* is one observation the adversary may buy: either an output share
//! (free for the SNI budget) or an internal probe. Under the glitch-extended
//! model a single internal probe observes several functions (every stable
//! signal in the probed wire's cone); a site therefore carries a *list* of
//! functions.

use std::collections::HashSet;

use walshcheck_circuit::glitch::{observation_sets, ProbeModel};
use walshcheck_circuit::netlist::{Netlist, NetlistError, OutputRole};
use walshcheck_circuit::unfold::Unfolded;
use walshcheck_dd::bdd::Bdd;
use walshcheck_dd::var::VarSet;

use crate::mask::Mask;
use crate::property::ProbeRef;

/// One observation the adversary may select.
#[derive(Debug, Clone)]
pub struct Site {
    /// What is observed (output share or internal wire).
    pub probe: ProbeRef,
    /// The Boolean functions revealed by the observation (one in the
    /// standard model; the stable cone under glitches).
    pub funcs: Vec<Bdd>,
    /// Union of the functional supports of `funcs`, as a spectral mask —
    /// the cheap necessary condition used by the prefilter.
    pub support: Mask,
}

impl Site {
    /// Whether this site is an internal probe (counts into the SNI budget).
    pub fn is_internal(&self) -> bool {
        self.probe.is_internal()
    }
}

/// Options controlling which wires become probe sites.
#[derive(Debug, Clone, Copy)]
pub struct SiteOptions {
    /// Leakage model for internal probes.
    pub probe_model: ProbeModel,
    /// Whether primary input wires are probe sites (probing a share or a
    /// random directly). The maskVerif benchmarks include them.
    pub include_inputs: bool,
    /// Drop internal sites whose observed function set duplicates an
    /// earlier site's (identical BDDs — e.g. buffered copies).
    pub dedup: bool,
}

impl Default for SiteOptions {
    fn default() -> Self {
        SiteOptions {
            probe_model: ProbeModel::Standard,
            include_inputs: true,
            dedup: true,
        }
    }
}

/// Extracts the probe sites of a netlist: one site per output share, then
/// one per probeable wire (inputs first, then cell outputs in id order).
/// Wires carrying output shares are not duplicated as internal sites — the
/// output observation dominates (same functions, stricter budget).
///
/// # Errors
///
/// Fails if the netlist is cyclic (glitch cone analysis needs an order).
pub fn extract_sites(
    netlist: &Netlist,
    unfolded: &Unfolded,
    options: &SiteOptions,
) -> Result<Vec<Site>, NetlistError> {
    let obs = observation_sets(netlist, options.probe_model)?;
    let mut sites = Vec::new();
    let mut output_wires = HashSet::new();

    for &(wire, role) in &netlist.outputs {
        if let OutputRole::Share { output, index } = role {
            output_wires.insert(wire);
            let funcs = vec![unfolded.wire_fn(wire)];
            let support = support_of(unfolded, &funcs);
            sites.push(Site {
                probe: ProbeRef::Output {
                    wire,
                    output,
                    index,
                },
                funcs,
                support,
            });
        }
    }

    let input_wires: HashSet<_> = netlist.inputs.iter().map(|&(w, _)| w).collect();
    let mut seen_funcsets: HashSet<Vec<Bdd>> = HashSet::new();
    #[allow(clippy::needless_range_loop)] // wid indexes obs in lock-step with wire ids
    for wid in 0..netlist.num_wires() {
        let wire = walshcheck_circuit::netlist::WireId(wid as u32);
        if output_wires.contains(&wire) {
            continue;
        }
        if input_wires.contains(&wire) && !options.include_inputs {
            continue;
        }
        let mut funcs: Vec<Bdd> = obs[wid].iter().map(|&w| unfolded.wire_fn(w)).collect();
        funcs.sort();
        funcs.dedup();
        // Constant wires can never leak.
        funcs.retain(|f| !f.is_const());
        if funcs.is_empty() {
            continue;
        }
        if options.dedup && !seen_funcsets.insert(funcs.clone()) {
            continue;
        }
        let support = support_of(unfolded, &funcs);
        sites.push(Site {
            probe: ProbeRef::Internal { wire },
            funcs,
            support,
        });
    }
    Ok(sites)
}

fn support_of(unfolded: &Unfolded, funcs: &[Bdd]) -> Mask {
    let mut acc = VarSet::EMPTY;
    for &f in funcs {
        acc = acc.union(&unfolded.bdds.support(f));
    }
    Mask::from_var_set(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use walshcheck_circuit::builder::NetlistBuilder;
    use walshcheck_circuit::unfold::unfold;

    fn demo() -> (Netlist, Unfolded) {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r");
        let t1 = b.xor(a0, r);
        let t2 = b.buf(t1); // duplicate function of t1
        let q = b.xor(t2, a1);
        let o = b.output("q");
        b.output_share(q, o, 0);
        let n = b.build().expect("valid");
        let u = unfold(&n).expect("acyclic");
        (n, u)
    }

    #[test]
    fn outputs_come_first_and_are_not_doubled() {
        let (n, u) = demo();
        let sites = extract_sites(&n, &u, &SiteOptions::default()).expect("ok");
        assert!(matches!(sites[0].probe, ProbeRef::Output { .. }));
        // Exactly one output site, and its wire is not also an internal site.
        assert_eq!(sites.iter().filter(|s| !s.is_internal()).count(), 1);
        let q = sites[0].probe.wire();
        assert!(!sites.iter().any(|s| s.is_internal() && s.probe.wire() == q));
    }

    #[test]
    fn dedup_drops_buffered_copies() {
        let (n, u) = demo();
        let with = extract_sites(&n, &u, &SiteOptions::default()).expect("ok");
        let without = extract_sites(
            &n,
            &u,
            &SiteOptions {
                dedup: false,
                ..SiteOptions::default()
            },
        )
        .expect("ok");
        assert_eq!(without.len(), with.len() + 1);
    }

    #[test]
    fn include_inputs_toggle() {
        let (n, u) = demo();
        let with = extract_sites(&n, &u, &SiteOptions::default()).expect("ok");
        let without = extract_sites(
            &n,
            &u,
            &SiteOptions {
                include_inputs: false,
                ..SiteOptions::default()
            },
        )
        .expect("ok");
        // 3 input wires disappear.
        assert_eq!(with.len(), without.len() + 3);
    }

    #[test]
    fn glitch_sites_carry_multiple_functions() {
        let (n, u) = demo();
        let sites = extract_sites(
            &n,
            &u,
            &SiteOptions {
                probe_model: ProbeModel::Glitch,
                ..SiteOptions::default()
            },
        )
        .expect("ok");
        let max_funcs = sites.iter().map(|s| s.funcs.len()).max().unwrap();
        assert!(max_funcs >= 2, "glitch cone of t2 observes a0 and r");
    }

    #[test]
    fn supports_are_functional_supports() {
        let (n, u) = demo();
        let sites = extract_sites(&n, &u, &SiteOptions::default()).expect("ok");
        for s in &sites {
            for &f in &s.funcs {
                assert!(Mask::from_var_set(u.bdds.support(f)).is_subset(s.support));
            }
        }
    }
}
