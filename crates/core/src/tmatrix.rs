//! The relation matrix `T(α, ρ)` and its scan predicates.
//!
//! Step (3) of the paper's methodology tests the convolution `W` against a
//! predicate matrix `T(α, ρ)` that is 1 exactly where `W` must vanish for
//! the property to hold (the white areas of the paper's Fig. 2):
//!
//! ```text
//! ∃α. T(α, ρ) ∧ W(α, ρ) ∧ (ρ = 0)
//! ```
//!
//! A [`Region`] is the semantic description of such a forbidden area. It can
//! be evaluated two ways, matching the engine families:
//!
//! * [`Region::matches`] — a per-coordinate predicate, used by the LIL/MAP
//!   engines that scan spectrum entries;
//! * [`Region::to_bdd`] — the `T` matrix as a BDD, conjoined with the
//!   spectrum's non-zero support by the MAPI/FUJITA engines so the decision
//!   diagram machinery answers the existential query.

use std::collections::HashMap;

use walshcheck_circuit::netlist::SecretId;
use walshcheck_dd::bdd::{Bdd, BddManager};
use walshcheck_dd::threshold::{all_zero, at_least, at_least_fns};
use walshcheck_dd::var::VarSet;

use crate::mask::{Mask, VarMap};

/// A forbidden spectral region (where the Walsh matrix must be zero).
///
/// All regions implicitly require `ρ = 0`: coefficients with a random
/// component average out over the fresh randomness and never witness a
/// violation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Region {
    /// Probing security: the share part is a non-empty union of complete
    /// share groups (the coordinate correlates with raw secrets).
    Probing,
    /// NI/SNI: some secret has more than `budget` of its shares selected.
    ShareBudget {
        /// Maximum number of shares of each secret a simulator may use.
        budget: u32,
    },
    /// PINI: more than `extra` share *indices* outside `allowed_indices`
    /// are selected (bit `j` of `allowed_indices` = index `j` is free).
    PiniBudget {
        /// Bitmask of share indices already granted by observed outputs.
        allowed_indices: u64,
        /// Number of additional indices the internal probes may grant.
        extra: u32,
    },
}

impl Region {
    /// Whether the coordinate `mask` lies in the forbidden region.
    pub fn matches(&self, vm: &VarMap, mask: Mask) -> bool {
        if !vm.rho_is_zero(mask) {
            return false;
        }
        match *self {
            Region::Probing => vm.is_full_group_union(mask),
            Region::ShareBudget { budget } => {
                vm.share_groups.iter().any(|&g| mask.weight_in(g) > budget)
            }
            Region::PiniBudget {
                allowed_indices,
                extra,
            } => {
                let outside = vm.share_indices(mask) & !allowed_indices;
                outside.count_ones() > extra
            }
        }
    }

    /// Builds the `T(α, ρ)` matrix as a BDD over the spectral variables.
    pub fn to_bdd(&self, vm: &VarMap, bdds: &mut BddManager) -> Bdd {
        let rho_zero = all_zero(bdds, &vm.random_vars());
        let body = match *self {
            Region::Probing => {
                // Each group all-or-nothing, at least one group fully set.
                let mut all_eq = Bdd::TRUE;
                let mut any_full = Bdd::FALSE;
                for s in 0..vm.num_secrets() {
                    let g = vm.group_vars(SecretId(s as u32));
                    let full = at_least(bdds, &g, g.len());
                    let empty = all_zero(bdds, &g);
                    let eq = bdds.or(full, empty);
                    all_eq = bdds.and(all_eq, eq);
                    any_full = bdds.or(any_full, full);
                }
                bdds.and(all_eq, any_full)
            }
            Region::ShareBudget { budget } => {
                let mut any_over = Bdd::FALSE;
                for s in 0..vm.num_secrets() {
                    let g = vm.group_vars(SecretId(s as u32));
                    let over = at_least(bdds, &g, budget as usize + 1);
                    any_over = bdds.or(any_over, over);
                }
                any_over
            }
            Region::PiniBudget {
                allowed_indices,
                extra,
            } => {
                // indicator_j = "some share with index j outside the
                // allowed set is selected".
                let mut index_vars: HashMap<u32, VarSet> = HashMap::new();
                for (pos, share) in vm.share_of.iter().enumerate() {
                    if let Some((_, index)) = share {
                        if allowed_indices >> index & 1 == 0 {
                            index_vars
                                .entry(*index)
                                .or_insert(VarSet::EMPTY)
                                .insert(vm.var(pos));
                        }
                    }
                }
                let mut indicators: Vec<Bdd> = Vec::new();
                let mut keys: Vec<u32> = index_vars.keys().copied().collect();
                keys.sort();
                for k in keys {
                    let vars = index_vars[&k];
                    let none = all_zero(bdds, &vars);
                    indicators.push(bdds.not(none));
                }
                at_least_fns(bdds, &indicators, extra as usize + 1)
            }
        };
        bdds.and(rho_zero, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walshcheck_circuit::builder::NetlistBuilder;
    use walshcheck_circuit::netlist::Netlist;

    /// Two secrets with 2 shares each, one random, one public.
    /// Positions: x0 x1 y0 y1 r clk.
    fn varmap() -> VarMap {
        let mut b = NetlistBuilder::new("m");
        let sx = b.secret("x");
        let sy = b.secret("y");
        let x = b.shares(sx, 2);
        let y = b.shares(sy, 2);
        let r = b.random("r");
        let _c = b.public_input("clk");
        let t1 = b.xor(x[0], y[0]);
        let t2 = b.xor(t1, r);
        let t3 = b.xor(t2, x[1]);
        let t4 = b.xor(t3, y[1]);
        let o = b.output("q");
        b.output_share(t4, o, 0);
        let n: Netlist = b.build().expect("valid");
        VarMap::from_netlist(&n)
    }

    /// Cross-checks `matches` against `to_bdd` on every coordinate.
    fn check_region_consistency(region: &Region, vm: &VarMap) {
        let mut bdds = BddManager::new(vm.num_vars as u32);
        let t = region.to_bdd(vm, &mut bdds);
        for a in 0..1u128 << vm.num_vars {
            assert_eq!(
                bdds.eval(t, a),
                region.matches(vm, Mask(a)),
                "{region:?} at {a:b}"
            );
        }
    }

    #[test]
    fn probing_region_semantics() {
        let vm = varmap();
        let r = Region::Probing;
        assert!(r.matches(&vm, Mask(0b000011))); // full x group
        assert!(r.matches(&vm, Mask(0b001111))); // both groups
        assert!(r.matches(&vm, Mask(0b100011))); // publics don't matter
        assert!(!r.matches(&vm, Mask(0b000001))); // partial group
        assert!(!r.matches(&vm, Mask(0b010011))); // random component
        assert!(!r.matches(&vm, Mask::ZERO));
        check_region_consistency(&r, &vm);
    }

    #[test]
    fn share_budget_region_semantics() {
        let vm = varmap();
        let r = Region::ShareBudget { budget: 1 };
        assert!(r.matches(&vm, Mask(0b000011))); // 2 shares of x > 1
        assert!(!r.matches(&vm, Mask(0b000101))); // 1 share of each
        assert!(!r.matches(&vm, Mask(0b010011))); // random component
        check_region_consistency(&r, &vm);
        let r0 = Region::ShareBudget { budget: 0 };
        assert!(r0.matches(&vm, Mask(0b000001)));
        assert!(!r0.matches(&vm, Mask(0b100000)));
        check_region_consistency(&r0, &vm);
        // Budget ≥ group size: region is empty.
        let r2 = Region::ShareBudget { budget: 2 };
        let mut bdds = BddManager::new(vm.num_vars as u32);
        assert_eq!(r2.to_bdd(&vm, &mut bdds), Bdd::FALSE);
    }

    #[test]
    fn pini_region_semantics() {
        let vm = varmap();
        // Output share index 0 observed, no internal probes allowed.
        let r = Region::PiniBudget {
            allowed_indices: 0b01,
            extra: 0,
        };
        // Selecting x1 (index 1) is outside the allowed set.
        assert!(r.matches(&vm, Mask(0b000010)));
        // Selecting x0 y0 (both index 0) is fine.
        assert!(!r.matches(&vm, Mask(0b000101)));
        check_region_consistency(&r, &vm);
        // One extra index allowed: x1 alone is fine, nothing exceeds.
        let r1 = Region::PiniBudget {
            allowed_indices: 0b01,
            extra: 1,
        };
        assert!(!r1.matches(&vm, Mask(0b001010))); // x1,y1: one extra index (1)
        check_region_consistency(&r1, &vm);
    }

    #[test]
    fn regions_require_rho_zero() {
        let vm = varmap();
        for region in [
            Region::Probing,
            Region::ShareBudget { budget: 0 },
            Region::PiniBudget {
                allowed_indices: 0,
                extra: 0,
            },
        ] {
            // Any coordinate with the random bit set is outside the region.
            assert!(!region.matches(&vm, Mask(0b011111)));
        }
    }
}
