//! Panic isolation for per-combination work.
//!
//! Both enumeration drivers (the serial loop in `engine.rs` and the
//! scheduler's workers) funnel every combination through
//! [`check_isolated`]: a `catch_unwind` boundary that converts a panic while
//! checking one tuple into a quarantine decision instead of a dead run. Two
//! panic payloads are *expected* and classified precisely:
//!
//! * [`CapacityExceeded`] — the tuple blew its node budget (raised by the
//!   managers in `walshcheck-dd` or by the deterministic pre-charge) →
//!   [`IncompleteReason::NodeBudget`];
//! * anything else (including [`InjectedFault`] from the `fault-inject`
//!   feature and genuine engine bugs) → [`IncompleteReason::WorkerFailure`].
//!
//! After a caught panic the engine context may hold partially-built
//! structures, so the enumeration state is rebuilt from scratch; the sweep
//! then continues with the next combination. All workspace crates
//! `forbid(unsafe_code)`, so no invariants can be broken by unwinding.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use walshcheck_dd::backend::DdBackend;
use walshcheck_dd::budget::CapacityExceeded;

use crate::engine::{ComboStep, EnumState, Verifier, VerifyOptions};
use crate::fault::InjectedFault;
use crate::property::{CheckStats, IncompleteReason, Property};

static QUIET_HOOK: OnceLock<()> = OnceLock::new();

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" banner for the two *expected* payload types — budget
/// exhaustion and injected faults — which would otherwise spam stderr once
/// per quarantined tuple. Every other payload is passed to the previously
/// installed hook, so genuine bugs still print a backtrace pointer.
pub(crate) fn install_quiet_hook() {
    QUIET_HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info.payload().downcast_ref::<CapacityExceeded>().is_some()
                || info.payload().downcast_ref::<InjectedFault>().is_some();
            if !expected {
                prev(info);
            }
        }));
    });
}

/// Maps a caught panic payload to the quarantine reason.
pub(crate) fn classify(payload: &(dyn Any + Send)) -> IncompleteReason {
    if payload.downcast_ref::<CapacityExceeded>().is_some() {
        IncompleteReason::NodeBudget
    } else {
        IncompleteReason::WorkerFailure
    }
}

/// Checks one combination behind a `catch_unwind` boundary.
///
/// On a panic the combination is classified (`Err(reason)`), the old engine
/// context's cache counters are folded into `stats`, `stats.skipped` is
/// bumped, and `state` is rebuilt cold **on the run's backend** (`dd`) — on
/// the shared backend a rebuilt context keeps interning into the run-wide
/// store (whose handles are never invalidated), only its per-context caches
/// start empty. Rebuilding cold is also what keeps tiny-budget quarantine
/// lists thread-count-independent: those budgets trip on the deterministic
/// tuple-estimate pre-charge, so the next tuple's fate is a pure function
/// of the tuple itself.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_isolated(
    verifier: &Verifier,
    state: &mut EnumState,
    property: Property,
    options: &VerifyOptions,
    dd: &dyn DdBackend,
    index: u64,
    idxs: &[usize],
    stats: &mut CheckStats,
) -> Result<ComboStep, IncompleteReason> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        crate::fault::maybe_inject(index);
        verifier.check_indices(state, property, options.prefilter, idxs, stats)
    }));
    match result {
        Ok(step) => Ok(step),
        Err(payload) => {
            let reason = classify(payload.as_ref());
            state.finish(stats);
            *state = verifier.begin_enumeration_with(property, options, dd);
            stats.skipped += 1;
            Err(reason)
        }
    }
}
