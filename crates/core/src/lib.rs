//! # walshcheck-core — exact spectral verification of probing security
//!
//! The primary contribution of the reproduced paper: exact verification of
//! probing security, non-interference (NI), strong non-interference (SNI)
//! and probe-isolating non-interference (PINI) of masked gate-level
//! circuits, via Algebraic-Decision-Diagram analysis of Walsh spectra.
//!
//! The pipeline follows the paper's methodology:
//!
//! 1. **Unfold** the annotated netlist — every wire becomes a BDD
//!    ([`walshcheck_circuit::unfold()`]).
//! 2. **Transform & convolve** — base Walsh spectra are computed per probe
//!    function and combined per observation tuple by convolution
//!    ([`spectrum`]).
//! 3. **Check** — each row is tested against the relation matrix
//!    `T(α, ρ)` ([`tmatrix`]), either by scanning entries (LIL/MAP) or by a
//!    decision-diagram product (MAPI/FUJITA) ([`engine`]).
//!
//! Companion verifiers: an exhaustive distribution-based oracle
//! ([`exhaustive`], SILVER-like), a maskVerif-style heuristic
//! ([`heuristic`]), and TI uniformity checks ([`uniformity`]).
//!
//! ```
//! use walshcheck_core::{Property, Session};
//! use walshcheck_circuit::builder::NetlistBuilder;
//!
//! # fn main() -> Result<(), walshcheck_core::Error> {
//! // A refreshed pass-through: q = (a0 ⊕ r) ⊕ a1.
//! let mut b = NetlistBuilder::new("demo");
//! let x = b.secret("x");
//! let a0 = b.share(x, 0);
//! let a1 = b.share(x, 1);
//! let r = b.random("r");
//! let t = b.xor(a0, r);
//! let q = b.xor(t, a1);
//! let o = b.output("q");
//! b.output_share(q, o, 0);
//! let netlist = b.build()?;
//! let verdict = Session::new(&netlist)?.property(Property::Sni(1)).run();
//! assert_eq!(verdict.outcome, walshcheck_core::Outcome::Secure);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod exhaustive;
pub mod fault;
pub mod hash;
pub mod heuristic;
pub mod iofs;
mod isolate;
pub mod job;
pub mod json;
pub mod mask;
pub mod observe;
mod pcache;
pub mod property;
pub mod recover;
pub mod report;
mod scheduler;
pub mod session;
pub mod shutdown;
pub mod sites;
pub mod spectrum;
pub mod tmatrix;
pub mod uniformity;

pub use checkpoint::CheckpointConfig;
#[doc(hidden)]
pub use engine::check_parallel_modulo;
pub use engine::{EngineKind, SiftMode, Verifier, VerifyOptions, VerifyOptionsBuilder};
pub use error::Error;
pub use iofs::{IoFs, RealFs, TracingFs};
pub use job::{netlist_sha256, Job, JobSpec};
pub use mask::{Mask, VarMap};
pub use observe::{ChannelObserver, EnginePhase, ProgressEvent, ProgressObserver};
pub use property::{
    CheckMode, CheckStats, IncompleteReason, Outcome, Property, SkippedCombination, Verdict,
    Witness,
};
pub use recover::{
    RecoveryReport, RescueAttempt, RescueAttemptOutcome, RescueConfig, RescueResolution,
    RescueRung, RescuedCombination,
};
pub use report::{run_report_json, Report, ReportCacheConfig, REPORT_SCHEMA};
pub use session::{Session, WitnessSearch};
pub use walshcheck_dd::backend::Backend;
