//! Uniformity of output sharings.
//!
//! A gadget's output sharing is *uniform* if, for every fixed unshared input
//! value, every valid sharing of the output value is produced by the same
//! number of (input sharing, randomness) pairs. Uniformity is the third
//! threshold-implementation property (besides correctness and
//! non-completeness) and a precondition for composing TI stages without
//! fresh randomness.
//!
//! Two checks are provided: an exhaustive exact test (small gadgets), and a
//! spectral *balancedness* necessary condition that scales further.

use walshcheck_circuit::netlist::{InputRole, Netlist, NetlistError, OutputId, OutputRole};
use walshcheck_circuit::sim::Simulator;
use walshcheck_circuit::unfold::unfold;
use walshcheck_dd::bdd::Bdd;

/// Hard cap on exhaustive enumeration width.
const MAX_INPUTS: usize = 24;

/// Exhaustively decides whether the output sharing is uniform.
///
/// # Errors
///
/// Fails if the netlist is invalid, cyclic, or wider than 24 inputs.
pub fn is_uniform_sharing(netlist: &Netlist) -> Result<bool, NetlistError> {
    netlist.validate()?;
    let m = netlist.inputs.len();
    if m > MAX_INPUTS {
        return Err(NetlistError::BadSharing(format!(
            "uniformity check limited to {MAX_INPUTS} inputs, got {m}"
        )));
    }
    let sim = Simulator::new(netlist)?;
    let out_shares: Vec<_> = netlist
        .outputs
        .iter()
        .filter_map(|&(w, r)| match r {
            OutputRole::Share { .. } => Some(w),
            OutputRole::Public => None,
        })
        .collect();
    if out_shares.is_empty() {
        return Ok(true);
    }

    // counts[(secrets, publics)][output share vector] → multiplicity.
    use std::collections::HashMap;
    let mut counts: HashMap<(u64, u64), HashMap<u64, u64>> = HashMap::new();
    for a in 0..1u128 << m {
        let values = sim.eval_all(a);
        let mut secrets = 0u64;
        let mut publics = 0u64;
        let mut pub_bit = 0;
        for (pos, &(_, role)) in netlist.inputs.iter().enumerate() {
            match role {
                InputRole::Share { secret, .. } => {
                    if a >> pos & 1 == 1 {
                        secrets ^= 1 << secret.0;
                    }
                }
                InputRole::Public => {
                    if a >> pos & 1 == 1 {
                        publics |= 1 << pub_bit;
                    }
                    pub_bit += 1;
                }
                InputRole::Random => {}
            }
        }
        let mut y = 0u64;
        for (bi, w) in out_shares.iter().enumerate() {
            if values[w.0 as usize] {
                y |= 1 << bi;
            }
        }
        *counts
            .entry((secrets, publics))
            .or_default()
            .entry(y)
            .or_insert(0) += 1;
    }
    // Every output group with k shares has 2^(k−1) valid sharings of its
    // value; uniformity requires *all* of them to appear, equally often.
    let mut expected_distinct: u64 = 1;
    for o in 0..netlist.output_names.len() {
        let k = netlist.output_shares_of(OutputId(o as u32)).len();
        if k > 0 {
            expected_distinct <<= k - 1;
        }
    }
    for dist in counts.values() {
        if dist.len() as u64 != expected_distinct {
            return Ok(false);
        }
        let mut it = dist.values();
        if let Some(&first) = it.next() {
            if it.any(|&c| c != first) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Spectral necessary condition: every non-trivial XOR combination of output
/// shares that does not cover a complete output group must be *balanced*.
/// Returns the first unbalanced selection, or `None` if the condition holds.
///
/// # Errors
///
/// Fails if the netlist is invalid/cyclic, or has more than 20 output
/// shares (the enumeration is exponential in that count).
pub fn unbalanced_output_combination(netlist: &Netlist) -> Result<Option<u64>, NetlistError> {
    netlist.validate()?;
    let out_shares: Vec<_> = netlist
        .outputs
        .iter()
        .filter_map(|&(w, r)| match r {
            OutputRole::Share { output, .. } => Some((w, output)),
            OutputRole::Public => None,
        })
        .collect();
    if out_shares.len() > 20 {
        return Err(NetlistError::BadSharing(format!(
            "balancedness check limited to 20 output shares, got {}",
            out_shares.len()
        )));
    }
    let unfolded = unfold(netlist)?;
    let n_vars = unfolded.bdds.num_vars();
    let mut bdds = unfolded.bdds;
    let funcs: Vec<Bdd> = out_shares
        .iter()
        .map(|&(w, _)| unfolded.wire_fns[w.0 as usize])
        .collect();

    // Which selections cover complete output groups (those may be biased:
    // they equal the unshared output value xor-combination).
    let group_of: Vec<OutputId> = out_shares.iter().map(|&(_, o)| o).collect();
    let num_groups = netlist.output_names.len();
    let full_mask_of_group: Vec<u64> = (0..num_groups)
        .map(|g| {
            group_of
                .iter()
                .enumerate()
                .filter(|(_, o)| o.0 as usize == g)
                .fold(0u64, |m, (i, _)| m | 1 << i)
        })
        .collect();

    let half = 1u128 << (n_vars - 1);
    'sel: for sel in 1u64..1 << funcs.len() {
        // Skip selections that are unions of complete groups.
        let mut rest = sel;
        for &gm in &full_mask_of_group {
            if gm != 0 && rest & gm == gm {
                rest &= !gm;
            }
        }
        if rest == 0 {
            continue 'sel;
        }
        let mut acc = Bdd::FALSE;
        for (i, &f) in funcs.iter().enumerate() {
            if sel >> i & 1 == 1 {
                acc = bdds.xor(acc, f);
            }
        }
        if bdds.sat_count(acc) != half {
            return Ok(Some(sel));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use walshcheck_circuit::builder::NetlistBuilder;

    /// A refreshed identity: trivially uniform.
    fn uniform_gadget() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r");
        let q0 = b.xor(a0, r);
        let q1 = b.xor(a1, r);
        let o = b.output("q");
        b.output_share(q0, o, 0);
        b.output_share(q1, o, 1);
        b.build().expect("valid")
    }

    /// Output shares (a0∧a1, a0∧a1): sums to 0, distribution is skewed.
    fn non_uniform_gadget() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let t = b.and(a0, a1);
        let u = b.buf(t);
        let o = b.output("q");
        b.output_share(t, o, 0);
        b.output_share(u, o, 1);
        b.build().expect("valid")
    }

    #[test]
    fn uniform_sharing_is_recognized() {
        assert!(is_uniform_sharing(&uniform_gadget()).expect("ok"));
    }

    #[test]
    fn non_uniform_sharing_is_rejected() {
        assert!(!is_uniform_sharing(&non_uniform_gadget()).expect("ok"));
    }

    #[test]
    fn balancedness_flags_biased_combination() {
        // In the non-uniform gadget, the single share q0 = a0∧a1 is biased.
        let sel = unbalanced_output_combination(&non_uniform_gadget()).expect("ok");
        assert!(sel.is_some());
        // In the uniform gadget every proper combination is balanced.
        let sel = unbalanced_output_combination(&uniform_gadget()).expect("ok");
        assert_eq!(sel, None);
    }

    #[test]
    fn dom_and_is_not_uniform_but_isw_outputs_balanced() {
        // Classic fact: DOM/ISW multiplication outputs are balanced but the
        // joint sharing is not uniform without extra randomness — at order
        // 1 with 1 random the 2-share DOM output is actually uniform;
        // exercise both code paths on real gadgets via the gadget crate in
        // integration tests instead. Here: sanity on the trivial identity.
        let mut b = NetlistBuilder::new("id");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let q0 = b.buf(a0);
        let q1 = b.buf(a1);
        let o = b.output("q");
        b.output_share(q0, o, 0);
        b.output_share(q1, o, 1);
        let n = b.build().expect("valid");
        assert!(is_uniform_sharing(&n).expect("ok"));
        assert_eq!(unbalanced_output_combination(&n).expect("ok"), None);
    }
}
