//! Security properties, check outcomes and statistics.

use std::fmt;
use std::time::Duration;

use walshcheck_circuit::netlist::{OutputId, WireId};
use walshcheck_dd::dyadic::Dyadic;

use crate::mask::Mask;

/// A verifiable side-channel security property at order `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// `d`-probing security: no combination of up to `d` observations
    /// (outputs and internal probes) carries information about any secret.
    Probing(u32),
    /// `d`-non-interference: any `s ≤ d` observations can be simulated with
    /// at most `s` shares of each input.
    Ni(u32),
    /// `d`-strong non-interference: any `s ≤ d` observations with `i`
    /// internal probes can be simulated with at most `i` shares of each
    /// input.
    Sni(u32),
    /// `d`-probe-isolating non-interference: observations can be simulated
    /// from the share indices of the observed outputs plus at most `i`
    /// further indices (Goudarzi et al., TCHES 2021).
    Pini(u32),
}

impl Property {
    /// The order `d` of the property.
    pub fn order(&self) -> u32 {
        match *self {
            Property::Probing(d) | Property::Ni(d) | Property::Sni(d) | Property::Pini(d) => d,
        }
    }

    /// Stable machine-readable property kind (job specs, reports, CLI
    /// flags): `"probing"`, `"ni"`, `"sni"` or `"pini"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Property::Probing(_) => "probing",
            Property::Ni(_) => "ni",
            Property::Sni(_) => "sni",
            Property::Pini(_) => "pini",
        }
    }

    /// Inverse of [`Property::kind`] at order `order`.
    pub fn from_kind(kind: &str, order: u32) -> Option<Property> {
        match kind {
            "probing" => Some(Property::Probing(order)),
            "ni" => Some(Property::Ni(order)),
            "sni" => Some(Property::Sni(order)),
            "pini" => Some(Property::Pini(order)),
            _ => None,
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Probing(d) => write!(f, "{d}-probing"),
            Property::Ni(d) => write!(f, "{d}-NI"),
            Property::Sni(d) => write!(f, "{d}-SNI"),
            Property::Pini(d) => write!(f, "{d}-PINI"),
        }
    }
}

impl CheckMode {
    /// Stable machine-readable name (job specs, reports): `"rowwise"` or
    /// `"joint"`.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckMode::RowWise => "rowwise",
            CheckMode::Joint => "joint",
        }
    }

    /// Inverse of [`CheckMode::as_str`] (also accepts `"row-wise"`).
    pub fn parse(s: &str) -> Option<CheckMode> {
        match s {
            "rowwise" | "row-wise" => Some(CheckMode::RowWise),
            "joint" => Some(CheckMode::Joint),
            _ => None,
        }
    }
}

/// How a combination's Walsh matrix is tested against the property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckMode {
    /// Paper-faithful region test: every coefficient of the combination's
    /// convolution row is tested individually against the relation matrix
    /// `T(α, ρ)`. Exact for probing security; for NI/SNI it tests each
    /// coefficient's share weight in isolation.
    RowWise,
    /// Rigorous simulatability test: the union of spectral supports over
    /// *all* rows of the combination is accumulated first, then per-secret
    /// share counts are compared against the budget (the minimal simulation
    /// set is exactly that union).
    #[default]
    Joint,
}

/// One observation in a probe combination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProbeRef {
    /// Observation of a shared output bit.
    Output {
        /// The observed wire.
        wire: WireId,
        /// The shared output it belongs to.
        output: OutputId,
        /// The share index within the output.
        index: u32,
    },
    /// A probe on an internal (or input) wire.
    Internal {
        /// The probed wire.
        wire: WireId,
    },
}

impl ProbeRef {
    /// The observed wire.
    pub fn wire(&self) -> WireId {
        match *self {
            ProbeRef::Output { wire, .. } | ProbeRef::Internal { wire } => wire,
        }
    }

    /// Whether this is an internal probe (counts against the SNI budget).
    pub fn is_internal(&self) -> bool {
        matches!(self, ProbeRef::Internal { .. })
    }
}

/// Evidence that a property is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The violating observation combination.
    pub combination: Vec<ProbeRef>,
    /// A spectral coordinate with a non-zero coefficient in the forbidden
    /// region (row-wise mode), or the union spectral support that exceeds
    /// the budget (joint mode).
    pub mask: Mask,
    /// Human-readable explanation of why the mask violates the property.
    pub reason: String,
    /// The leaking correlation coefficient at `mask` (row-wise checks);
    /// its magnitude bounds the adversary's distinguishing advantage.
    pub coefficient: Option<Dyadic>,
}

/// Why a run could not reach a definitive `Secure`/`Violated` answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncompleteReason {
    /// The configured wall-clock limit was reached before the sweep
    /// finished.
    Timeout,
    /// At least one combination was quarantined because it exceeded the
    /// per-tuple node budget (see [`crate::engine::VerifyOptionsBuilder::node_budget`]).
    NodeBudget,
    /// A worker panicked (the combination being checked was quarantined, or
    /// the whole worker was lost), so part of the space may be unchecked.
    WorkerFailure,
    /// A graceful shutdown was requested ([`crate::shutdown::request`],
    /// typically SIGINT/SIGTERM) and the sweep was drained at a batch
    /// boundary; the flushed checkpoint resumes the run byte-identically.
    Interrupted,
}

impl IncompleteReason {
    /// Stable machine-readable name used in reports and checkpoints.
    pub fn as_str(self) -> &'static str {
        match self {
            IncompleteReason::Timeout => "timeout",
            IncompleteReason::NodeBudget => "node-budget",
            IncompleteReason::WorkerFailure => "worker-failure",
            IncompleteReason::Interrupted => "interrupted",
        }
    }

    /// Inverse of [`IncompleteReason::as_str`].
    pub fn parse(s: &str) -> Option<IncompleteReason> {
        match s {
            "timeout" => Some(IncompleteReason::Timeout),
            "node-budget" => Some(IncompleteReason::NodeBudget),
            "worker-failure" => Some(IncompleteReason::WorkerFailure),
            "interrupted" => Some(IncompleteReason::Interrupted),
            _ => None,
        }
    }
}

impl fmt::Display for IncompleteReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The three-valued result of a verification run.
///
/// `Secure` and `Violated` are definitive answers over the *entire*
/// combination space; `Inconclusive` means the sweep was cut short (timeout,
/// quarantined combinations, or a lost worker) without finding a violation —
/// the property may or may not hold. A found witness is always definitive:
/// one leaking combination disproves the property no matter how much of the
/// space is left unexplored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Every combination was checked and none violates the property.
    Secure,
    /// A violating combination was found ([`Verdict::witness`] has the
    /// evidence).
    Violated,
    /// The sweep did not cover the whole space and found no violation.
    Inconclusive(IncompleteReason),
}

impl Outcome {
    /// Whether this outcome is a definitive answer (`Secure` or `Violated`).
    pub fn is_conclusive(self) -> bool {
        !matches!(self, Outcome::Inconclusive(_))
    }

    /// Stable machine-readable name used in reports: `"secure"`,
    /// `"violated"` or `"inconclusive"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Secure => "secure",
            Outcome::Violated => "violated",
            Outcome::Inconclusive(_) => "inconclusive",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Inconclusive(r) => write!(f, "inconclusive ({r})"),
            other => f.write_str(other.as_str()),
        }
    }
}

/// A combination that was quarantined instead of checked.
///
/// Quarantined combinations are recorded in enumeration order in
/// [`Verdict::skipped`]; their presence downgrades the outcome to
/// [`Outcome::Inconclusive`] unless a witness was found elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SkippedCombination {
    /// Position of the combination in the deterministic global enumeration
    /// order (the same order that picks minimal-index witnesses).
    pub index: u64,
    /// The quarantined observation combination.
    pub combination: Vec<ProbeRef>,
    /// Why it was quarantined.
    pub reason: IncompleteReason,
}

/// Aggregate cost counters of a verification run, including the paper's
/// Fig. 6 breakdown into convolution and verification time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Combinations enumerated.
    pub combinations: u64,
    /// Combinations skipped by the functional-support prefilter.
    pub pruned: u64,
    /// Spectrum convolutions performed.
    pub convolutions: u64,
    /// Matrix rows tested against the property.
    pub rows_checked: u64,
    /// Prefix-cache lookups served from the cache (partial convolution
    /// products reused across tuples; see DESIGN.md §9).
    pub cache_hits: u64,
    /// Prefix-cache entries that had to be computed and inserted.
    pub cache_misses: u64,
    /// Prefix-cache entries dropped — by the byte budget, as oversized, or
    /// invalidated by a decision-diagram arena reset.
    pub cache_evictions: u64,
    /// Peak estimated prefix-cache footprint in bytes. Workers cache
    /// independently, so the merged value is the sum of per-worker peaks
    /// (an upper bound on the simultaneous footprint).
    pub cache_peak_bytes: u64,
    /// Probes of the dd-layer spectral memos (the sparse Walsh cache and
    /// the partial-WHT memo) answered from the memo.
    pub dd_cache_hits: u64,
    /// Dd-layer spectral-memo probes that had to compute the transform.
    pub dd_cache_misses: u64,
    /// Dd-layer spectral-memo entries dropped to stay inside the byte
    /// budget.
    pub dd_cache_evictions: u64,
    /// Peak estimated dd-layer spectral-memo footprint in bytes (summed
    /// across workers, like `cache_peak_bytes`).
    pub dd_cache_peak_bytes: u64,
    /// Combinations quarantined instead of checked (budget exhaustion or an
    /// isolated panic); the quarantined tuples themselves are listed in
    /// [`Verdict::skipped`].
    pub skipped: u64,
    /// Whole workers lost to a panic outside the per-combination isolation
    /// boundary. Any batch such a worker had claimed may be unchecked, so a
    /// non-zero count forces [`Outcome::Inconclusive`] unless a witness was
    /// found.
    pub worker_failures: u64,
    /// Time spent computing base spectra and convolutions.
    pub convolution_time: Duration,
    /// Time spent testing rows against the property (T-matrix products or
    /// entry scans).
    pub verification_time: Duration,
    /// Total wall time of the check, including unfolding and enumeration.
    pub total_time: Duration,
    /// Whether the run stopped early because the configured time limit was
    /// reached (the verdict is then a lower bound: no violation found *so
    /// far*).
    pub timed_out: bool,
    /// Whether the run was cut short by a graceful-shutdown request
    /// ([`crate::shutdown::request`]) while unswept work remained. The final
    /// checkpoint write still runs, so the run can be resumed.
    pub interrupted: bool,
}

impl CheckStats {
    /// Folds another run's counters into this one (the parallel-merge
    /// semantics): counts and phase times add up, `total_time` takes the
    /// maximum (workers run concurrently), and `timed_out` is sticky.
    pub fn merge(&mut self, other: &CheckStats) {
        self.combinations += other.combinations;
        self.pruned += other.pruned;
        self.convolutions += other.convolutions;
        self.rows_checked += other.rows_checked;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_peak_bytes += other.cache_peak_bytes;
        self.dd_cache_hits += other.dd_cache_hits;
        self.dd_cache_misses += other.dd_cache_misses;
        self.dd_cache_evictions += other.dd_cache_evictions;
        self.dd_cache_peak_bytes += other.dd_cache_peak_bytes;
        self.skipped += other.skipped;
        self.worker_failures += other.worker_failures;
        self.convolution_time += other.convolution_time;
        self.verification_time += other.verification_time;
        self.total_time = self.total_time.max(other.total_time);
        self.timed_out |= other.timed_out;
        self.interrupted |= other.interrupted;
    }
}

impl std::ops::Add for CheckStats {
    type Output = CheckStats;

    fn add(mut self, rhs: CheckStats) -> CheckStats {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for CheckStats {
    fn add_assign(&mut self, rhs: CheckStats) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for CheckStats {
    fn sum<I: Iterator<Item = CheckStats>>(iter: I) -> CheckStats {
        iter.fold(CheckStats::default(), |acc, s| acc + s)
    }
}

/// Result of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Verdict {
    /// The property that was checked.
    pub property: Property,
    /// `true` if no violating combination was found. **0.2 compat only** —
    /// this stays `true` for inconclusive runs (a timeout or quarantine that
    /// found nothing), so it must never be read as "the property holds".
    /// Branch on [`Verdict::outcome`] instead.
    pub secure: bool,
    /// The three-valued result; the only field that distinguishes "checked
    /// everything, found nothing" from "ran out of time/budget/workers".
    pub outcome: Outcome,
    /// A violation witness when the outcome is [`Outcome::Violated`].
    pub witness: Option<Witness>,
    /// Combinations quarantined instead of checked, in enumeration order.
    pub skipped: Vec<SkippedCombination>,
    /// Record of the post-sweep rescue pass (`Some` whenever a rescue ran or
    /// resolutions were carried from a resumed checkpoint); [`None`] when
    /// rescue was disabled or there was nothing to rescue.
    pub recovery: Option<crate::recover::RecoveryReport>,
    /// Cost counters.
    pub stats: CheckStats,
}

impl Verdict {
    /// Builds a verdict, deriving [`Verdict::outcome`] from the evidence.
    ///
    /// Precedence: a witness is definitive (`Violated`) no matter what else
    /// happened; otherwise a shutdown interrupt, a timeout, a lost worker, a
    /// worker-failure quarantine, and a budget quarantine downgrade to
    /// `Inconclusive` in that order; only a clean, complete sweep is
    /// `Secure`. (A successful rescue pass empties `skipped`, which is how
    /// an `Inconclusive` run upgrades to `Secure`.)
    pub fn conclude(
        property: Property,
        witness: Option<Witness>,
        skipped: Vec<SkippedCombination>,
        stats: CheckStats,
    ) -> Verdict {
        let outcome = if witness.is_some() {
            Outcome::Violated
        } else if stats.interrupted {
            Outcome::Inconclusive(IncompleteReason::Interrupted)
        } else if stats.timed_out {
            Outcome::Inconclusive(IncompleteReason::Timeout)
        } else if stats.worker_failures > 0
            || skipped
                .iter()
                .any(|s| s.reason == IncompleteReason::WorkerFailure)
        {
            Outcome::Inconclusive(IncompleteReason::WorkerFailure)
        } else if !skipped.is_empty() {
            Outcome::Inconclusive(IncompleteReason::NodeBudget)
        } else {
            Outcome::Secure
        };
        Verdict {
            property,
            secure: witness.is_none(),
            outcome,
            witness,
            skipped,
            recovery: None,
            stats,
        }
    }

    /// Convenience accessor: panics unless the sweep *completed* and proved
    /// the property.
    ///
    /// # Panics
    ///
    /// Panics if the property was violated **or** the run was inconclusive —
    /// a timed-out or quarantine-degraded run has not proved anything, so
    /// treating it as secure would be the exact trap this method exists to
    /// close.
    pub fn expect_secure(&self) {
        assert!(
            self.outcome == Outcome::Secure,
            "{} not proved secure: outcome is {} ({:?}; {} combinations quarantined)",
            self.property,
            self.outcome,
            self.witness.as_ref().map(|w| &w.reason),
            self.skipped.len(),
        );
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.outcome {
            Outcome::Secure => write!(f, "{}: secure", self.property),
            Outcome::Violated => write!(
                f,
                "{}: VIOLATED ({})",
                self.property,
                self.witness
                    .as_ref()
                    .map_or("no witness", |w| w.reason.as_str())
            ),
            Outcome::Inconclusive(reason) => write!(
                f,
                "{}: INCONCLUSIVE ({reason}; {} combinations quarantined)",
                self.property,
                self.skipped.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_display_and_order() {
        assert_eq!(Property::Sni(2).to_string(), "2-SNI");
        assert_eq!(Property::Probing(3).to_string(), "3-probing");
        assert_eq!(Property::Ni(1).to_string(), "1-NI");
        assert_eq!(Property::Pini(2).to_string(), "2-PINI");
        assert_eq!(Property::Pini(2).order(), 2);
    }

    #[test]
    fn probe_ref_accessors() {
        let o = ProbeRef::Output {
            wire: WireId(3),
            output: OutputId(0),
            index: 1,
        };
        let p = ProbeRef::Internal { wire: WireId(7) };
        assert_eq!(o.wire(), WireId(3));
        assert_eq!(p.wire(), WireId(7));
        assert!(p.is_internal());
        assert!(!o.is_internal());
    }

    #[test]
    fn verdict_display() {
        let v = Verdict::conclude(Property::Sni(1), None, vec![], CheckStats::default());
        assert_eq!(v.to_string(), "1-SNI: secure");
        assert_eq!(v.outcome, Outcome::Secure);
        v.expect_secure();
        let bad = Verdict::conclude(
            Property::Ni(2),
            Some(Witness {
                combination: vec![],
                mask: Mask(0b11),
                reason: "3 shares of a from 2 probes".into(),
                coefficient: None,
            }),
            vec![],
            CheckStats::default(),
        );
        assert!(bad.to_string().contains("VIOLATED"));
        assert_eq!(bad.outcome, Outcome::Violated);
        assert!(!bad.secure);
    }

    #[test]
    #[should_panic(expected = "not proved secure")]
    fn expect_secure_panics_on_timeout() {
        // The timed-out-reads-as-secure trap: no witness was found, so the
        // compat `secure` bool is true, but nothing was proved.
        let stats = CheckStats {
            timed_out: true,
            ..CheckStats::default()
        };
        let v = Verdict::conclude(Property::Sni(2), None, vec![], stats);
        assert!(v.secure, "compat bool still reports no-witness-found");
        assert_eq!(v.outcome, Outcome::Inconclusive(IncompleteReason::Timeout));
        v.expect_secure(); // must panic
    }

    #[test]
    fn witness_is_definitive_even_under_timeout() {
        // Pins the `timed_out && !any_witness` semantics shared with the
        // scheduler/engine merge: a found witness is a complete answer (one
        // leaking tuple disproves the property regardless of coverage), so a
        // witness outranks every incompleteness signal.
        let stats = CheckStats {
            timed_out: true,
            worker_failures: 1,
            ..CheckStats::default()
        };
        let w = Witness {
            combination: vec![],
            mask: Mask(1),
            reason: "leak".into(),
            coefficient: None,
        };
        let v = Verdict::conclude(Property::Sni(1), Some(w), vec![], stats);
        assert_eq!(v.outcome, Outcome::Violated);
    }

    #[test]
    fn quarantine_precedence_and_expect_secure() {
        let skipped = vec![SkippedCombination {
            index: 7,
            combination: vec![ProbeRef::Internal { wire: WireId(1) }],
            reason: IncompleteReason::NodeBudget,
        }];
        let v = Verdict::conclude(
            Property::Ni(1),
            None,
            skipped.clone(),
            CheckStats::default(),
        );
        assert_eq!(
            v.outcome,
            Outcome::Inconclusive(IncompleteReason::NodeBudget)
        );
        assert!(v.to_string().contains("INCONCLUSIVE"));
        assert!(std::panic::catch_unwind(|| v.expect_secure()).is_err());

        // A worker-failure quarantine outranks budget quarantines.
        let mut mixed = skipped;
        mixed.push(SkippedCombination {
            index: 9,
            combination: vec![],
            reason: IncompleteReason::WorkerFailure,
        });
        let v = Verdict::conclude(Property::Ni(1), None, mixed, CheckStats::default());
        assert_eq!(
            v.outcome,
            Outcome::Inconclusive(IncompleteReason::WorkerFailure)
        );
    }

    #[test]
    fn interrupt_outranks_other_degradations_but_not_a_witness() {
        let stats = CheckStats {
            interrupted: true,
            timed_out: true,
            ..CheckStats::default()
        };
        let v = Verdict::conclude(Property::Sni(2), None, vec![], stats.clone());
        assert_eq!(
            v.outcome,
            Outcome::Inconclusive(IncompleteReason::Interrupted)
        );
        let w = Witness {
            combination: vec![],
            mask: Mask(1),
            reason: "leak".into(),
            coefficient: None,
        };
        let v = Verdict::conclude(Property::Sni(2), Some(w), vec![], stats);
        assert_eq!(v.outcome, Outcome::Violated);
    }

    #[test]
    fn reason_round_trips_through_names() {
        for r in [
            IncompleteReason::Timeout,
            IncompleteReason::NodeBudget,
            IncompleteReason::WorkerFailure,
            IncompleteReason::Interrupted,
        ] {
            assert_eq!(IncompleteReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(IncompleteReason::parse("nonesuch"), None);
    }
}
