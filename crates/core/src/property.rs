//! Security properties, check outcomes and statistics.

use std::fmt;
use std::time::Duration;

use walshcheck_circuit::netlist::{OutputId, WireId};
use walshcheck_dd::dyadic::Dyadic;

use crate::mask::Mask;

/// A verifiable side-channel security property at order `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// `d`-probing security: no combination of up to `d` observations
    /// (outputs and internal probes) carries information about any secret.
    Probing(u32),
    /// `d`-non-interference: any `s ≤ d` observations can be simulated with
    /// at most `s` shares of each input.
    Ni(u32),
    /// `d`-strong non-interference: any `s ≤ d` observations with `i`
    /// internal probes can be simulated with at most `i` shares of each
    /// input.
    Sni(u32),
    /// `d`-probe-isolating non-interference: observations can be simulated
    /// from the share indices of the observed outputs plus at most `i`
    /// further indices (Goudarzi et al., TCHES 2021).
    Pini(u32),
}

impl Property {
    /// The order `d` of the property.
    pub fn order(&self) -> u32 {
        match *self {
            Property::Probing(d) | Property::Ni(d) | Property::Sni(d) | Property::Pini(d) => d,
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Probing(d) => write!(f, "{d}-probing"),
            Property::Ni(d) => write!(f, "{d}-NI"),
            Property::Sni(d) => write!(f, "{d}-SNI"),
            Property::Pini(d) => write!(f, "{d}-PINI"),
        }
    }
}

/// How a combination's Walsh matrix is tested against the property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckMode {
    /// Paper-faithful region test: every coefficient of the combination's
    /// convolution row is tested individually against the relation matrix
    /// `T(α, ρ)`. Exact for probing security; for NI/SNI it tests each
    /// coefficient's share weight in isolation.
    RowWise,
    /// Rigorous simulatability test: the union of spectral supports over
    /// *all* rows of the combination is accumulated first, then per-secret
    /// share counts are compared against the budget (the minimal simulation
    /// set is exactly that union).
    #[default]
    Joint,
}

/// One observation in a probe combination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProbeRef {
    /// Observation of a shared output bit.
    Output {
        /// The observed wire.
        wire: WireId,
        /// The shared output it belongs to.
        output: OutputId,
        /// The share index within the output.
        index: u32,
    },
    /// A probe on an internal (or input) wire.
    Internal {
        /// The probed wire.
        wire: WireId,
    },
}

impl ProbeRef {
    /// The observed wire.
    pub fn wire(&self) -> WireId {
        match *self {
            ProbeRef::Output { wire, .. } | ProbeRef::Internal { wire } => wire,
        }
    }

    /// Whether this is an internal probe (counts against the SNI budget).
    pub fn is_internal(&self) -> bool {
        matches!(self, ProbeRef::Internal { .. })
    }
}

/// Evidence that a property is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The violating observation combination.
    pub combination: Vec<ProbeRef>,
    /// A spectral coordinate with a non-zero coefficient in the forbidden
    /// region (row-wise mode), or the union spectral support that exceeds
    /// the budget (joint mode).
    pub mask: Mask,
    /// Human-readable explanation of why the mask violates the property.
    pub reason: String,
    /// The leaking correlation coefficient at `mask` (row-wise checks);
    /// its magnitude bounds the adversary's distinguishing advantage.
    pub coefficient: Option<Dyadic>,
}

/// Aggregate cost counters of a verification run, including the paper's
/// Fig. 6 breakdown into convolution and verification time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Combinations enumerated.
    pub combinations: u64,
    /// Combinations skipped by the functional-support prefilter.
    pub pruned: u64,
    /// Spectrum convolutions performed.
    pub convolutions: u64,
    /// Matrix rows tested against the property.
    pub rows_checked: u64,
    /// Prefix-cache lookups served from the cache (partial convolution
    /// products reused across tuples; see DESIGN.md §9).
    pub cache_hits: u64,
    /// Prefix-cache entries that had to be computed and inserted.
    pub cache_misses: u64,
    /// Prefix-cache entries dropped — by the byte budget, as oversized, or
    /// invalidated by a decision-diagram arena reset.
    pub cache_evictions: u64,
    /// Peak estimated prefix-cache footprint in bytes. Workers cache
    /// independently, so the merged value is the sum of per-worker peaks
    /// (an upper bound on the simultaneous footprint).
    pub cache_peak_bytes: u64,
    /// Time spent computing base spectra and convolutions.
    pub convolution_time: Duration,
    /// Time spent testing rows against the property (T-matrix products or
    /// entry scans).
    pub verification_time: Duration,
    /// Total wall time of the check, including unfolding and enumeration.
    pub total_time: Duration,
    /// Whether the run stopped early because the configured time limit was
    /// reached (the verdict is then a lower bound: no violation found *so
    /// far*).
    pub timed_out: bool,
}

impl CheckStats {
    /// Folds another run's counters into this one (the parallel-merge
    /// semantics): counts and phase times add up, `total_time` takes the
    /// maximum (workers run concurrently), and `timed_out` is sticky.
    pub fn merge(&mut self, other: &CheckStats) {
        self.combinations += other.combinations;
        self.pruned += other.pruned;
        self.convolutions += other.convolutions;
        self.rows_checked += other.rows_checked;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_peak_bytes += other.cache_peak_bytes;
        self.convolution_time += other.convolution_time;
        self.verification_time += other.verification_time;
        self.total_time = self.total_time.max(other.total_time);
        self.timed_out |= other.timed_out;
    }
}

impl std::ops::Add for CheckStats {
    type Output = CheckStats;

    fn add(mut self, rhs: CheckStats) -> CheckStats {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for CheckStats {
    fn add_assign(&mut self, rhs: CheckStats) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for CheckStats {
    fn sum<I: Iterator<Item = CheckStats>>(iter: I) -> CheckStats {
        iter.fold(CheckStats::default(), |acc, s| acc + s)
    }
}

/// Result of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The property that was checked.
    pub property: Property,
    /// `true` if no violating combination was found (the property holds).
    pub secure: bool,
    /// A violation witness when `secure` is `false`.
    pub witness: Option<Witness>,
    /// Cost counters.
    pub stats: CheckStats,
}

impl Verdict {
    /// Convenience accessor: panics with the witness if the check failed.
    ///
    /// # Panics
    ///
    /// Panics if the property does not hold.
    pub fn expect_secure(&self) {
        assert!(
            self.secure,
            "{} violated: {:?}",
            self.property,
            self.witness.as_ref().map(|w| &w.reason)
        );
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.secure {
            write!(f, "{}: secure", self.property)
        } else {
            write!(
                f,
                "{}: VIOLATED ({})",
                self.property,
                self.witness
                    .as_ref()
                    .map_or("no witness", |w| w.reason.as_str())
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_display_and_order() {
        assert_eq!(Property::Sni(2).to_string(), "2-SNI");
        assert_eq!(Property::Probing(3).to_string(), "3-probing");
        assert_eq!(Property::Ni(1).to_string(), "1-NI");
        assert_eq!(Property::Pini(2).to_string(), "2-PINI");
        assert_eq!(Property::Pini(2).order(), 2);
    }

    #[test]
    fn probe_ref_accessors() {
        let o = ProbeRef::Output {
            wire: WireId(3),
            output: OutputId(0),
            index: 1,
        };
        let p = ProbeRef::Internal { wire: WireId(7) };
        assert_eq!(o.wire(), WireId(3));
        assert_eq!(p.wire(), WireId(7));
        assert!(p.is_internal());
        assert!(!o.is_internal());
    }

    #[test]
    fn verdict_display() {
        let v = Verdict {
            property: Property::Sni(1),
            secure: true,
            witness: None,
            stats: CheckStats::default(),
        };
        assert_eq!(v.to_string(), "1-SNI: secure");
        v.expect_secure();
        let bad = Verdict {
            property: Property::Ni(2),
            secure: false,
            witness: Some(Witness {
                combination: vec![],
                mask: Mask(0b11),
                reason: "3 shares of a from 2 probes".into(),
                coefficient: None,
            }),
            stats: CheckStats::default(),
        };
        assert!(bad.to_string().contains("VIOLATED"));
    }
}
