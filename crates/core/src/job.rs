//! The job API: one verification run as a value.
//!
//! A [`JobSpec`] is the complete, *serializable* description of what to
//! verify — property, engine options, worker count, rescue configuration —
//! with a canonical JSON form and a content hash. It is the submit payload
//! of the `walshcheckd` daemon and the identity under which the artifact
//! store caches results; [`crate::Session`] is now a thin builder over it.
//!
//! A [`Job`] pairs a spec with a prepared [`Verifier`] for one netlist and
//! owns the run-scoped state the spec cannot carry (progress observer,
//! checkpoint configuration, a pending resume). [`Job::run`] is the single
//! execution path shared by the CLI, the daemon and library embedders —
//! every run goes through the work-stealing scheduler, so verdicts are
//! thread-count-independent by construction.
//!
//! # Identity vs. configuration
//!
//! Two spec serializations exist on purpose:
//!
//! * [`JobSpec::to_json`] — the full configuration, round-tripped through
//!   [`JobSpec::parse`] (what a daemon client submits);
//! * [`JobSpec::identity_json`] — the *result identity*: the full form
//!   minus `threads` and the prefix-cache knobs, which are proven
//!   verdict-neutral (DESIGN.md §8/§9). [`JobSpec::identity_hash`] over
//!   these canonical bytes, combined with [`netlist_sha256`], is the
//!   artifact-store cache key: a resubmitted `(netlist, identity)` pair is
//!   served from disk, never recomputed.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use walshcheck_circuit::glitch::ProbeModel;
use walshcheck_circuit::ilang::write_ilang;
use walshcheck_circuit::netlist::Netlist;
use walshcheck_dd::backend::Backend;
use walshcheck_dd::var::VarId;

use crate::checkpoint::{self, CheckpointConfig, ResumeState};
use crate::engine::{EngineKind, Verifier, VerifyOptions};
use crate::error::Error;
use crate::hash::sha256_hex;
use crate::json::Json;
use crate::observe::ProgressObserver;
use crate::property::{CheckMode, Property, Verdict};
use crate::recover::RescueConfig;
use crate::scheduler::{self, SetupTimings};

/// The serializable description of one verification run.
///
/// Construct with [`JobSpec::new`]; the struct is `#[non_exhaustive]`, so
/// fields may be added without breaking callers (adjust them through the
/// public fields or the accessors after construction).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct JobSpec {
    /// The property to check.
    pub property: Property,
    /// Engine options (backend, mode, sites, prefilter, budgets, cache).
    pub options: VerifyOptions,
    /// Worker threads (results are independent of this; clamped to ≥ 1).
    pub threads: usize,
    /// Post-sweep rescue-ladder configuration.
    pub rescue: RescueConfig,
    /// Wall-clock deadline for one *attempt* at this job, enforced by the
    /// daemon's supervisor (not by [`Job::run`] itself): when it elapses the
    /// sweep is interrupted at a batch boundary, the checkpoint flushed, and
    /// the job transitioned to `timed-out`. `None` means no deadline. Like
    /// `threads`, this is a speed/robustness knob excluded from the identity
    /// hash — an interrupted-and-resumed run is byte-identical to an
    /// uninterrupted one, so the deadline cannot change the result.
    pub timeout_secs: Option<u64>,
}

impl JobSpec {
    /// A spec checking `property` with the default options (MAPI engine,
    /// joint mode, one thread, rescue off).
    pub fn new(property: Property) -> Self {
        JobSpec {
            property,
            options: VerifyOptions::default(),
            threads: 1,
            rescue: RescueConfig::default(),
            timeout_secs: None,
        }
    }

    /// The property to check.
    pub fn property(&self) -> Property {
        self.property
    }

    /// The engine backend.
    pub fn engine(&self) -> EngineKind {
        self.options.engine
    }

    /// Row-wise or joint checking.
    pub fn mode(&self) -> CheckMode {
        self.options.mode
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// The full configuration as a JSON value (canonical via
    /// [`Json::to_canonical`]); inverse of [`JobSpec::parse`].
    pub fn to_json(&self) -> Json {
        let mut obj = self.identity_object();
        obj.insert("threads".into(), Json::Int(self.threads() as i64));
        obj.insert(
            "cache".into(),
            Json::obj([
                ("enabled", Json::Bool(self.options.cache)),
                ("budget_bytes", Json::Int(self.options.cache_budget as i64)),
            ]),
        );
        // The DD backend is configuration, not identity: report artifacts
        // are byte-identical across backends (DESIGN.md §14), so results
        // are shared across submissions that differ only here.
        obj.insert("backend".into(), Json::str(self.options.backend.as_str()));
        // Same for the PR-10 speed knobs: the dense spectral kernels are
        // exact (DESIGN.md §17) and auto-sift screening re-derives every
        // violation in the original order, so neither can change a result.
        obj.insert(
            "dense_cut".into(),
            Json::Int(i64::from(self.options.dense_cut)),
        );
        obj.insert("sift".into(), Json::str(self.options.sift.as_str()));
        // The daemon deadline is likewise a robustness knob: interrupted
        // attempts resume byte-identically, so the deadline never changes
        // what the job computes — only how patiently the daemon waits.
        obj.insert(
            "timeout_secs".into(),
            match self.timeout_secs {
                Some(s) => Json::Int(s.min(i64::MAX as u64) as i64),
                None => Json::Null,
            },
        );
        Json::Obj(obj)
    }

    /// The result identity as a JSON value: [`JobSpec::to_json`] minus
    /// `threads` and the prefix-cache knobs. Everything in here can change
    /// the verdict, the witness, or the quarantine list; everything left
    /// out is proven not to (DESIGN.md §8/§9), so results may be shared
    /// across configurations that differ only in the omitted fields.
    pub fn identity_json(&self) -> Json {
        Json::Obj(self.identity_object())
    }

    fn identity_object(&self) -> std::collections::BTreeMap<String, Json> {
        let o = &self.options;
        let mut map = std::collections::BTreeMap::new();
        map.insert(
            "property".into(),
            Json::obj([
                ("kind", Json::str(self.property.kind())),
                ("order", Json::Int(i64::from(self.property.order()))),
            ]),
        );
        map.insert("engine".into(), Json::str(o.engine.as_str()));
        map.insert("mode".into(), Json::str(o.mode.as_str()));
        map.insert(
            "sites".into(),
            Json::obj([
                (
                    "probe_model",
                    Json::str(match o.sites.probe_model {
                        ProbeModel::Standard => "standard",
                        ProbeModel::Glitch => "glitch",
                    }),
                ),
                ("include_inputs", Json::Bool(o.sites.include_inputs)),
                ("dedup", Json::Bool(o.sites.dedup)),
            ]),
        );
        map.insert("prefilter".into(), Json::Bool(o.prefilter));
        map.insert("largest_first".into(), Json::Bool(o.largest_first));
        // Pre-sifting changes which combinations fit a node budget, so it
        // is identity-relevant (unlike the verdict-neutral backend knob).
        map.insert("presift".into(), Json::Bool(o.presift));
        map.insert(
            "time_limit_ms".into(),
            match o.time_limit {
                Some(d) => Json::Int(d.as_millis().min(i64::MAX as u128) as i64),
                None => Json::Null,
            },
        );
        map.insert(
            "node_budget".into(),
            match o.node_budget {
                Some(n) => Json::Int(n as i64),
                None => Json::Null,
            },
        );
        map.insert(
            "rescue".into(),
            Json::obj([
                ("enabled", Json::Bool(self.rescue.enabled)),
                ("attempts", Json::Int(i64::from(self.rescue.attempts))),
                ("budget_bytes", Json::Int(self.rescue.budget_bytes as i64)),
            ]),
        );
        map
    }

    /// SHA-256 over the canonical bytes of [`JobSpec::identity_json`].
    pub fn identity_hash(&self) -> String {
        sha256_hex(self.identity_json().to_canonical().as_bytes())
    }

    /// Reconstructs a spec from the JSON form of [`JobSpec::to_json`].
    /// `property` is required; every other field defaults like
    /// [`JobSpec::new`] when absent, so sparse submissions work.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when `property` is missing or any present field
    /// has an unknown value.
    pub fn parse(doc: &Json) -> Result<JobSpec, Error> {
        let bad = |what: &str| Error::Config(format!("job spec: {what}"));
        let property = doc.get("property").ok_or_else(|| bad("missing property"))?;
        let kind = property
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("property.kind must be a string"))?;
        let order = property
            .get("order")
            .and_then(Json::as_u64)
            .and_then(|o| u32::try_from(o).ok())
            .ok_or_else(|| bad("property.order must be a non-negative integer"))?;
        if order == 0 {
            return Err(bad("property.order must be at least 1"));
        }
        let property = Property::from_kind(kind, order)
            .ok_or_else(|| bad(&format!("unknown property kind {kind:?}")))?;
        let mut spec = JobSpec::new(property);
        let o = &mut spec.options;
        if let Some(engine) = doc.get("engine") {
            let name = engine
                .as_str()
                .ok_or_else(|| bad("engine must be a string"))?;
            o.engine =
                EngineKind::parse(name).ok_or_else(|| bad(&format!("unknown engine {name:?}")))?;
        }
        if let Some(mode) = doc.get("mode") {
            let name = mode.as_str().ok_or_else(|| bad("mode must be a string"))?;
            o.mode =
                CheckMode::parse(name).ok_or_else(|| bad(&format!("unknown mode {name:?}")))?;
        }
        if let Some(sites) = doc.get("sites") {
            if let Some(model) = sites.get("probe_model") {
                o.sites.probe_model = match model.as_str() {
                    Some("standard") => ProbeModel::Standard,
                    Some("glitch") => ProbeModel::Glitch,
                    _ => return Err(bad("sites.probe_model must be \"standard\" or \"glitch\"")),
                };
            }
            if let Some(v) = sites.get("include_inputs") {
                o.sites.include_inputs = v.as_bool().ok_or_else(|| bad("sites.include_inputs"))?;
            }
            if let Some(v) = sites.get("dedup") {
                o.sites.dedup = v.as_bool().ok_or_else(|| bad("sites.dedup"))?;
            }
        }
        if let Some(v) = doc.get("prefilter") {
            o.prefilter = v.as_bool().ok_or_else(|| bad("prefilter"))?;
        }
        if let Some(v) = doc.get("largest_first") {
            o.largest_first = v.as_bool().ok_or_else(|| bad("largest_first"))?;
        }
        if let Some(v) = doc.get("presift") {
            o.presift = v.as_bool().ok_or_else(|| bad("presift"))?;
        }
        if let Some(v) = doc.get("dense_cut") {
            o.dense_cut = v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad("dense_cut"))?;
        }
        if let Some(v) = doc.get("sift") {
            let name = v.as_str().ok_or_else(|| bad("sift must be a string"))?;
            o.sift = crate::engine::SiftMode::parse(name)
                .ok_or_else(|| bad(&format!("unknown sift mode {name:?}")))?;
        }
        if let Some(v) = doc.get("backend") {
            let name = v.as_str().ok_or_else(|| bad("backend must be a string"))?;
            o.backend =
                Backend::parse(name).ok_or_else(|| bad(&format!("unknown backend {name:?}")))?;
        }
        match doc.get("time_limit_ms") {
            None | Some(Json::Null) => {}
            Some(v) => {
                let ms = v.as_u64().ok_or_else(|| bad("time_limit_ms"))?;
                o.time_limit = Some(Duration::from_millis(ms));
            }
        }
        match doc.get("node_budget") {
            None | Some(Json::Null) => {}
            Some(v) => {
                let n = v
                    .as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| bad("node_budget"))?;
                o.node_budget = Some(n);
            }
        }
        if let Some(cache) = doc.get("cache") {
            if let Some(v) = cache.get("enabled") {
                o.cache = v.as_bool().ok_or_else(|| bad("cache.enabled"))?;
            }
            if let Some(v) = cache.get("budget_bytes") {
                o.cache_budget = v
                    .as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| bad("cache.budget_bytes"))?;
            }
        }
        if let Some(rescue) = doc.get("rescue") {
            if let Some(v) = rescue.get("enabled") {
                spec.rescue.enabled = v.as_bool().ok_or_else(|| bad("rescue.enabled"))?;
            }
            if let Some(v) = rescue.get("attempts") {
                spec.rescue.attempts = v
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad("rescue.attempts"))?;
            }
            if let Some(v) = rescue.get("budget_bytes") {
                spec.rescue.budget_bytes = v
                    .as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| bad("rescue.budget_bytes"))?;
            }
        }
        if let Some(v) = doc.get("threads") {
            spec.threads = v
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| bad("threads"))?
                .max(1);
        }
        match doc.get("timeout_secs") {
            None | Some(Json::Null) => {}
            Some(v) => {
                spec.timeout_secs = Some(v.as_u64().ok_or_else(|| bad("timeout_secs"))?);
            }
        }
        Ok(spec)
    }
}

/// SHA-256 over the canonical ILANG dump of `netlist` — the netlist half of
/// the artifact-store cache key. The dump is deterministic (sorted,
/// name-stable), so structurally identical netlists hash identically no
/// matter how they were built or parsed.
pub fn netlist_sha256(netlist: &Netlist) -> String {
    sha256_hex(write_ilang(netlist).as_bytes())
}

/// A prepared verification run: a [`JobSpec`] bound to a [`Verifier`] for
/// one netlist, plus the run-scoped state (observer, checkpointing, a
/// pending resume). The single execution path shared by [`crate::Session`],
/// the CLI and the daemon.
pub struct Job {
    verifier: Verifier,
    spec: JobSpec,
    observer: Option<Arc<dyn ProgressObserver>>,
    checkpoint: Option<CheckpointConfig>,
    resume: Option<ResumeState>,
    interrupt: Option<Arc<std::sync::atomic::AtomicBool>>,
    setup: SetupTimings,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("spec", &self.spec)
            .field("observer", &self.observer.is_some())
            .field("checkpoint", &self.checkpoint)
            .finish_non_exhaustive()
    }
}

impl Job {
    /// Validates and unfolds `netlist`, binding it to `spec`. Setup work
    /// happens once here; repeated [`Job::run`] calls reuse it.
    ///
    /// # Errors
    ///
    /// [`Error::Netlist`] if the netlist is structurally invalid or cyclic,
    /// [`Error::Capacity`] if it has more input variables than a spectral
    /// coordinate can index.
    pub fn new(netlist: &Netlist, spec: JobSpec) -> Result<Self, Error> {
        if netlist.inputs.len() > VarId::MAX_VARS as usize {
            return Err(Error::Capacity(format!(
                "{} input variables (limit {})",
                netlist.inputs.len(),
                VarId::MAX_VARS
            )));
        }
        let t = Instant::now();
        netlist.validate()?;
        let validate = t.elapsed();
        let t = Instant::now();
        let verifier = Verifier::new(netlist)?;
        let unfold = t.elapsed();
        Ok(Job {
            verifier,
            spec,
            observer: None,
            checkpoint: None,
            resume: None,
            interrupt: None,
            setup: SetupTimings { validate, unfold },
        })
    }

    /// The job's specification.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Mutable access to the specification (reconfigure between runs).
    pub fn spec_mut(&mut self) -> &mut JobSpec {
        &mut self.spec
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &Netlist {
        self.verifier.netlist()
    }

    /// The underlying verifier, for advanced per-combination queries.
    pub fn verifier_mut(&mut self) -> &mut Verifier {
        &mut self.verifier
    }

    /// Registers a progress observer receiving scheduler callbacks.
    pub fn set_observer(&mut self, observer: Arc<dyn ProgressObserver>) {
        self.observer = Some(observer);
    }

    /// Registers a *job-scoped* interrupt token. When the token is raised
    /// the sweep drains at the next batch boundary exactly as a
    /// process-global [`crate::shutdown::request`] would — checkpoint
    /// flushed, verdict `Inconclusive(Interrupted)` — but only *this* run
    /// stops; concurrent jobs in the same process (a `walshcheckd` runner
    /// pool) keep sweeping. The global flag still interrupts every run.
    pub fn set_interrupt(&mut self, token: Arc<std::sync::atomic::AtomicBool>) {
        self.interrupt = Some(token);
    }

    /// Periodically persists run progress to `path` (at most every
    /// `every`; [`Duration::ZERO`] writes after every completed batch).
    pub fn checkpoint_to(&mut self, path: impl Into<std::path::PathBuf>, every: Duration) {
        self.checkpoint = Some(CheckpointConfig::new(path, every));
    }

    /// [`Job::checkpoint_to`] writing through an explicit I/O layer —
    /// how the daemon routes checkpoint writes through its store's
    /// (possibly tracing) filesystem shim.
    pub fn checkpoint_to_with(
        &mut self,
        path: impl Into<std::path::PathBuf>,
        every: Duration,
        fs: std::sync::Arc<dyn crate::iofs::IoFs>,
    ) {
        self.checkpoint = Some(CheckpointConfig::new(path, every).with_fs(fs));
    }

    /// Seeds the *next* [`Job::run`] from a checkpoint file: completed
    /// combinations are skipped and the recorded evidence is carried over.
    /// The resumed verdict is identical to an uninterrupted run's. The
    /// checkpoint is validated against a fingerprint of the netlist, the
    /// property and the enumeration-relevant options as configured *now* —
    /// reconfigure the spec first.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if `path` cannot be read, [`Error::Checkpoint`] if the
    /// file is malformed or does not match this job's fingerprint.
    pub fn resume_from(&mut self, path: impl AsRef<Path>) -> Result<(), Error> {
        let text = std::fs::read_to_string(path.as_ref())?;
        let ck = checkpoint::parse(&text)?;
        let expect = checkpoint::fingerprint(
            self.verifier.netlist(),
            self.spec.property,
            &self.spec.options,
        );
        if ck.fingerprint != expect {
            return Err(Error::Checkpoint(format!(
                "fingerprint mismatch: checkpoint was written for {} ({}), this job is {} ({})",
                ck.fingerprint, ck.property, expect, self.spec.property
            )));
        }
        self.resume = Some(ck.into_resume());
        Ok(())
    }

    /// Runs the job. A pending resume seeds exactly this run; later runs
    /// sweep fresh.
    pub fn run(&mut self) -> Verdict {
        let resume = self.resume.take();
        scheduler::run(
            &mut self.verifier,
            self.spec.property,
            &self.spec.options,
            self.spec.threads.max(1),
            self.observer.as_ref(),
            self.setup,
            self.checkpoint.as_ref(),
            resume,
            &self.spec.rescue,
            self.interrupt.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spec() -> JobSpec {
        let mut s = JobSpec::new(Property::Sni(2));
        s.options.engine = EngineKind::Map;
        s.options.node_budget = Some(4096);
        s.threads = 4;
        s.rescue.enabled = true;
        s
    }

    #[test]
    fn spec_round_trips_through_canonical_json() {
        let s = spec();
        let text = s.to_json().to_canonical();
        let back = JobSpec::parse(&json::parse(&text).expect("valid")).expect("parses");
        assert_eq!(back.to_json().to_canonical(), text);
        assert_eq!(back.property, Property::Sni(2));
        assert_eq!(back.options.engine, EngineKind::Map);
        assert_eq!(back.options.node_budget, Some(4096));
        assert_eq!(back.threads, 4);
        assert!(back.rescue.enabled);
    }

    #[test]
    fn identity_ignores_threads_and_cache() {
        let a = spec();
        let mut b = spec();
        b.threads = 1;
        b.options.cache = false;
        b.options.cache_budget = 7;
        assert_eq!(a.identity_hash(), b.identity_hash());
        assert_ne!(
            a.to_json().to_canonical(),
            b.to_json().to_canonical(),
            "the full form still distinguishes them"
        );
        let mut c = spec();
        c.options.engine = EngineKind::Lil;
        assert_ne!(a.identity_hash(), c.identity_hash());
    }

    #[test]
    fn identity_ignores_timeout_secs() {
        let a = spec();
        let mut b = spec();
        b.timeout_secs = Some(90);
        assert_eq!(
            a.identity_hash(),
            b.identity_hash(),
            "the deadline is supervision policy, not result identity"
        );
        assert_ne!(
            a.to_json().to_canonical(),
            b.to_json().to_canonical(),
            "the full form still records the deadline"
        );
        let round = JobSpec::parse(&json::parse(&b.to_json().to_canonical()).expect("valid"))
            .expect("parses");
        assert_eq!(round.timeout_secs, Some(90));
    }

    #[test]
    fn identity_ignores_backend_but_not_presift() {
        let a = spec();
        let mut b = spec();
        b.options.backend = Backend::Shared;
        assert_eq!(
            a.identity_hash(),
            b.identity_hash(),
            "backend is a speed knob, not a result identity"
        );
        assert_ne!(
            a.to_json().to_canonical(),
            b.to_json().to_canonical(),
            "the full form still records the backend"
        );
        let round = JobSpec::parse(&json::parse(&b.to_json().to_canonical()).expect("valid"))
            .expect("parses");
        assert_eq!(round.options.backend, Backend::Shared);
        let mut c = spec();
        c.options.presift = true;
        assert_ne!(
            a.identity_hash(),
            c.identity_hash(),
            "presift changes quarantine lists, so it is identity-relevant"
        );
    }

    #[test]
    fn sparse_submission_defaults() {
        let doc = json::parse(r#"{"property":{"kind":"pini","order":1}}"#).expect("valid");
        let s = JobSpec::parse(&doc).expect("parses");
        assert_eq!(s.property, Property::Pini(1));
        assert_eq!(s.threads, 1);
        assert_eq!(s.options.engine, EngineKind::Mapi);
        assert!(!s.rescue.enabled);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            r#"{}"#,
            r#"{"property":{"kind":"sni"}}"#,
            r#"{"property":{"kind":"sni","order":0}}"#,
            r#"{"property":{"kind":"nope","order":1}}"#,
            r#"{"property":{"kind":"sni","order":1},"engine":"cudd"}"#,
            r#"{"property":{"kind":"sni","order":1},"mode":7}"#,
            r#"{"property":{"kind":"sni","order":1},"sites":{"probe_model":"x"}}"#,
        ] {
            let doc = json::parse(bad).expect("valid json");
            assert!(JobSpec::parse(&doc).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn job_runs_a_spec() {
        use walshcheck_circuit::builder::NetlistBuilder;
        let mut b = NetlistBuilder::new("job-demo");
        let x = b.secret("x");
        let a0 = b.share(x, 0);
        let a1 = b.share(x, 1);
        let r = b.random("r");
        let t = b.xor(a0, r);
        let q = b.xor(t, a1);
        let o = b.output("q");
        b.output_share(q, o, 0);
        let netlist = b.build().expect("valid");
        let mut job = Job::new(&netlist, JobSpec::new(Property::Sni(1))).expect("valid");
        let verdict = job.run();
        assert_eq!(verdict.outcome, crate::property::Outcome::Secure);
        assert!(netlist_sha256(&netlist).len() == 64);
    }
}
