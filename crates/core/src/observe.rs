//! Run observability: progress callbacks from the scheduler.
//!
//! A [`ProgressObserver`] registered on a [`crate::Session`] receives
//! callbacks while a check runs: batches being claimed by workers,
//! combinations skipped by the prefilter, violations as they are found, and
//! the wall-time of each engine phase. All methods default to no-ops, so an
//! implementation only overrides what it cares about.
//!
//! [`ChannelObserver`] is the ready-made implementation: it forwards every
//! callback as a [`ProgressEvent`] value over an [`std::sync::mpsc`]
//! channel, decoupling the (hot) worker threads from however the events are
//! rendered — the CLI's `--progress` ticker and the JSON run-report are
//! both driven by draining the receiving end.

use std::sync::mpsc::{Receiver, SendError, Sender};
use std::sync::Mutex;
use std::time::Duration;

use crate::property::{CheckStats, Witness};

/// A named phase of a verification run, for timing callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePhase {
    /// Structural validation of the netlist.
    Validate,
    /// Symbolic unfolding of wire functions into BDDs.
    Unfold,
    /// Probe-site extraction.
    ExtractSites,
    /// The combination enumeration (batch dispatch until the queue drains).
    Enumerate,
    /// Aggregate time spent computing base spectra and convolutions
    /// (summed across workers).
    Convolution,
    /// Aggregate time spent testing rows against the property (summed
    /// across workers).
    Verification,
}

impl std::fmt::Display for EnginePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EnginePhase::Validate => "validate",
            EnginePhase::Unfold => "unfold",
            EnginePhase::ExtractSites => "extract-sites",
            EnginePhase::Enumerate => "enumerate",
            EnginePhase::Convolution => "convolution",
            EnginePhase::Verification => "verification",
        })
    }
}

/// Callbacks fired by the scheduler while a check runs.
///
/// Implementations must be `Send + Sync`: the callbacks arrive concurrently
/// from worker threads. Every method has a no-op default body.
pub trait ProgressObserver: Send + Sync {
    /// The run is starting: `sites` probe sites produce `total` combinations
    /// across the size buckets `(k, count_k)`, listed in enumeration order.
    fn run_started(&self, sites: usize, total: u64, buckets: &[(usize, u64)]) {
        let _ = (sites, total, buckets);
    }

    /// Worker `worker` claimed a batch of `len` combinations of size `k`
    /// starting at enumeration index `first_index`.
    fn batch_claimed(&self, worker: usize, k: usize, first_index: u64, len: usize) {
        let _ = (worker, k, first_index, len);
    }

    /// Worker `worker` finished a claimed batch, having actually processed
    /// `checked` combinations of which `pruned` were prefilter-skipped.
    fn batch_finished(&self, worker: usize, checked: u64, pruned: u64) {
        let _ = (worker, checked, pruned);
    }

    /// The combination at enumeration index `index` was skipped by the
    /// functional-support prefilter.
    fn combination_pruned(&self, worker: usize, index: u64) {
        let _ = (worker, index);
    }

    /// Worker `worker` found a violation at enumeration index `index`.
    /// Earlier-indexed batches may still be in flight; the winning witness
    /// (minimal index) is the one reported in the final verdict.
    fn violation_found(&self, worker: usize, index: u64, witness: &Witness) {
        let _ = (worker, index, witness);
    }

    /// Worker `worker` quarantined the combination at enumeration index
    /// `index` — it panicked or exhausted its node budget — and the sweep
    /// continued without it. The verdict will be at best
    /// [`crate::Outcome::Inconclusive`].
    fn combination_quarantined(
        &self,
        worker: usize,
        index: u64,
        reason: crate::property::IncompleteReason,
    ) {
        let _ = (worker, index, reason);
    }

    /// A checkpoint covering `combinations` completed combinations was
    /// written to `path`.
    fn checkpoint_written(&self, path: &std::path::Path, combinations: u64) {
        let _ = (path, combinations);
    }

    /// Phase `phase` took `elapsed` wall time (worker-summed for
    /// [`EnginePhase::Convolution`] / [`EnginePhase::Verification`]).
    fn phase_timing(&self, phase: EnginePhase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }

    /// Merged prefix-cache counters of all workers, reported once per run
    /// just before [`ProgressObserver::run_finished`] (all zero when the
    /// cache is disabled). `peak_bytes` is the sum of per-worker peaks —
    /// an upper bound on the simultaneous footprint.
    fn cache_stats(&self, hits: u64, misses: u64, evictions: u64, peak_bytes: u64) {
        let _ = (hits, misses, evictions, peak_bytes);
    }

    /// Merged decision-diagram-layer memo counters (Walsh sparse cache +
    /// partial-WHT memo) of all workers, reported once per run just before
    /// [`ProgressObserver::run_finished`] (all zero when the engines never
    /// touched the spectral memos). Telemetry only — these counters never
    /// enter the canonical report artifact.
    fn dd_cache_stats(&self, hits: u64, misses: u64, evictions: u64, peak_bytes: u64) {
        let _ = (hits, misses, evictions, peak_bytes);
    }

    /// The post-sweep rescue pass is starting on `quarantined` combinations
    /// (fires only when rescue is enabled and there is something to rescue).
    fn rescue_started(&self, quarantined: usize) {
        let _ = quarantined;
    }

    /// One rung of the escalation ladder ran for the quarantined
    /// combination at enumeration index `index`.
    fn rescue_attempt(&self, index: u64, attempt: &crate::recover::RescueAttempt) {
        let _ = (index, attempt);
    }

    /// The ladder for the combination at enumeration index `index` ended
    /// with `resolution`.
    fn rescue_resolved(&self, index: u64, resolution: crate::recover::RescueResolution) {
        let _ = (index, resolution);
    }

    /// The rescue pass is over; `report` summarises every ladder that ran.
    fn rescue_finished(&self, report: &crate::recover::RecoveryReport) {
        let _ = report;
    }

    /// The run is over; `stats` are the merged counters of all workers.
    fn run_finished(&self, stats: &CheckStats) {
        let _ = stats;
    }
}

/// One observer callback, reified as a value (what [`ChannelObserver`]
/// sends).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// See [`ProgressObserver::run_started`].
    RunStarted {
        /// Number of probe sites.
        sites: usize,
        /// Total combinations across all size buckets.
        total: u64,
        /// `(k, count_k)` per bucket, in enumeration order.
        buckets: Vec<(usize, u64)>,
    },
    /// See [`ProgressObserver::batch_claimed`].
    BatchClaimed {
        /// Claiming worker index.
        worker: usize,
        /// Combination size of the batch's bucket.
        k: usize,
        /// Enumeration index of the batch's first combination.
        first_index: u64,
        /// Number of combinations in the batch.
        len: usize,
    },
    /// See [`ProgressObserver::batch_finished`].
    BatchFinished {
        /// Worker index.
        worker: usize,
        /// Combinations actually processed in the batch.
        checked: u64,
        /// Of those, prefilter-skipped.
        pruned: u64,
    },
    /// See [`ProgressObserver::combination_pruned`].
    CombinationPruned {
        /// Worker index.
        worker: usize,
        /// Enumeration index of the pruned combination.
        index: u64,
    },
    /// See [`ProgressObserver::violation_found`].
    ViolationFound {
        /// Worker index.
        worker: usize,
        /// Enumeration index of the violating combination.
        index: u64,
        /// The violation evidence.
        witness: Witness,
    },
    /// See [`ProgressObserver::combination_quarantined`].
    CombinationQuarantined {
        /// Worker index.
        worker: usize,
        /// Enumeration index of the quarantined combination.
        index: u64,
        /// Why it could not be checked.
        reason: crate::property::IncompleteReason,
    },
    /// See [`ProgressObserver::checkpoint_written`].
    CheckpointWritten {
        /// Where the checkpoint was written.
        path: std::path::PathBuf,
        /// Completed combinations covered by the written frontier.
        combinations: u64,
    },
    /// See [`ProgressObserver::phase_timing`].
    PhaseTiming {
        /// The timed phase.
        phase: EnginePhase,
        /// Its wall time.
        elapsed: Duration,
    },
    /// See [`ProgressObserver::cache_stats`].
    CacheStats {
        /// Prefix-cache lookups served from the cache.
        hits: u64,
        /// Entries computed and inserted.
        misses: u64,
        /// Entries dropped (budget, oversized, or invalidation).
        evictions: u64,
        /// Summed per-worker peak footprint estimate, in bytes.
        peak_bytes: u64,
    },
    /// See [`ProgressObserver::dd_cache_stats`].
    DdCacheStats {
        /// Spectral-memo lookups served from a memo.
        hits: u64,
        /// Lookups that missed and computed fresh.
        misses: u64,
        /// Entries dropped by budget flushes or LRU eviction.
        evictions: u64,
        /// Summed per-worker peak footprint estimate, in bytes.
        peak_bytes: u64,
    },
    /// See [`ProgressObserver::rescue_started`].
    RescueStarted {
        /// Number of quarantined combinations entering the rescue pass.
        quarantined: usize,
    },
    /// See [`ProgressObserver::rescue_attempt`].
    RescueAttempted {
        /// Enumeration index of the combination being rescued.
        index: u64,
        /// The rung that ran and how it ended.
        attempt: crate::recover::RescueAttempt,
    },
    /// See [`ProgressObserver::rescue_resolved`].
    RescueResolved {
        /// Enumeration index of the combination.
        index: u64,
        /// How its escalation ladder ended.
        resolution: crate::recover::RescueResolution,
    },
    /// See [`ProgressObserver::rescue_finished`].
    RescueFinished {
        /// Ladders run (including resolutions carried from a resumed run).
        attempted: usize,
        /// Of those, resolved (clean or violated).
        resolved: usize,
        /// Of those, still quarantined after every rung.
        unresolved: usize,
    },
    /// See [`ProgressObserver::run_finished`].
    RunFinished {
        /// Merged counters of all workers.
        stats: CheckStats,
    },
}

/// A [`ProgressObserver`] that forwards every callback as a
/// [`ProgressEvent`] over an mpsc channel.
///
/// The sender side is mutex-wrapped ([`Sender`] is not `Sync`); send errors
/// (receiver dropped) are ignored so a consumer may stop listening at any
/// point without aborting the run.
#[derive(Debug)]
pub struct ChannelObserver {
    tx: Mutex<Sender<ProgressEvent>>,
}

impl ChannelObserver {
    /// A connected observer/receiver pair.
    pub fn new() -> (Self, Receiver<ProgressEvent>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (ChannelObserver { tx: Mutex::new(tx) }, rx)
    }

    fn send(&self, event: ProgressEvent) {
        // A poisoned mutex means a panicking sender thread; the observer is
        // best-effort, so both poisoning and a closed channel are ignored.
        if let Ok(tx) = self.tx.lock() {
            let _: Result<(), SendError<_>> = tx.send(event);
        }
    }
}

impl ProgressObserver for ChannelObserver {
    fn run_started(&self, sites: usize, total: u64, buckets: &[(usize, u64)]) {
        self.send(ProgressEvent::RunStarted {
            sites,
            total,
            buckets: buckets.to_vec(),
        });
    }

    fn batch_claimed(&self, worker: usize, k: usize, first_index: u64, len: usize) {
        self.send(ProgressEvent::BatchClaimed {
            worker,
            k,
            first_index,
            len,
        });
    }

    fn batch_finished(&self, worker: usize, checked: u64, pruned: u64) {
        self.send(ProgressEvent::BatchFinished {
            worker,
            checked,
            pruned,
        });
    }

    fn combination_pruned(&self, worker: usize, index: u64) {
        self.send(ProgressEvent::CombinationPruned { worker, index });
    }

    fn violation_found(&self, worker: usize, index: u64, witness: &Witness) {
        self.send(ProgressEvent::ViolationFound {
            worker,
            index,
            witness: witness.clone(),
        });
    }

    fn combination_quarantined(
        &self,
        worker: usize,
        index: u64,
        reason: crate::property::IncompleteReason,
    ) {
        self.send(ProgressEvent::CombinationQuarantined {
            worker,
            index,
            reason,
        });
    }

    fn checkpoint_written(&self, path: &std::path::Path, combinations: u64) {
        self.send(ProgressEvent::CheckpointWritten {
            path: path.to_path_buf(),
            combinations,
        });
    }

    fn phase_timing(&self, phase: EnginePhase, elapsed: Duration) {
        self.send(ProgressEvent::PhaseTiming { phase, elapsed });
    }

    fn cache_stats(&self, hits: u64, misses: u64, evictions: u64, peak_bytes: u64) {
        self.send(ProgressEvent::CacheStats {
            hits,
            misses,
            evictions,
            peak_bytes,
        });
    }

    fn dd_cache_stats(&self, hits: u64, misses: u64, evictions: u64, peak_bytes: u64) {
        self.send(ProgressEvent::DdCacheStats {
            hits,
            misses,
            evictions,
            peak_bytes,
        });
    }

    fn rescue_started(&self, quarantined: usize) {
        self.send(ProgressEvent::RescueStarted { quarantined });
    }

    fn rescue_attempt(&self, index: u64, attempt: &crate::recover::RescueAttempt) {
        self.send(ProgressEvent::RescueAttempted {
            index,
            attempt: attempt.clone(),
        });
    }

    fn rescue_resolved(&self, index: u64, resolution: crate::recover::RescueResolution) {
        self.send(ProgressEvent::RescueResolved { index, resolution });
    }

    fn rescue_finished(&self, report: &crate::recover::RecoveryReport) {
        self.send(ProgressEvent::RescueFinished {
            attempted: report.attempted,
            resolved: report.resolved,
            unresolved: report.unresolved,
        });
    }

    fn run_finished(&self, stats: &CheckStats) {
        self.send(ProgressEvent::RunFinished {
            stats: stats.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::Mask;

    #[test]
    fn channel_observer_forwards_events() {
        let (obs, rx) = ChannelObserver::new();
        obs.run_started(5, 10, &[(2, 10)]);
        obs.batch_claimed(0, 2, 0, 4);
        obs.combination_pruned(0, 1);
        let w = Witness {
            combination: vec![],
            mask: Mask(0b1),
            reason: "test".into(),
            coefficient: None,
        };
        obs.violation_found(0, 3, &w);
        obs.combination_quarantined(0, 4, crate::property::IncompleteReason::NodeBudget);
        obs.checkpoint_written(std::path::Path::new("run.ck"), 7);
        obs.batch_finished(0, 4, 1);
        obs.rescue_started(1);
        let attempt = crate::recover::RescueAttempt {
            rung: crate::recover::RescueRung::Budget,
            engine: crate::engine::EngineKind::Mapi,
            node_budget: Some(2),
            outcome: crate::recover::RescueAttemptOutcome::Clean,
        };
        obs.rescue_attempt(4, &attempt);
        obs.rescue_resolved(4, crate::recover::RescueResolution::Clean);
        obs.rescue_finished(&crate::recover::RecoveryReport {
            attempted: 1,
            resolved: 1,
            unresolved: 0,
            combinations: vec![],
        });
        obs.phase_timing(EnginePhase::Enumerate, Duration::from_millis(1));
        obs.cache_stats(8, 4, 1, 4096);
        obs.dd_cache_stats(16, 2, 3, 8192);
        obs.run_finished(&CheckStats::default());
        let events: Vec<ProgressEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 15);
        assert_eq!(events[7], ProgressEvent::RescueStarted { quarantined: 1 });
        assert!(matches!(
            events[8],
            ProgressEvent::RescueAttempted { index: 4, .. }
        ));
        assert_eq!(
            events[9],
            ProgressEvent::RescueResolved {
                index: 4,
                resolution: crate::recover::RescueResolution::Clean
            }
        );
        assert_eq!(
            events[10],
            ProgressEvent::RescueFinished {
                attempted: 1,
                resolved: 1,
                unresolved: 0
            }
        );
        assert_eq!(
            events[0],
            ProgressEvent::RunStarted {
                sites: 5,
                total: 10,
                buckets: vec![(2, 10)]
            }
        );
        assert!(matches!(
            events[3],
            ProgressEvent::ViolationFound { index: 3, .. }
        ));
        assert!(matches!(
            events[4],
            ProgressEvent::CombinationQuarantined {
                index: 4,
                reason: crate::property::IncompleteReason::NodeBudget,
                ..
            }
        ));
        assert!(matches!(
            events[5],
            ProgressEvent::CheckpointWritten {
                combinations: 7,
                ..
            }
        ));
        assert_eq!(
            events[12],
            ProgressEvent::CacheStats {
                hits: 8,
                misses: 4,
                evictions: 1,
                peak_bytes: 4096
            }
        );
        assert_eq!(
            events[13],
            ProgressEvent::DdCacheStats {
                hits: 16,
                misses: 2,
                evictions: 3,
                peak_bytes: 8192
            }
        );
        assert!(matches!(events[14], ProgressEvent::RunFinished { .. }));
    }

    #[test]
    fn dropped_receiver_does_not_panic() {
        let (obs, rx) = ChannelObserver::new();
        drop(rx);
        obs.batch_claimed(1, 1, 0, 1);
        obs.run_finished(&CheckStats::default());
    }

    #[test]
    fn phase_display_names() {
        assert_eq!(EnginePhase::ExtractSites.to_string(), "extract-sites");
        assert_eq!(EnginePhase::Convolution.to_string(), "convolution");
    }
}
