//! Exhaustive distribution-based verification (ground truth).
//!
//! This checker enumerates *joint probability distributions* directly — the
//! strategy of SILVER (Knichel, Sasdrich, Moradi, ASIACRYPT '20) — instead of
//! Walsh spectra. For each probe combination it tabulates the distribution
//! of observed values over the fresh randomness, conditioned on the
//! remaining inputs, and decides simulatability and statistical independence
//! by definition. It is exponential in the input count and only usable for
//! small gadgets, but involves no spectral reasoning at all, which makes it
//! the independent oracle the test-suite compares every engine against — and
//! the "SILVER-like" exact baseline of the Table III reproduction.

use std::collections::HashMap;
use std::ops::ControlFlow;
use std::time::Instant;

use walshcheck_circuit::glitch::observation_sets;
use walshcheck_circuit::netlist::{Netlist, NetlistError, OutputRole, WireId};
use walshcheck_circuit::sim::Simulator;

use crate::mask::{Mask, VarMap};
use crate::property::{CheckStats, ProbeRef, Property, Verdict, Witness};
use crate::sites::SiteOptions;

/// Hard cap on the enumerated input width (`2^24` assignments).
const MAX_INPUTS: usize = 24;

/// A probe site described purely structurally (no BDDs).
#[derive(Debug, Clone)]
struct RawSite {
    probe: ProbeRef,
    wires: Vec<WireId>,
    /// Input positions in the structural cone of the observed wires.
    support: Mask,
}

/// Exhaustively checks `property` on `netlist` by distribution enumeration.
///
/// # Errors
///
/// Fails if the netlist is invalid/cyclic, or wider than 24 inputs (the
/// enumeration would not terminate in reasonable time).
pub fn exhaustive_check(
    netlist: &Netlist,
    property: Property,
    site_options: &SiteOptions,
) -> Result<Verdict, NetlistError> {
    netlist.validate()?;
    if netlist.inputs.len() > MAX_INPUTS {
        return Err(NetlistError::BadSharing(format!(
            "exhaustive checker limited to {MAX_INPUTS} inputs, got {}",
            netlist.inputs.len()
        )));
    }
    let start = Instant::now();
    let vm = VarMap::from_netlist(netlist);
    let sim = Simulator::new(netlist)?;
    let cones = structural_cones(netlist);
    let sites = raw_sites(netlist, site_options, &cones)?;

    let d = property.order() as usize;
    let mut stats = CheckStats::default();
    let mut witness = None;

    let max_k = d.min(sites.len());
    'sizes: for k in (1..=max_k).rev() {
        let flow = combinations(sites.len(), k, &mut |idxs| {
            let combo: Vec<&RawSite> = idxs.iter().map(|&i| &sites[i]).collect();
            stats.combinations += 1;
            if let Some((mask, reason)) =
                check_combination(netlist, &sim, &vm, &combo, property, &mut stats)
            {
                witness = Some(Witness {
                    combination: combo.iter().map(|s| s.probe.clone()).collect(),
                    mask,
                    reason,
                    coefficient: None,
                });
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        if flow.is_break() {
            break 'sizes;
        }
    }
    stats.total_time = start.elapsed();
    Ok(Verdict::conclude(property, witness, vec![], stats))
}

/// For every wire, the mask of input positions it structurally depends on.
fn structural_cones(netlist: &Netlist) -> Vec<Mask> {
    let mut cone = vec![Mask::ZERO; netlist.num_wires()];
    for (pos, &(w, _)) in netlist.inputs.iter().enumerate() {
        cone[w.0 as usize] = Mask(1 << pos);
    }
    let order = walshcheck_circuit::topo::topo_order(netlist).expect("validated");
    for c in order {
        let cell = &netlist.cells[c.0 as usize];
        let mut acc = Mask::ZERO;
        for &i in &cell.inputs {
            acc = acc | cone[i.0 as usize];
        }
        cone[cell.output.0 as usize] = acc;
    }
    cone
}

fn raw_sites(
    netlist: &Netlist,
    options: &SiteOptions,
    cones: &[Mask],
) -> Result<Vec<RawSite>, NetlistError> {
    let obs = observation_sets(netlist, options.probe_model)?;
    let mut sites = Vec::new();
    let mut output_wires = std::collections::HashSet::new();
    for &(wire, role) in &netlist.outputs {
        if let OutputRole::Share { output, index } = role {
            output_wires.insert(wire);
            sites.push(RawSite {
                probe: ProbeRef::Output {
                    wire,
                    output,
                    index,
                },
                wires: vec![wire],
                support: cones[wire.0 as usize],
            });
        }
    }
    let input_wires: std::collections::HashSet<_> =
        netlist.inputs.iter().map(|&(w, _)| w).collect();
    #[allow(clippy::needless_range_loop)] // wid indexes obs in lock-step with wire ids
    for wid in 0..netlist.num_wires() {
        let wire = WireId(wid as u32);
        if output_wires.contains(&wire) {
            continue;
        }
        if input_wires.contains(&wire) && !options.include_inputs {
            continue;
        }
        let wires = obs[wid].clone();
        let support = wires
            .iter()
            .fold(Mask::ZERO, |a, w| a | cones[w.0 as usize]);
        sites.push(RawSite {
            probe: ProbeRef::Internal { wire },
            wires,
            support,
        });
    }
    Ok(sites)
}

/// Distribution check of one combination. Returns a violation description.
fn check_combination(
    netlist: &Netlist,
    sim: &Simulator<'_>,
    vm: &VarMap,
    combo: &[&RawSite],
    property: Property,
    stats: &mut CheckStats,
) -> Option<(Mask, String)> {
    let support = combo.iter().fold(Mask::ZERO, |a, s| a | s.support);
    let observed: Vec<WireId> = combo.iter().flat_map(|s| s.wires.iter().copied()).collect();
    let internal = combo.iter().filter(|s| s.probe.is_internal()).count() as u32;

    // Split the support into deterministic (shares+publics) and random parts.
    let det_positions: Vec<usize> = support
        .iter()
        .filter(|&p| !vm.randoms.contains(p))
        .collect();
    let rand_positions: Vec<usize> = support.iter().filter(|&p| vm.randoms.contains(p)).collect();

    // hist[x] = multiset of observed-value vectors over the randomness.
    let t = Instant::now();
    let mut hist: Vec<HashMap<u64, u32>> = Vec::with_capacity(1 << det_positions.len());
    for x in 0..1u64 << det_positions.len() {
        let mut h: HashMap<u64, u32> = HashMap::new();
        for r in 0..1u64 << rand_positions.len() {
            let mut assignment = 0u128;
            for (bi, &pos) in det_positions.iter().enumerate() {
                if x >> bi & 1 == 1 {
                    assignment |= 1 << pos;
                }
            }
            for (bi, &pos) in rand_positions.iter().enumerate() {
                if r >> bi & 1 == 1 {
                    assignment |= 1 << pos;
                }
            }
            let values = sim.eval_all(assignment);
            let mut q = 0u64;
            for (qi, w) in observed.iter().enumerate() {
                if values[w.0 as usize] {
                    q |= 1 << qi;
                }
            }
            *h.entry(q).or_insert(0) += 1;
        }
        hist.push(h);
    }
    stats.convolution_time += t.elapsed();

    let t = Instant::now();
    let result = match property {
        Property::Probing(_) => probing_violation(vm, &det_positions, &hist, support),
        Property::Ni(_) => budget_violation(vm, &det_positions, &hist, combo.len() as u32, None),
        Property::Sni(_) => budget_violation(vm, &det_positions, &hist, internal, None),
        Property::Pini(_) => {
            let mut allowed = 0u64;
            for site in combo {
                if let ProbeRef::Output { index, .. } = site.probe {
                    allowed |= 1 << index;
                }
            }
            budget_violation(vm, &det_positions, &hist, internal, Some(allowed))
        }
    };
    stats.verification_time += t.elapsed();
    stats.rows_checked += 1;
    let _ = netlist;
    result
}

/// The set of deterministic positions the conditional distribution actually
/// depends on: position `p` is relevant iff flipping it changes some
/// conditional histogram.
fn dependency_set(det_positions: &[usize], hist: &[HashMap<u64, u32>]) -> Mask {
    let mut dep = Mask::ZERO;
    for (bi, &pos) in det_positions.iter().enumerate() {
        'outer: for x in 0..hist.len() {
            let y = x ^ (1 << bi);
            if hist[x] != hist[y] {
                dep.0 |= 1 << pos;
                break 'outer;
            }
        }
    }
    dep
}

fn budget_violation(
    vm: &VarMap,
    det_positions: &[usize],
    hist: &[HashMap<u64, u32>],
    budget: u32,
    pini_allowed: Option<u64>,
) -> Option<(Mask, String)> {
    let dep = dependency_set(det_positions, hist);
    match pini_allowed {
        None => {
            for (i, &g) in vm.share_groups.iter().enumerate() {
                let w = dep.weight_in(g);
                if w > budget {
                    return Some((
                        dep,
                        format!(
                            "distribution depends on {w} shares of secret #{i} (budget {budget})"
                        ),
                    ));
                }
            }
            None
        }
        Some(allowed) => {
            let outside = (vm.share_indices(dep) & !allowed).count_ones();
            (outside > budget).then(|| {
                (
                    dep,
                    format!("distribution depends on {outside} non-output share indices (budget {budget})"),
                )
            })
        }
    }
}

/// Statistical-independence test against the raw secrets: for every fixed
/// public part, the mixture distribution conditioned on the secret values
/// must not vary with them.
fn probing_violation(
    vm: &VarMap,
    det_positions: &[usize],
    hist: &[HashMap<u64, u32>],
    support: Mask,
) -> Option<(Mask, String)> {
    // Secrets whose complete share set lies inside the support are the only
    // ones whose value constrains the enumerated assignments.
    let constrained: Vec<(usize, Mask)> = vm
        .share_groups
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.is_zero() && g.is_subset(support))
        .map(|(i, &g)| (i, g))
        .collect();
    if constrained.is_empty() {
        return None;
    }
    // Bit index of each deterministic position.
    let bit_of: HashMap<usize, usize> = det_positions
        .iter()
        .enumerate()
        .map(|(bi, &p)| (p, bi))
        .collect();
    let public_bits: Vec<usize> = det_positions
        .iter()
        .enumerate()
        .filter(|(_, &p)| vm.publics.contains(p))
        .map(|(bi, _)| bi)
        .collect();

    // Group assignments by (public part, secret values); sum histograms.
    let mut mixtures: HashMap<(u64, u64), HashMap<u64, u64>> = HashMap::new();
    for (x, h) in hist.iter().enumerate() {
        let x = x as u64;
        let mut pub_key = 0u64;
        for (k, &bi) in public_bits.iter().enumerate() {
            if x >> bi & 1 == 1 {
                pub_key |= 1 << k;
            }
        }
        let mut xi = 0u64;
        for (k, &(_, g)) in constrained.iter().enumerate() {
            let mut parity = false;
            for p in g.iter() {
                let bi = bit_of[&p];
                parity ^= x >> bi & 1 == 1;
            }
            if parity {
                xi |= 1 << k;
            }
        }
        let mix = mixtures.entry((pub_key, xi)).or_default();
        for (&q, &c) in h {
            *mix.entry(q).or_insert(0) += c as u64;
        }
    }
    // Within each public class, all secret classes must look identical.
    type MixtureRef<'a> = (u64, &'a HashMap<u64, u64>);
    let mut by_public: HashMap<u64, Vec<MixtureRef<'_>>> = HashMap::new();
    for ((p, xi), mix) in &mixtures {
        by_public.entry(*p).or_default().push((*xi, mix));
    }
    for (_, mut group) in by_public {
        group.sort_by_key(|&(xi, _)| xi);
        if let Some((_, first)) = group.first() {
            for (xi, mix) in &group[1..] {
                if **mix != **first {
                    let names: Vec<String> = constrained
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| xi >> k & 1 == 1)
                        .map(|(_, &(i, _))| format!("#{i}"))
                        .collect();
                    let tv = total_variation(first, mix);
                    return Some((
                        support,
                        format!(
                            "observed distribution varies with secret value(s) {}                              (statistical distance {tv:.4})",
                            names.join(", ")
                        ),
                    ));
                }
            }
        }
    }
    None
}

/// Total variation distance between two count histograms (normalized).
fn total_variation(a: &HashMap<u64, u64>, b: &HashMap<u64, u64>) -> f64 {
    let ta: u64 = a.values().sum();
    let tb: u64 = b.values().sum();
    if ta == 0 || tb == 0 {
        return 0.0;
    }
    let keys: std::collections::HashSet<u64> = a.keys().chain(b.keys()).copied().collect();
    let mut acc = 0.0;
    for k in keys {
        let pa = *a.get(&k).unwrap_or(&0) as f64 / ta as f64;
        let pb = *b.get(&k).unwrap_or(&0) as f64 / tb as f64;
        acc += (pa - pb).abs();
    }
    acc / 2.0
}

/// Local copy of the combination walker (kept independent of the engine so
/// the oracle shares no code with the implementations under test).
fn combinations(
    n: usize,
    k: usize,
    f: &mut dyn FnMut(&[usize]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    if k == 0 || k > n {
        return ControlFlow::Continue(());
    }
    let mut idxs: Vec<usize> = (0..k).collect();
    loop {
        f(&idxs)?;
        let mut i = k;
        loop {
            if i == 0 {
                return ControlFlow::Continue(());
            }
            i -= 1;
            if idxs[i] != i + n - k {
                break;
            }
        }
        idxs[i] += 1;
        for j in i + 1..k {
            idxs[j] = idxs[j - 1] + 1;
        }
    }
}

/// Checks that combinations with empty support are vacuously fine and the
/// width guard triggers. (Unit-testable helpers; full gadget-level oracle
/// tests live in the integration suite.)
#[cfg(test)]
mod tests {
    use super::*;
    use walshcheck_circuit::builder::NetlistBuilder;

    fn tiny_refresh() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r");
        let t = b.xor(a0, r);
        let q = b.xor(t, a1);
        let o = b.output("q");
        b.output_share(q, o, 0);
        b.build().expect("valid")
    }

    #[test]
    fn refresh_is_1_probing_secure_but_leaks_at_2() {
        let n = tiny_refresh();
        let opts = SiteOptions::default();
        let v1 = exhaustive_check(&n, Property::Probing(1), &opts).expect("ok");
        assert!(v1.secure, "{v1}");
        // Two probes (e.g. a0 and a0⊕r⊕a1 = the output) reveal nothing…
        // but a0, a1 probed together give the secret.
        let v2 = exhaustive_check(&n, Property::Probing(2), &opts).expect("ok");
        assert!(!v2.secure);
        let w = v2.witness.expect("witness");
        assert!(!w.combination.is_empty());
    }

    #[test]
    fn refresh_is_not_1_sni_on_the_passthrough() {
        // q = a0 ⊕ r ⊕ a1 as a single *output* is fine (i = 0, depends on
        // nothing after marginalizing r)… but probing the internal t = a0⊕r
        // plus nothing else is also fine. The gadget IS 1-SNI.
        let n = tiny_refresh();
        let v = exhaustive_check(&n, Property::Sni(1), &SiteOptions::default()).expect("ok");
        assert!(v.secure, "{v}");
    }

    #[test]
    fn unmasked_passthrough_fails_sni() {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let t = b.xor(a0, a1); // recombines the secret!
        let q = b.buf(t);
        let o = b.output("q");
        b.output_share(q, o, 0);
        let n = b.build().expect("valid");
        let v = exhaustive_check(&n, Property::Probing(1), &SiteOptions::default()).expect("ok");
        assert!(!v.secure);
        let v = exhaustive_check(&n, Property::Sni(1), &SiteOptions::default()).expect("ok");
        assert!(!v.secure);
    }

    #[test]
    fn width_guard_rejects_wide_netlists() {
        let mut b = NetlistBuilder::new("wide");
        let s = b.secret("x");
        let shares = b.shares(s, 26);
        let q = b.xor_all(&shares);
        let o = b.output("q");
        b.output_share(q, o, 0);
        let n = b.build().expect("valid");
        assert!(exhaustive_check(&n, Property::Probing(1), &SiteOptions::default()).is_err());
    }

    #[test]
    fn structural_cones_track_inputs() {
        let n = tiny_refresh();
        let cones = structural_cones(&n);
        // The output wire depends on all three inputs.
        let q = n.outputs[0].0;
        assert_eq!(cones[q.0 as usize].weight(), 3);
    }
}
