//! Checkpoint/resume for long verification sweeps (`walshcheck-checkpoint/1`).
//!
//! A run with checkpointing enabled periodically persists a small JSON
//! snapshot of its progress: a fingerprint binding the file to the exact
//! netlist + property + enumeration-relevant options, the frontier of
//! *completed* batch ranges in the deterministic global enumeration order,
//! the violation candidates and quarantined combinations found so far, and
//! batch-complete partial counters. A resumed run skips every combination
//! inside the completed frontier, re-checks everything else, and — because
//! enumeration order, batch boundaries, and minimal-index witness selection
//! are all deterministic (DESIGN.md §8/§10) — produces a verdict and witness
//! identical to an uninterrupted run.
//!
//! Combinations are stored as site-index vectors, not serialized witnesses:
//! masks and coefficients are recomputed on demand from the (fingerprinted)
//! netlist, which keeps the format small and engine-representation-free.
//!
//! Writes are atomic *and durable* (temp file + fsync + rename + parent
//! directory fsync, via [`crate::iofs::atomic_replace`]), so a kill or
//! power loss mid-write leaves the previous checkpoint intact — and a
//! completed write can no longer be undone by a crash that catches the
//! rename before the directory metadata reached the journal.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use walshcheck_circuit::ilang::write_ilang;
use walshcheck_circuit::netlist::Netlist;

use crate::engine::VerifyOptions;
use crate::error::Error;
use crate::json::{self, Json};
use crate::property::{IncompleteReason, Property};
use crate::report::json_escape;

/// Schema tag of the checkpoint format.
pub const CHECKPOINT_SCHEMA: &str = "walshcheck-checkpoint/1";

/// Where and how often a run persists its progress.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Target file; written atomically via a sibling temp file.
    pub path: PathBuf,
    /// Minimum interval between periodic writes. [`Duration::ZERO`] writes
    /// after every completed batch (useful for tests; expensive on real
    /// sweeps). A final write always happens when the run ends.
    pub every: Duration,
    /// The I/O layer the writes go through — [`crate::iofs::RealFs`] by
    /// default; a tracing shim when a crash-point explorer is recording
    /// the schedule.
    pub fs: Arc<dyn crate::iofs::IoFs>,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every `every` at most.
    pub fn new(path: impl Into<PathBuf>, every: Duration) -> Self {
        CheckpointConfig {
            path: path.into(),
            every,
            fs: crate::iofs::RealFs::shared(),
        }
    }

    /// The same configuration writing through `fs`.
    #[must_use]
    pub fn with_fs(mut self, fs: Arc<dyn crate::iofs::IoFs>) -> Self {
        self.fs = fs;
        self
    }
}

/// A sorted set of disjoint half-open `[start, end)` ranges of global
/// enumeration indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RangeSet {
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// Inserts `[start, end)`, merging with touching/overlapping ranges.
    pub(crate) fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find the insertion window of ranges that touch [start, end).
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        let mut new_start = start;
        let mut new_end = end;
        if lo < hi {
            new_start = new_start.min(self.ranges[lo].0);
            new_end = new_end.max(self.ranges[hi - 1].1);
        }
        self.ranges.splice(lo..hi, [(new_start, new_end)]);
    }

    /// Whether `index` falls inside any range.
    pub(crate) fn contains(&self, index: u64) -> bool {
        let i = self.ranges.partition_point(|&(_, e)| e <= index);
        self.ranges.get(i).is_some_and(|&(s, _)| s <= index)
    }

    pub(crate) fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// In-memory form of a parsed (or about-to-be-written) checkpoint.
#[derive(Debug, Clone, Default)]
pub(crate) struct Checkpoint {
    pub(crate) fingerprint: String,
    pub(crate) property: String,
    /// Combinations checked within *completed* batches only (redone batches
    /// are recounted by the resumed run, so nothing double-counts).
    pub(crate) combinations: u64,
    /// Prefilter prunes within completed batches.
    pub(crate) pruned: u64,
    pub(crate) completed: RangeSet,
    /// Violation candidates: `(global index, site indices)`.
    pub(crate) candidates: Vec<(u64, Vec<usize>)>,
    /// Quarantined combinations: `(global index, site indices, reason)`.
    pub(crate) skipped: Vec<(u64, Vec<usize>, IncompleteReason)>,
    /// Quarantines the rescue pass already resolved as clean, with the
    /// reason they were originally skipped for. Kept out of `skipped` so a
    /// resumed run does not replay their escalation ladders. Absent in
    /// files written before rescue existed — parsed as empty.
    pub(crate) rescued: Vec<(u64, Vec<usize>, IncompleteReason)>,
}

/// What the scheduler needs to resume: the frontier plus seeded evidence,
/// already filtered down to completed ranges (anything outside them will be
/// re-discovered deterministically by the resumed sweep).
#[derive(Debug, Clone, Default)]
pub(crate) struct ResumeState {
    pub(crate) completed: RangeSet,
    pub(crate) combinations: u64,
    pub(crate) pruned: u64,
    pub(crate) candidates: Vec<(u64, Vec<usize>)>,
    pub(crate) skipped: Vec<(u64, Vec<usize>, IncompleteReason)>,
    pub(crate) rescued: Vec<(u64, Vec<usize>, IncompleteReason)>,
}

impl Checkpoint {
    pub(crate) fn into_resume(self) -> ResumeState {
        let completed = self.completed;
        let candidates = self
            .candidates
            .into_iter()
            .filter(|&(i, _)| completed.contains(i))
            .collect();
        let skipped = self
            .skipped
            .into_iter()
            .filter(|&(i, _, _)| completed.contains(i))
            .collect();
        let rescued = self
            .rescued
            .into_iter()
            .filter(|&(i, _, _)| completed.contains(i))
            .collect();
        ResumeState {
            completed,
            combinations: self.combinations,
            pruned: self.pruned,
            candidates,
            skipped,
            rescued,
        }
    }
}

/// 64-bit FNV-1a over the canonical run identity: the netlist's ILANG dump,
/// the property, and every option that influences the enumeration order or
/// per-combination results (engine, mode, site extraction, prefilter,
/// largest-first, node budget, presift). Deliberately excluded:
/// `time_limit` (a resumed run usually changes it), `threads` (results are
/// thread-count independent by design), the prefix cache knobs (proven
/// verdict-neutral, DESIGN.md §9), and the DD backend (byte-identical
/// results by construction, DESIGN.md §14 — a run checkpointed on one
/// backend may resume on the other).
pub fn fingerprint(netlist: &Netlist, property: Property, options: &VerifyOptions) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    write(write_ilang(netlist).as_bytes());
    write(property.to_string().as_bytes());
    write(
        format!(
            "|{:?}|{:?}|{:?}|{}|{}|{:?}|{}",
            options.engine,
            options.mode,
            options.sites,
            options.prefilter,
            options.largest_first,
            options.node_budget,
            options.presift,
        )
        .as_bytes(),
    );
    format!("{h:016x}")
}

/// Renders a checkpoint as `walshcheck-checkpoint/1` JSON.
pub(crate) fn render(ck: &Checkpoint) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"schema\":\"");
    out.push_str(CHECKPOINT_SCHEMA);
    out.push_str("\",\"fingerprint\":\"");
    out.push_str(&json_escape(&ck.fingerprint));
    out.push_str("\",\"property\":\"");
    out.push_str(&json_escape(&ck.property));
    out.push_str("\",\"combinations\":");
    out.push_str(&ck.combinations.to_string());
    out.push_str(",\"pruned\":");
    out.push_str(&ck.pruned.to_string());
    out.push_str(",\"completed\":[");
    for (i, (s, e)) in ck.completed.ranges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{s},{e}]"));
    }
    out.push_str("],\"candidates\":[");
    for (i, (index, sites)) in ck.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"index\":{index},\"sites\":{}}}",
            render_usize_list(sites)
        ));
    }
    out.push_str("],\"skipped\":[");
    for (i, (index, sites, reason)) in ck.skipped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"index\":{index},\"sites\":{},\"reason\":\"{}\"}}",
            render_usize_list(sites),
            reason.as_str()
        ));
    }
    out.push_str("],\"rescued\":[");
    for (i, (index, sites, reason)) in ck.rescued.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"index\":{index},\"sites\":{},\"reason\":\"{}\"}}",
            render_usize_list(sites),
            reason.as_str()
        ));
    }
    out.push_str("]}");
    out
}

fn render_usize_list(v: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
    s
}

/// Parses and structurally validates a checkpoint document. Fingerprint
/// *matching* is the caller's job ([`crate::Session::resume_from`]) — the
/// parser has no netlist to compare against.
pub(crate) fn parse(text: &str) -> Result<Checkpoint, Error> {
    let doc = json::parse(text).map_err(Error::Checkpoint)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| Error::Checkpoint("missing schema".into()))?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(Error::Checkpoint(format!(
            "unsupported schema {schema:?} (expected {CHECKPOINT_SCHEMA:?})"
        )));
    }
    let str_field = |key: &str| -> Result<String, Error> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| Error::Checkpoint(format!("missing string field {key:?}")))
    };
    let u64_field = |key: &str| -> Result<u64, Error> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| Error::Checkpoint(format!("missing integer field {key:?}")))
    };
    let arr_field = |key: &str| -> Result<&[Json], Error> {
        doc.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::Checkpoint(format!("missing array field {key:?}")))
    };

    let mut completed = RangeSet::default();
    for pair in arr_field("completed")? {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| Error::Checkpoint("completed entries must be [start,end]".into()))?;
        let (s, e) = (
            pair[0]
                .as_u64()
                .ok_or_else(|| Error::Checkpoint("bad range start".into()))?,
            pair[1]
                .as_u64()
                .ok_or_else(|| Error::Checkpoint("bad range end".into()))?,
        );
        if s > e {
            return Err(Error::Checkpoint(format!("inverted range [{s},{e}]")));
        }
        completed.insert(s, e);
    }

    let sites_of = |entry: &Json| -> Result<Vec<usize>, Error> {
        entry
            .get("sites")
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::Checkpoint("entry missing sites".into()))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|u| usize::try_from(u).ok())
                    .ok_or_else(|| Error::Checkpoint("bad site index".into()))
            })
            .collect()
    };
    let index_of = |entry: &Json| -> Result<u64, Error> {
        entry
            .get("index")
            .and_then(Json::as_u64)
            .ok_or_else(|| Error::Checkpoint("entry missing index".into()))
    };

    let mut candidates = Vec::new();
    for entry in arr_field("candidates")? {
        candidates.push((index_of(entry)?, sites_of(entry)?));
    }
    let mut skipped = Vec::new();
    for entry in arr_field("skipped")? {
        let reason = entry
            .get("reason")
            .and_then(Json::as_str)
            .and_then(IncompleteReason::parse)
            .ok_or_else(|| Error::Checkpoint("entry has unknown reason".into()))?;
        skipped.push((index_of(entry)?, sites_of(entry)?, reason));
    }
    // Tolerant of files written before the rescue pass existed: the array
    // is simply absent there.
    let mut rescued = Vec::new();
    if let Some(entries) = doc.get("rescued").and_then(Json::as_arr) {
        for entry in entries {
            let reason = entry
                .get("reason")
                .and_then(Json::as_str)
                .and_then(IncompleteReason::parse)
                .ok_or_else(|| Error::Checkpoint("entry has unknown reason".into()))?;
            rescued.push((index_of(entry)?, sites_of(entry)?, reason));
        }
    }

    Ok(Checkpoint {
        fingerprint: str_field("fingerprint")?,
        property: str_field("property")?,
        combinations: u64_field("combinations")?,
        pruned: u64_field("pruned")?,
        completed,
        candidates,
        skipped,
        rescued,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_set_merges_and_queries() {
        let mut r = RangeSet::default();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.ranges(), &[(10, 20), (30, 40)]);
        r.insert(20, 30); // bridges the gap
        assert_eq!(r.ranges(), &[(10, 40)]);
        r.insert(5, 7);
        r.insert(50, 50); // empty: ignored
        assert_eq!(r.ranges(), &[(5, 7), (10, 40)]);
        assert!(r.contains(5));
        assert!(!r.contains(7));
        assert!(r.contains(39));
        assert!(!r.contains(40));
        assert!(!r.contains(8));
        assert!(!RangeSet::default().contains(0));
    }

    #[test]
    fn checkpoint_round_trips() {
        let mut completed = RangeSet::default();
        completed.insert(0, 16);
        completed.insert(32, 48);
        let ck = Checkpoint {
            fingerprint: "00deadbeef00cafe".into(),
            property: "2-SNI".into(),
            combinations: 30,
            pruned: 4,
            completed,
            candidates: vec![(5, vec![0, 3])],
            skipped: vec![(7, vec![1, 2], IncompleteReason::NodeBudget)],
            rescued: vec![(9, vec![0, 4], IncompleteReason::WorkerFailure)],
        };
        let text = render(&ck);
        assert!(text.starts_with("{\"schema\":\"walshcheck-checkpoint/1\""));
        let back = parse(&text).expect("round trip");
        assert_eq!(back.fingerprint, ck.fingerprint);
        assert_eq!(back.property, ck.property);
        assert_eq!(back.combinations, 30);
        assert_eq!(back.pruned, 4);
        assert_eq!(back.completed, ck.completed);
        assert_eq!(back.candidates, ck.candidates);
        assert_eq!(back.skipped, ck.skipped);
        assert_eq!(back.rescued, ck.rescued);
    }

    #[test]
    fn parse_tolerates_missing_rescued_array() {
        // Files written before the rescue pass existed have no `rescued`.
        let text = "{\"schema\":\"walshcheck-checkpoint/1\",\"fingerprint\":\"x\",\
             \"property\":\"p\",\"combinations\":1,\"pruned\":0,\"completed\":[[0,4]],\
             \"candidates\":[],\"skipped\":[]}";
        let back = parse(text).expect("legacy file parses");
        assert!(back.rescued.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{}",
            "{\"schema\":\"walshcheck-checkpoint/9\"}",
            "{\"schema\":\"walshcheck-checkpoint/1\",\"fingerprint\":\"x\",\"property\":\"p\",\
             \"combinations\":1,\"pruned\":0,\"completed\":[[3,1]],\"candidates\":[],\"skipped\":[]}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn resume_filters_to_completed_frontier() {
        let mut completed = RangeSet::default();
        completed.insert(0, 10);
        let ck = Checkpoint {
            fingerprint: String::new(),
            property: String::new(),
            combinations: 0,
            pruned: 0,
            completed,
            candidates: vec![(5, vec![1]), (15, vec![2])],
            skipped: vec![(3, vec![0], IncompleteReason::WorkerFailure)],
            rescued: vec![
                (4, vec![1], IncompleteReason::NodeBudget),
                (12, vec![2], IncompleteReason::NodeBudget),
            ],
        };
        let resume = ck.into_resume();
        assert_eq!(resume.candidates, vec![(5, vec![1])]);
        assert_eq!(resume.skipped.len(), 1);
        assert_eq!(
            resume.rescued,
            vec![(4, vec![1], IncompleteReason::NodeBudget)]
        );
    }
}
