//! A minimal JSON value type: parser plus canonical writer.
//!
//! The workspace emits JSON through hand-rolled writers (`report.rs`,
//! `checkpoint.rs`) because the container has no serde; checkpoint *resume*
//! additionally needs to read JSON back, so this module implements the small
//! recursive-descent parser that the writers' output (and any conforming
//! hand-edited checkpoint) round-trips through. It accepts standard JSON;
//! numbers are split into exact integers (`i64`) and floats so 64-bit
//! enumeration indices survive without going through `f64`.
//!
//! The **canonical writer** ([`Json::to_canonical`]) is the serialization
//! the artifact store and `walshcheck-report/5` hash over: object keys
//! sorted bytewise (objects are [`BTreeMap`]s, so this holds by
//! construction), no insignificant whitespace, fixed float formatting
//! ([`canonical_f64`]), and the shared string escaper of the report layer.
//! Identical values always serialize to identical bytes, so content hashes
//! ([`crate::hash::sha256_hex`]) of canonical documents are stable across
//! runs, platforms and thread counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::json_escape;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, within `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, or `None` for other values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly up to 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// An object from `(key, value)` pairs (later duplicates win).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes the value canonically: object keys sorted bytewise, no
    /// whitespace, floats through [`canonical_f64`]. Equal values produce
    /// byte-identical output — the property content hashing relies on.
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        self.write_canonical(&mut out);
        out
    }

    fn write_canonical(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => out.push_str(&canonical_f64(*f)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_canonical(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                // BTreeMap iterates keys in sorted order by construction.
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(key));
                    out.push_str("\":");
                    value.write_canonical(out);
                }
                out.push('}');
            }
        }
    }
}

/// Fixed-format float rendering for canonical documents: nine fractional
/// digits, trailing zeros trimmed down to at least one, so the same value
/// always prints the same bytes (no shortest-round-trip ambiguity, no
/// exponent notation for the magnitudes our artifacts carry). Non-finite
/// values render as `null` — JSON has no representation for them.
pub fn canonical_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".into();
    }
    let mut s = format!("{f:.9}");
    while s.ends_with('0') && !s.ends_with(".0") {
        s.pop();
    }
    // `-0.0` and `0.0` are numerically equal; canonicalize the sign away.
    if s == "-0.0" {
        s = "0.0".into();
    }
    s
}

/// Parses `text` as a single JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Copy the longest run of plain bytes in one step (keeps
                    // UTF-8 multibyte sequences intact).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(
            r#"{"a": [1, -2, 3.5], "s": "x\n\"y\"", "t": true, "n": null, "big": 9007199254740993}"#,
        )
        .expect("valid");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::Int(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Float(3.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
        // Exact past 2^53: would be lossy through f64.
        assert_eq!(v.get("big").unwrap().as_u64(), Some(9007199254740993));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trips_report_style_escapes() {
        let v = parse(r#""A\t""#).expect("valid");
        assert_eq!(v.as_str(), Some("A\t"));
    }

    #[test]
    fn canonical_sorts_keys_and_omits_whitespace() {
        let v =
            parse(r#"{ "zeta": [1, true, null], "alpha": {"b": 2, "a": "x\"y"} }"#).expect("valid");
        assert_eq!(
            v.to_canonical(),
            r#"{"alpha":{"a":"x\"y","b":2},"zeta":[1,true,null]}"#
        );
        // Canonicalization is idempotent: parse(canonical) → same bytes.
        let again = parse(&v.to_canonical()).expect("valid");
        assert_eq!(again.to_canonical(), v.to_canonical());
    }

    #[test]
    fn canonical_float_formatting_is_fixed() {
        assert_eq!(canonical_f64(3.5), "3.5");
        assert_eq!(canonical_f64(1.0), "1.0");
        assert_eq!(canonical_f64(-0.0), "0.0");
        assert_eq!(canonical_f64(0.000000125), "0.000000125");
        assert_eq!(canonical_f64(f64::NAN), "null");
        assert_eq!(Json::Float(2.25).to_canonical(), "2.25");
    }

    #[test]
    fn obj_builder_sorts() {
        let v = Json::obj([("b", Json::Int(1)), ("a", Json::str("s"))]);
        assert_eq!(v.to_canonical(), r#"{"a":"s","b":1}"#);
    }
}
