//! A maskVerif-style heuristic checker (probabilistic information flow).
//!
//! maskVerif (Barthe et al.) proves security of probe tuples by
//! *semantic-preserving simplifications*: if an observed expression contains
//! a fresh random `r` that occurs nowhere else in the tuple and enters the
//! expression linearly (only through XOR-like gates), the expression is
//! uniformly distributed and independent of the rest, so it can be discarded
//! (`e = r ⊕ e′ ↦ fresh uniform`). When the fixpoint of this rule leaves no
//! expression that (structurally) touches more shares than the property's
//! budget, the tuple is secure. Otherwise the heuristic is *inconclusive* —
//! unlike the exact spectral engines it may report false alarms on secure
//! non-linear circuits, which is exactly the gap the paper's exact method
//! closes.
//!
//! The checker here mirrors that flow on the netlist DAG. It is the
//! "maskVerif-like" heuristic column of the Table III reproduction.

use std::collections::HashSet;
use std::ops::ControlFlow;
use std::time::Instant;

use walshcheck_circuit::glitch::observation_sets;
use walshcheck_circuit::netlist::{Gate, Netlist, NetlistError, OutputRole, WireId};

use crate::mask::{Mask, VarMap};
use crate::property::{CheckStats, ProbeRef, Property};
use crate::sites::SiteOptions;

/// Outcome of a heuristic verification: sound "secure", or inconclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeuristicVerdict {
    /// The property that was checked.
    pub property: Property,
    /// `Some(true)` — proven secure. `None` — inconclusive (a tuple
    /// resisted simplification; the exact engines must decide).
    pub secure: Option<bool>,
    /// The first tuple the rule engine could not discharge, if any.
    pub stuck_combination: Option<Vec<ProbeRef>>,
    /// Cost counters (only `combinations` and `total_time` are meaningful).
    pub stats: CheckStats,
}

struct Cone {
    /// Occurrence count (as a tree) of each input position, saturating.
    occ: Vec<u32>,
    /// Input positions that occur below a non-linear gate.
    nonlinear: Mask,
    /// Structural support.
    support: Mask,
}

fn gate_is_linear(g: Gate) -> bool {
    matches!(
        g,
        Gate::Buf | Gate::Not | Gate::Xor | Gate::Xnor | Gate::Dff
    )
}

/// Per-wire occurrence/linearity analysis.
fn analyze(netlist: &Netlist) -> Vec<Cone> {
    let n_inputs = netlist.inputs.len();
    let mut cones: Vec<Cone> = (0..netlist.num_wires())
        .map(|_| Cone {
            occ: vec![0; n_inputs],
            nonlinear: Mask::ZERO,
            support: Mask::ZERO,
        })
        .collect();
    for (pos, &(w, _)) in netlist.inputs.iter().enumerate() {
        cones[w.0 as usize].occ[pos] = 1;
        cones[w.0 as usize].support = Mask(1 << pos);
    }
    let order = walshcheck_circuit::topo::topo_order(netlist).expect("validated");
    for c in order {
        let cell = &netlist.cells[c.0 as usize];
        let mut occ = vec![0u32; n_inputs];
        let mut nonlinear = Mask::ZERO;
        let mut support = Mask::ZERO;
        for &i in &cell.inputs {
            let ic = &cones[i.0 as usize];
            for (p, &o) in ic.occ.iter().enumerate() {
                occ[p] = occ[p].saturating_add(o);
            }
            nonlinear = nonlinear | ic.nonlinear;
            support = support | ic.support;
        }
        if !gate_is_linear(cell.gate) {
            // Everything below a non-linear gate is non-linearly consumed.
            nonlinear = nonlinear | support;
        }
        let out = cell.output.0 as usize;
        cones[out] = Cone {
            occ,
            nonlinear,
            support,
        };
    }
    cones
}

/// Runs the heuristic on all combinations of up to `d` observations.
///
/// # Errors
///
/// Fails if the netlist is invalid or cyclic.
pub fn heuristic_check(
    netlist: &Netlist,
    property: Property,
    site_options: &SiteOptions,
) -> Result<HeuristicVerdict, NetlistError> {
    netlist.validate()?;
    let start = Instant::now();
    let vm = VarMap::from_netlist(netlist);
    let cones = analyze(netlist);
    let obs = observation_sets(netlist, site_options.probe_model)?;

    // Sites: (probe, observed wires).
    let mut sites: Vec<(ProbeRef, Vec<WireId>)> = Vec::new();
    let mut output_wires = HashSet::new();
    for &(wire, role) in &netlist.outputs {
        if let OutputRole::Share { output, index } = role {
            output_wires.insert(wire);
            sites.push((
                ProbeRef::Output {
                    wire,
                    output,
                    index,
                },
                vec![wire],
            ));
        }
    }
    let input_wires: HashSet<_> = netlist.inputs.iter().map(|&(w, _)| w).collect();
    #[allow(clippy::needless_range_loop)] // wid indexes obs in lock-step with wire ids
    for wid in 0..netlist.num_wires() {
        let wire = WireId(wid as u32);
        if output_wires.contains(&wire) {
            continue;
        }
        if input_wires.contains(&wire) && !site_options.include_inputs {
            continue;
        }
        sites.push((ProbeRef::Internal { wire }, obs[wid].clone()));
    }

    let d = property.order() as usize;
    let mut stats = CheckStats::default();
    let mut stuck: Option<Vec<ProbeRef>> = None;

    let max_k = d.min(sites.len());
    'sizes: for k in (1..=max_k).rev() {
        let flow = combinations(sites.len(), k, &mut |idxs| {
            stats.combinations += 1;
            let combo: Vec<&(ProbeRef, Vec<WireId>)> = idxs.iter().map(|&i| &sites[i]).collect();
            let internal = combo.iter().filter(|(p, _)| p.is_internal()).count() as u32;
            if !tuple_discharged(netlist, &vm, &cones, &combo, property, k as u32, internal) {
                stuck = Some(combo.iter().map(|(p, _)| p.clone()).collect());
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        if flow.is_break() {
            break 'sizes;
        }
    }

    stats.total_time = start.elapsed();
    Ok(HeuristicVerdict {
        property,
        secure: if stuck.is_none() { Some(true) } else { None },
        stuck_combination: stuck,
        stats,
    })
}

/// Applies the random-elimination rule to a tuple until fixpoint, then tests
/// the structural share budget. Returns `true` if the tuple is discharged.
fn tuple_discharged(
    netlist: &Netlist,
    vm: &VarMap,
    cones: &[Cone],
    combo: &[&(ProbeRef, Vec<WireId>)],
    property: Property,
    s: u32,
    internal: u32,
) -> bool {
    let mut exprs: Vec<WireId> = combo
        .iter()
        .flat_map(|(_, ws)| ws.iter().copied())
        .collect();
    // Rule loop: drop expressions masked by an otherwise-unused linear random.
    loop {
        // Expressions without shares can always be simulated; drop them.
        exprs.retain(|w| !(cones[w.0 as usize].support & vm.all_shares).is_zero());
        let mut removed = false;
        'search: for (ei, &e) in exprs.iter().enumerate() {
            let ce = &cones[e.0 as usize];
            for r in (ce.support & vm.randoms).iter() {
                if ce.occ[r] != 1 || ce.nonlinear.contains(r) {
                    continue;
                }
                // Occurrences in the other tuple members?
                let elsewhere: u32 = exprs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != ei)
                    .map(|(_, &w)| cones[w.0 as usize].occ[r])
                    .sum();
                if elsewhere == 0 {
                    // e = r ⊕ e′ with r fresh: e is uniform and independent.
                    exprs.swap_remove(ei);
                    removed = true;
                    break 'search;
                }
            }
        }
        if !removed {
            break;
        }
    }
    let _ = netlist;
    // Budget test on what is left (structural, hence conservative).
    let union = exprs
        .iter()
        .fold(Mask::ZERO, |a, &w| a | cones[w.0 as usize].support);
    match property {
        Property::Probing(_) => !vm.share_groups.iter().any(|g| g.is_subset(union)),
        Property::Ni(_) => vm.share_groups.iter().all(|&g| union.weight_in(g) <= s),
        Property::Sni(_) => vm
            .share_groups
            .iter()
            .all(|&g| union.weight_in(g) <= internal),
        Property::Pini(_) => {
            let mut allowed = 0u64;
            for (p, _) in combo {
                if let ProbeRef::Output { index, .. } = p {
                    allowed |= 1 << index;
                }
            }
            (vm.share_indices(union) & !allowed).count_ones() <= internal
        }
    }
}

fn combinations(
    n: usize,
    k: usize,
    f: &mut dyn FnMut(&[usize]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    if k == 0 || k > n {
        return ControlFlow::Continue(());
    }
    let mut idxs: Vec<usize> = (0..k).collect();
    loop {
        f(&idxs)?;
        let mut i = k;
        loop {
            if i == 0 {
                return ControlFlow::Continue(());
            }
            i -= 1;
            if idxs[i] != i + n - k {
                break;
            }
        }
        idxs[i] += 1;
        for j in i + 1..k {
            idxs[j] = idxs[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walshcheck_circuit::builder::NetlistBuilder;

    fn refresh() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r");
        let t = b.xor(a0, r);
        let q = b.xor(t, a1);
        let o = b.output("q");
        b.output_share(q, o, 0);
        b.build().expect("valid")
    }

    #[test]
    fn proves_the_masked_output_uniform() {
        // The output q = a0 ⊕ r ⊕ a1 is discharged by the random rule, so
        // the refresh is heuristically 1-probing secure.
        let v =
            heuristic_check(&refresh(), Property::Probing(1), &SiteOptions::default()).expect("ok");
        assert_eq!(v.secure, Some(true), "{v:?}");
    }

    #[test]
    fn is_inconclusive_when_random_is_reused() {
        // Both expressions contain r: the rule cannot fire on the pair
        // {a0⊕r, r} even though it is in fact secure at order 1… but at
        // d=2 the heuristic must go inconclusive (and indeed probing the
        // pair (t, r) reveals a0).
        let v =
            heuristic_check(&refresh(), Property::Probing(2), &SiteOptions::default()).expect("ok");
        assert_eq!(v.secure, None);
        assert!(v.stuck_combination.is_some());
    }

    #[test]
    fn nonlinear_randomness_is_not_eliminated() {
        // q = (a0 ∧ r) ⊕ a1 — the random enters non-linearly and must not
        // be used to discharge the expression (q is biased!).
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r");
        let t = b.and(a0, r);
        let q = b.xor(t, a1);
        let o = b.output("q");
        b.output_share(q, o, 0);
        let n = b.build().expect("valid");
        let v = heuristic_check(&n, Property::Ni(1), &SiteOptions::default()).expect("ok");
        // q touches both shares structurally: inconclusive at budget 1.
        // (w = a0∧r plus q would exceed any budget anyway.)
        assert_eq!(v.secure, None);
    }

    #[test]
    fn occurrence_counting_sees_cancelled_randoms() {
        // e = (r ⊕ a0) ⊕ r cancels r but occurs twice syntactically: the
        // rule must not fire, the tuple keeps a0 and stays within budget 1.
        let mut b = NetlistBuilder::new("m");
        let s = b.secret("x");
        let a0 = b.share(s, 0);
        let a1 = b.share(s, 1);
        let r = b.random("r");
        let t1 = b.xor(r, a0);
        let t2 = b.xor(t1, r); // = a0
        let q = b.xor(t2, a1);
        let o = b.output("q");
        b.output_share(q, o, 0);
        let n = b.build().expect("valid");
        // Probing q at order 1: q = a0 ⊕ a1 structurally contains the full
        // group → inconclusive (and rightly so: q IS the secret).
        let v = heuristic_check(&n, Property::Probing(1), &SiteOptions::default()).expect("ok");
        assert_eq!(v.secure, None);
    }

    #[test]
    fn analysis_flags_nonlinear_positions() {
        let mut b = NetlistBuilder::new("m");
        let p = b.public_input("p");
        let q = b.public_input("q");
        let t = b.and(p, q);
        let u = b.xor(t, p);
        b.public_output(u);
        let n = b.build().expect("valid");
        let cones = analyze(&n);
        let cu = &cones[u.0 as usize];
        assert!(cu.nonlinear.contains(0));
        assert_eq!(cu.occ[0], 2); // p occurs twice in (p∧q)⊕p
        let ct = &cones[t.0 as usize];
        assert!(ct.nonlinear.contains(1));
    }
}
