//! Deterministic fault injection (cargo feature `fault-inject`).
//!
//! Resilience claims are only worth what their tests can prove, and panics
//! or budget blow-ups in real engine code are not reproducible on demand.
//! With the `fault-inject` feature enabled (off by default, no new
//! dependencies), the `WALSHCHECK_FAULT` environment variable injects
//! faults at exact points of the deterministic enumeration order:
//!
//! | directive                   | effect                                            |
//! |-----------------------------|---------------------------------------------------|
//! | `panic-at=IDX`              | panic while checking global combination `IDX`     |
//! | `budget-at=IDX`             | raise `CapacityExceeded` at combination `IDX`     |
//! | `lose-worker=WID`           | panic worker `WID` at startup, outside the        |
//! |                             | per-combination isolation boundary                |
//! | `exit-after-checkpoints=N`  | `process::exit(42)` after the `N`-th checkpoint   |
//! |                             | write (simulates a mid-sweep kill for resume CI)  |
//! | `rescue-panic-at=IDX`       | panic in *every* rescue attempt of combination    |
//! |                             | `IDX` (drives the ladder to `Unresolved`)         |
//! | `rescue-budget-at=IDX`      | raise `CapacityExceeded` in every rescue attempt  |
//! |                             | of combination `IDX`                              |
//! | `stall-ms=N`                | sleep `N` ms before each combination check (slows |
//! |                             | a sweep so signal-kill tests land mid-run)        |
//! | `runner-panic-at=JOBID`     | panic the `walshcheckd` runner thread while it    |
//! |                             | executes job `JOBID` (drives the daemon's         |
//! |                             | failed-plus-respawn path)                         |
//! | `store-torn-write=FILE`     | tear the next artifact-store write of `FILE`:     |
//! |                             | half the bytes land at the final path with no     |
//! |                             | atomic rename (drives the startup integrity scan) |
//! | `job-stall-ms=N`            | sleep `N` ms at the start of every daemon job     |
//! |                             | execution (wedges a job so deadline tests fire)   |
//! | `crash-at-io-op=N`          | abort the process immediately before the `N`-th   |
//! |                             | (1-based) I/O operation [`crate::iofs::RealFs`]   |
//! |                             | would perform — a *real* crash at an exact point  |
//! |                             | of the traced schedule, cross-checking the        |
//! |                             | simulated page-cache model (DESIGN.md §16)        |
//!
//! Multiple directives are comma-separated. Without the feature every hook
//! compiles to nothing; the daemon directives are consumed by
//! `walshcheck-daemon` through [`string_directive`]/[`u64_directive`].

/// Panic payload used by injected worker faults; classified as
/// [`crate::IncompleteReason::WorkerFailure`] by the isolation boundary.
#[derive(Debug, Clone, Copy)]
pub struct InjectedFault(pub &'static str);

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault: {}", self.0)
    }
}

/// Process exit code used by `exit-after-checkpoints` (distinct from the
/// CLI's 0–3 verdict codes so a harness can tell the simulated kill apart).
pub const INJECTED_EXIT_CODE: i32 = 42;

#[cfg(feature = "fault-inject")]
fn directive(prefix: &str) -> Option<u64> {
    // Re-read the environment on every call: the value is tiny, this is a
    // test-only build, and per-call reads let in-process tests change the
    // plan between runs.
    u64_directive(prefix)
}

/// The string value of fault directive `prefix` in `WALSHCHECK_FAULT`, if
/// present. Re-reads the environment on every call so in-process tests can
/// change the plan between runs. Used by `walshcheck-daemon` for the
/// job-id-valued directives (`runner-panic-at`, `store-torn-write`).
#[cfg(feature = "fault-inject")]
pub fn string_directive(prefix: &str) -> Option<String> {
    let plan = std::env::var("WALSHCHECK_FAULT").ok()?;
    plan.split(',').find_map(|d| {
        d.trim()
            .strip_prefix(prefix)
            .and_then(|v| v.strip_prefix('='))
            .map(|v| v.trim().to_string())
    })
}

/// The numeric value of fault directive `prefix` in `WALSHCHECK_FAULT`, if
/// present (see [`string_directive`] for the lookup semantics).
#[cfg(feature = "fault-inject")]
pub fn u64_directive(prefix: &str) -> Option<u64> {
    string_directive(prefix).and_then(|v| v.parse().ok())
}

/// Injects a panic or budget exhaustion at global combination `index`.
/// Called inside the per-combination isolation boundary.
pub(crate) fn maybe_inject(index: u64) {
    #[cfg(feature = "fault-inject")]
    {
        if let Some(ms) = directive("stall-ms") {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if directive("panic-at") == Some(index) {
            std::panic::panic_any(InjectedFault("panic-at"));
        }
        if directive("budget-at") == Some(index) {
            walshcheck_dd::budget::exceeded("fault-inject", 0, 0);
        }
    }
    #[cfg(not(feature = "fault-inject"))]
    let _ = index;
}

/// Injects a panic or budget exhaustion into *every* rescue attempt of
/// combination `index` — unlike `maybe_inject`, which the rescue path does
/// not call, so the sweep-time directives cannot contaminate the ladder.
/// Called inside the rescue attempt's isolation boundary.
pub(crate) fn maybe_inject_rescue(index: u64) {
    #[cfg(feature = "fault-inject")]
    {
        if directive("rescue-panic-at") == Some(index) {
            std::panic::panic_any(InjectedFault("rescue-panic-at"));
        }
        if directive("rescue-budget-at") == Some(index) {
            walshcheck_dd::budget::exceeded("fault-inject-rescue", 0, 0);
        }
    }
    #[cfg(not(feature = "fault-inject"))]
    let _ = index;
}

/// Injects a whole-worker loss: panics at worker startup, *outside* the
/// per-combination boundary, exercising the scheduler's lost-worker path.
pub(crate) fn maybe_lose_worker(worker: usize) {
    #[cfg(feature = "fault-inject")]
    {
        if directive("lose-worker") == Some(worker as u64) {
            std::panic::panic_any(InjectedFault("lose-worker"));
        }
    }
    #[cfg(not(feature = "fault-inject"))]
    let _ = worker;
}

/// Called after every successful checkpoint write; kills the process after
/// the configured number of writes to simulate a mid-sweep crash.
pub(crate) fn on_checkpoint_written() {
    #[cfg(feature = "fault-inject")]
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        static WRITES: AtomicU64 = AtomicU64::new(0);
        if let Some(n) = directive("exit-after-checkpoints") {
            let written = WRITES.fetch_add(1, Ordering::SeqCst) + 1;
            if written >= n {
                eprintln!("fault-inject: exiting after {written} checkpoint writes");
                std::process::exit(INJECTED_EXIT_CODE);
            }
        }
    }
}
