//! Cooperative graceful-shutdown flag.
//!
//! A process-global request bit connects external interrupt sources (the
//! CLI's SIGINT/SIGTERM handler, an embedder's own lifecycle hooks) to the
//! enumeration drivers. Once [`request`] is called, the scheduler's batch
//! queue stops dispensing work — in-flight batches run to completion, so
//! the checkpoint frontier stays consistent — the final checkpoint write
//! flushes everything found so far, and the verdict comes back as
//! [`Outcome::Inconclusive`](crate::Outcome::Inconclusive) with
//! [`IncompleteReason::Interrupted`](crate::IncompleteReason::Interrupted).
//! A later run resumed from that checkpoint reproduces the uninterrupted
//! verdict byte-for-byte (DESIGN.md §10/§11).
//!
//! [`request`] performs a single relaxed atomic store and is
//! async-signal-safe: it is exactly what a `sigaction` handler may do.
//! The flag is process-global by necessity (signal handlers have no
//! session context), so library embedders that keep the process alive
//! after an interrupted run must call [`reset`] before starting the next
//! one; the CLI simply exits.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Requests a graceful shutdown of every running verification in this
/// process. Async-signal-safe: a single relaxed atomic store, no
/// allocation, no locks — callable straight from a signal handler.
pub fn request() {
    REQUESTED.store(true, Ordering::Relaxed);
}

/// Whether a shutdown has been requested (and not yet [`reset`]).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Clears a previous [`request`]. For embedders that survive an
/// interrupted run and want to start another; the CLI never needs this —
/// it exits after flushing the checkpoint.
pub fn reset() {
    REQUESTED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_is_sticky_until_reset() {
        // Serialized with any other flag user by running in this dedicated
        // unit test only; integration coverage lives in tests/shutdown.rs
        // (its own binary, so the global flag cannot race other suites).
        reset();
        assert!(!requested());
        request();
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
