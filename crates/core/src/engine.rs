//! The exact spectral verifier and its four engine backends.
//!
//! [`Verifier::check`] enumerates all combinations of up to `d` observations
//! (output shares and internal probes), computes the Walsh correlation rows
//! of each combination, and tests them against the property's forbidden
//! region. The four [`EngineKind`] backends reproduce the implementation
//! alternatives compared in the paper's evaluation:
//!
//! | engine  | convolution        | verification                     |
//! |---------|--------------------|----------------------------------|
//! | `Lil`   | sorted lists (\[11\])| scan entries against the region  |
//! | `Map`   | hash maps          | scan entries against the region  |
//! | `Mapi`  | hash maps          | ADD × `T`-matrix (the paper)     |
//! | `Fujita`| sign-ADD product + | ADD × `T`-matrix                 |
//! |         | ADD Walsh transform|                                  |
//!
//! The enumeration applies the paper's largest-combinations-first heuristic
//! and an optional functional-support prefilter (a cheap necessary
//! condition), both switchable for the ablation benchmarks.

use std::ops::ControlFlow;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use walshcheck_circuit::glitch::ProbeModel;
use walshcheck_circuit::netlist::{Netlist, NetlistError};
use walshcheck_circuit::unfold::{unfold, Unfolded};
use walshcheck_dd::add::{Add, AddManager};
use walshcheck_dd::backend::{Backend, DdBackend, DdConfig, Private};
use walshcheck_dd::bdd::{Bdd, BddManager};
use walshcheck_dd::dyadic::Dyadic;
use walshcheck_dd::spectral::{sign_add, walsh_sparse, wht_with, SparseWalshCache, WhtMemo};
use walshcheck_dd::var::{VarId, VarSet};
use walshcheck_dd::FastMap;

use crate::mask::{Mask, VarMap};
use crate::pcache::PrefixCache;
use crate::property::{CheckMode, CheckStats, Property, SkippedCombination, Verdict, Witness};
use crate::sites::{extract_sites, Site, SiteOptions};
use crate::spectrum::{LilSpectrum, MapSpectrum, Spectrum};
use crate::tmatrix::Region;

/// Selects the data structures used for convolution and verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Sorted list-of-lists — the exact baseline of reference \[11\].
    Lil,
    /// Hash maps for both convolution and verification.
    Map,
    /// Hash-map convolution, ADD-based verification — the paper's method.
    #[default]
    Mapi,
    /// Full ADD pipeline using the Fujita Walsh transform.
    Fujita,
}

impl EngineKind {
    /// Stable lowercase machine-readable name (job specs, reports, CLI
    /// flags): `"lil"`, `"map"`, `"mapi"` or `"fujita"`.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Lil => "lil",
            EngineKind::Map => "map",
            EngineKind::Mapi => "mapi",
            EngineKind::Fujita => "fujita",
        }
    }

    /// Inverse of [`EngineKind::as_str`].
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "lil" => Some(EngineKind::Lil),
            "map" => Some(EngineKind::Map),
            "mapi" => Some(EngineKind::Mapi),
            "fujita" => Some(EngineKind::Fujita),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Lil => "LIL",
            EngineKind::Map => "MAP",
            EngineKind::Mapi => "MAPI",
            EngineKind::Fujita => "FUJITA",
        })
    }
}

/// When the engines may re-order decision-diagram variables by greedy
/// sifting ([`walshcheck_dd::reorder::sift`]).
///
/// Unlike [`VerifyOptions::presift`] — which changes which diagrams exist
/// and is therefore part of job identity — every mode here is a pure speed
/// knob: verdicts, witnesses and report artifacts are byte-identical across
/// all three settings (violations screened in a sifted order are always
/// re-derived in the original order before a witness is emitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SiftMode {
    /// Never sift, not even in the rescue ladder.
    Off,
    /// Sift only as the rescue ladder's second rung (the pre-PR-10
    /// behavior).
    #[default]
    Rescue,
    /// Additionally screen sweep combinations in a sifted variable order
    /// when the unfolded forest is large enough to pay for the reorder
    /// (see `AUTO_SIFT_WATERMARK`); requires no node budget, since budget
    /// quarantine points depend on diagram sizes and must not move.
    Auto,
}

impl SiftMode {
    /// Stable lowercase machine-readable name: `"off"`, `"rescue"` or
    /// `"auto"`.
    pub fn as_str(self) -> &'static str {
        match self {
            SiftMode::Off => "off",
            SiftMode::Rescue => "rescue",
            SiftMode::Auto => "auto",
        }
    }

    /// Inverse of [`SiftMode::as_str`].
    pub fn parse(s: &str) -> Option<SiftMode> {
        match s {
            "off" => Some(SiftMode::Off),
            "rescue" => Some(SiftMode::Rescue),
            "auto" => Some(SiftMode::Auto),
            _ => None,
        }
    }
}

impl std::fmt::Display for SiftMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Options for a verification run.
///
/// Construct with [`VerifyOptions::builder`], [`VerifyOptions::default`] or
/// the [`VerifyOptions::paper`] preset; the struct is `#[non_exhaustive]`, so
/// literal construction outside this crate is not possible (fields may be
/// added without a breaking change). Individual fields stay public and can
/// be adjusted after construction.
///
/// Work distribution is no longer part of the options: sharding and
/// cross-worker cancellation are internal to the work-stealing scheduler
/// and are driven by [`crate::Session::threads`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct VerifyOptions {
    /// Engine backend.
    pub engine: EngineKind,
    /// Row-wise (paper-faithful) or joint (union-support) checking.
    pub mode: CheckMode,
    /// Probe-site extraction options (leakage model, input probing, dedup).
    pub sites: SiteOptions,
    /// Skip combinations whose functional support already satisfies the
    /// budget (sound, cheap necessary condition).
    pub prefilter: bool,
    /// Enumerate larger combinations first (the paper's search heuristic).
    pub largest_first: bool,
    /// Optional wall-clock budget; when exceeded the check stops and the
    /// verdict carries `stats.timed_out = true`.
    pub time_limit: Option<std::time::Duration>,
    /// Optional per-combination decision-diagram node budget. A combination
    /// whose estimated row count exceeds the budget, or that grows the ADD /
    /// T-matrix arenas by more than `node_budget` nodes, is quarantined
    /// (recorded in [`Verdict::skipped`]) instead of blowing up memory, and
    /// the outcome degrades to
    /// [`Outcome::Inconclusive`](crate::Outcome::Inconclusive).
    pub node_budget: Option<usize>,
    /// Reuse partial convolution products across tuples that share an
    /// enumeration prefix (see DESIGN.md §9). Purely a time/memory trade:
    /// verdicts and witnesses are identical either way.
    pub cache: bool,
    /// Byte budget of each worker's prefix cache (least-recently-used
    /// eviction above it). `0` disables caching like `cache = false`.
    pub cache_budget: usize,
    /// Node-store backend for the engines' decision diagrams (see
    /// [`walshcheck_dd::backend`]): [`Backend::Private`] gives each worker
    /// its own managers, [`Backend::Shared`] one concurrent store per run.
    /// Purely a speed knob — verdicts, witnesses and report artifacts are
    /// byte-identical either way, so it is excluded from job identity.
    /// Defaults to the `WALSHCHECK_DD_BACKEND` environment variable.
    pub backend: Backend,
    /// Greedily sift the unfolded wire functions into a smaller variable
    /// order before enumerating ([`walshcheck_dd::reorder::sift`]); witness
    /// coordinates are mapped back to the original numbering. Changes which
    /// diagrams are built, so — unlike `backend` — it is part of job
    /// identity.
    pub presift: bool,
    /// Support width at or below which spectral kernels (map convolution,
    /// sparse Walsh transforms, the ADD WHT) drop to a flat integer
    /// butterfly instead of pointer-chasing DD recursions. The dense
    /// kernels are exact (dyadic coefficients over a common exponent, with
    /// overflow falling back to the recursion), so results are
    /// byte-identical at any cut — a pure speed knob, excluded from job
    /// identity. `0` disables them.
    pub dense_cut: u32,
    /// Where greedy variable sifting may run (see [`SiftMode`]). A pure
    /// speed knob under the determinism contract, excluded from job
    /// identity.
    pub sift: SiftMode,
}

/// Default per-worker prefix-cache budget (64 MiB).
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// Default dense-kernel support cut ([`VerifyOptions::dense_cut`]): 12
/// variables keeps every flat table at or under 4096 entries (32 KiB of
/// `i64`s — L1-resident) while covering the small cones that dominate
/// low-order sweeps.
pub const DEFAULT_DENSE_CUT: u32 = 12;

/// Minimum unfolded-forest size (distinct nodes over every site function)
/// at which [`SiftMode::Auto`] pays for a greedy reorder of the sweep.
const AUTO_SIFT_WATERMARK: usize = 2_048;

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            engine: EngineKind::Mapi,
            mode: CheckMode::Joint,
            sites: SiteOptions::default(),
            prefilter: true,
            largest_first: true,
            time_limit: None,
            node_budget: None,
            cache: true,
            cache_budget: DEFAULT_CACHE_BUDGET,
            backend: Backend::from_env(),
            presift: false,
            dense_cut: DEFAULT_DENSE_CUT,
            sift: SiftMode::Rescue,
        }
    }
}

impl VerifyOptions {
    /// Starts a builder initialized with the default configuration.
    pub fn builder() -> VerifyOptionsBuilder {
        VerifyOptionsBuilder {
            options: VerifyOptions::default(),
        }
    }

    /// Paper-faithful configuration for an engine: row-wise checking with
    /// prefiltering disabled, as in the original evaluation.
    pub fn paper(engine: EngineKind) -> Self {
        VerifyOptions {
            engine,
            mode: CheckMode::RowWise,
            sites: SiteOptions::default(),
            prefilter: false,
            largest_first: true,
            time_limit: None,
            node_budget: None,
            cache: true,
            cache_budget: DEFAULT_CACHE_BUDGET,
            backend: Backend::from_env(),
            presift: false,
            dense_cut: DEFAULT_DENSE_CUT,
            sift: SiftMode::Rescue,
        }
    }

    /// Re-opens this configuration as a builder (useful to tweak a preset).
    pub fn to_builder(&self) -> VerifyOptionsBuilder {
        VerifyOptionsBuilder {
            options: self.clone(),
        }
    }

    /// Sets the probe model (standard or glitch-extended).
    pub fn with_probe_model(mut self, model: ProbeModel) -> Self {
        self.sites.probe_model = model;
        self
    }
}

/// Fluent constructor for [`VerifyOptions`].
///
/// ```
/// use walshcheck_core::{CheckMode, EngineKind, VerifyOptions};
///
/// let options = VerifyOptions::builder()
///     .engine(EngineKind::Fujita)
///     .mode(CheckMode::RowWise)
///     .prefilter(false)
///     .build();
/// assert_eq!(options.engine, EngineKind::Fujita);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VerifyOptionsBuilder {
    options: VerifyOptions,
}

impl VerifyOptionsBuilder {
    /// Engine backend.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.options.engine = engine;
        self
    }

    /// Row-wise (paper-faithful) or joint (union-support) checking.
    pub fn mode(mut self, mode: CheckMode) -> Self {
        self.options.mode = mode;
        self
    }

    /// Replaces the probe-site extraction options wholesale.
    pub fn sites(mut self, sites: SiteOptions) -> Self {
        self.options.sites = sites;
        self
    }

    /// Probe model (standard or glitch-extended).
    pub fn probe_model(mut self, model: ProbeModel) -> Self {
        self.options.sites.probe_model = model;
        self
    }

    /// Whether unshared input wires are also probeable sites.
    pub fn include_inputs(mut self, include: bool) -> Self {
        self.options.sites.include_inputs = include;
        self
    }

    /// Deduplication of sites with identical observed function sets.
    pub fn dedup_sites(mut self, on: bool) -> Self {
        self.options.sites.dedup = on;
        self
    }

    /// Functional-support prefilter on/off.
    pub fn prefilter(mut self, on: bool) -> Self {
        self.options.prefilter = on;
        self
    }

    /// Largest-combinations-first enumeration on/off.
    pub fn largest_first(mut self, on: bool) -> Self {
        self.options.largest_first = on;
        self
    }

    /// Wall-clock budget for the run.
    pub fn time_limit(mut self, limit: std::time::Duration) -> Self {
        self.options.time_limit = Some(limit);
        self
    }

    /// Per-combination decision-diagram node budget (see
    /// [`VerifyOptions::node_budget`]).
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.options.node_budget = Some(nodes);
        self
    }

    /// Prefix-shared convolution caching on/off.
    pub fn cache(mut self, on: bool) -> Self {
        self.options.cache = on;
        self
    }

    /// Byte budget of each worker's prefix cache.
    pub fn cache_budget(mut self, bytes: usize) -> Self {
        self.options.cache_budget = bytes;
        self
    }

    /// Node-store backend (see [`VerifyOptions::backend`]).
    pub fn dd_backend(mut self, backend: Backend) -> Self {
        self.options.backend = backend;
        self
    }

    /// Pre-enumeration sifting on/off (see [`VerifyOptions::presift`]).
    pub fn presift(mut self, on: bool) -> Self {
        self.options.presift = on;
        self
    }

    /// Dense spectral-kernel support cut (see [`VerifyOptions::dense_cut`]).
    pub fn dense_cut(mut self, cut: u32) -> Self {
        self.options.dense_cut = cut;
        self
    }

    /// Sifting mode (see [`SiftMode`]).
    pub fn sift(mut self, mode: SiftMode) -> Self {
        self.options.sift = mode;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> VerifyOptions {
        self.options
    }
}

/// Work-distribution knobs for one enumeration pass. Scheduler-internal:
/// this is what the old `VerifyOptions::{shard, cancel}` fields became.
#[derive(Debug, Clone, Default)]
pub(crate) struct EnumControl {
    /// Only combinations whose first site index is congruent to `tid`
    /// modulo `count` are processed (static modulo sharding).
    pub(crate) shard: Option<(u32, u32)>,
    /// Cooperative cancellation: when set by another worker the run stops
    /// early (the local verdict is then moot).
    pub(crate) cancel: Option<Arc<AtomicBool>>,
}

/// Variable-order bookkeeping of an applied pre-enumeration sift: the
/// verifier's unfolding and varmap live in the permuted numbering, and
/// outward-facing witness coordinates are mapped back through `inverse`.
#[derive(Debug)]
struct PresiftState {
    /// `inverse[new_level] = old variable`.
    inverse: Vec<VarId>,
}

/// The exact spectral verifier for one netlist.
#[derive(Debug)]
pub struct Verifier {
    netlist: Netlist,
    unfolded: Unfolded,
    varmap: VarMap,
    presift: Option<PresiftState>,
}

impl Verifier {
    /// Unfolds the netlist and prepares the verifier.
    ///
    /// # Errors
    ///
    /// Fails if the netlist is structurally invalid or cyclic.
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let unfolded = unfold(netlist)?;
        let varmap = VarMap::from_netlist(netlist);
        Ok(Verifier {
            netlist: netlist.clone(),
            unfolded,
            varmap,
            presift: None,
        })
    }

    /// Greedily sifts the whole unfolded wire-function forest into a
    /// smaller variable order ([`walshcheck_dd::reorder::sift`]) and
    /// re-expresses the verifier's state — unfolding, wire functions and
    /// variable map — under the found order. Idempotent. Sifting is
    /// deterministic, so every scheduler worker that applies it lands on
    /// the same order and the same site list.
    ///
    /// Witness coordinates produced afterwards are mapped back to the
    /// original numbering (see `restore_mask`), so callers never observe
    /// the permutation.
    pub(crate) fn apply_presift(&mut self) {
        if self.presift.is_some() {
            return;
        }
        let roots = self.unfolded.wire_fns.clone();
        let sifted = walshcheck_dd::reorder::sift(&self.unfolded.bdds, &roots);
        self.varmap = self.varmap.permuted(&sifted.order);
        self.presift = Some(PresiftState {
            inverse: sifted.inverse_order(),
        });
        self.unfolded.wire_fns = sifted.roots;
        self.unfolded.bdds = sifted.manager;
    }

    /// Maps a witness coordinate from the verifier's current (possibly
    /// presifted) numbering back to the netlist's original numbering.
    fn restore_mask(&self, m: Mask) -> Mask {
        match &self.presift {
            None => m,
            Some(p) => {
                let mut out = Mask::ZERO;
                for level in m.iter() {
                    out.0 |= 1 << p.inverse[level].0;
                }
                out
            }
        }
    }

    /// The input-variable classification.
    pub fn varmap(&self) -> &VarMap {
        &self.varmap
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The symbolic unfolding (wire functions).
    pub fn unfolded(&self) -> &Unfolded {
        &self.unfolded
    }

    /// Checks `property` with the default options (MAPI engine, joint mode).
    pub fn check_default(&mut self, property: Property) -> Verdict {
        self.check_with_control(property, &VerifyOptions::default(), &EnumControl::default())
    }

    /// Serial check of `property` under `options` with explicit
    /// work-distribution control — the primitive behind both the serial
    /// path and the modulo-shard baseline. Public entry points are
    /// [`crate::Session`] and [`crate::Job`].
    pub(crate) fn check_with_control(
        &mut self,
        property: Property,
        options: &VerifyOptions,
        control: &EnumControl,
    ) -> Verdict {
        let mut witness: Option<Witness> = None;
        let (stats, skipped) = self.run_enumeration(property, options, control, &mut |w| {
            witness = Some(w);
            ControlFlow::Break(())
        });
        Verdict::conclude(property, witness, skipped, stats)
    }

    /// Enumerates violating combinations until `limit` witnesses are found
    /// (or the space is exhausted). Unlike a verdict run, the search
    /// continues past the first violation — useful for leakage diagnosis.
    pub fn find_witnesses(
        &mut self,
        property: Property,
        options: &VerifyOptions,
        limit: usize,
    ) -> Vec<Witness> {
        self.find_witnesses_full(property, options, limit).0
    }

    /// [`Verifier::find_witnesses`] plus the run's degradation evidence: the
    /// quarantined combinations and the stats (whose `timed_out` flag is the
    /// only way to tell "no more leaks" apart from "ran out of time"). The
    /// enumeration honors `options.time_limit` and `options.node_budget`
    /// exactly like a `check` run.
    pub(crate) fn find_witnesses_full(
        &mut self,
        property: Property,
        options: &VerifyOptions,
        limit: usize,
    ) -> (Vec<Witness>, Vec<SkippedCombination>, CheckStats) {
        let mut found = Vec::new();
        let (stats, skipped) =
            self.run_enumeration(property, options, &EnumControl::default(), &mut |w| {
                found.push(w);
                if found.len() >= limit {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
        (found, skipped, stats)
    }

    /// The runtime [`DdBackend`] for one verification run under `options`.
    /// For [`Backend::Shared`] this allocates the run's single concurrent
    /// store (sized from the cache budget like the private managers would
    /// be), so call it once per run and hand the reference to every worker.
    pub(crate) fn runtime_backend(options: &VerifyOptions) -> Box<dyn DdBackend> {
        walshcheck_dd::backend::runtime(
            options.backend,
            add_apply_limit(effective_cache_budget(options)),
        )
    }

    /// Prepares the per-run enumeration state on the default private
    /// backend — the rescue ladder and diagnosis paths, which re-check a
    /// handful of combinations, never benefit from a shared store.
    pub(crate) fn begin_enumeration(
        &self,
        property: Property,
        options: &VerifyOptions,
    ) -> EnumState {
        self.begin_enumeration_with(property, options, &Private)
    }

    /// Prepares the per-run enumeration state: the (deterministic) probe
    /// sites, the resolved check mode, and a fresh engine context with
    /// managers from `dd`. Shared between the serial enumeration and the
    /// scheduler's workers.
    pub(crate) fn begin_enumeration_with(
        &self,
        property: Property,
        options: &VerifyOptions,
        dd: &dyn DdBackend,
    ) -> EnumState {
        let sites = extract_sites(&self.netlist, &self.unfolded, &options.sites)
            .expect("netlist validated in Verifier::new");
        self.begin_with_sites(sites, property, options, dd)
    }

    /// [`Verifier::begin_enumeration_with`] with an explicit site list. The
    /// rescue pass re-checks combinations against the sweep's exact sites
    /// (cloned from its state) instead of re-extracting them, so a rescue
    /// attempt under different options still indexes the same tuples.
    pub(crate) fn begin_with_sites(
        &self,
        sites: Vec<Site>,
        property: Property,
        options: &VerifyOptions,
        dd: &dyn DdBackend,
    ) -> EnumState {
        // Probing security is a per-coefficient property: joint mode
        // degenerates to the row-wise region test.
        let mode = if matches!(property, Property::Probing(_)) {
            CheckMode::RowWise
        } else {
            options.mode
        };
        let ctx = EngineCtx::new(
            options.engine,
            self.varmap.num_vars as u32,
            effective_cache_budget(options),
            options.node_budget,
            options.dense_cut,
            dd,
        );
        let sift_screen = self.build_sift_screen(&sites, options);
        EnumState {
            sites,
            mode,
            ctx,
            sift_screen,
        }
    }

    /// Builds the [`SiftMode::Auto`] screening state, or `None` when the
    /// mode is off, a node budget is set (quarantine points depend on
    /// diagram sizes and must not move), the forest is below the
    /// watermark, or sifting found no meaningfully smaller order. Every
    /// input to the decision is a pure function of `(netlist, sites,
    /// options)`, so all workers converge on the same screen.
    fn build_sift_screen(&self, sites: &[Site], options: &VerifyOptions) -> Option<SiftScreen> {
        if options.sift != SiftMode::Auto || options.node_budget.is_some() {
            return None;
        }
        let roots: Vec<Bdd> = sites.iter().flat_map(|s| s.funcs.iter().copied()).collect();
        if walshcheck_dd::reorder::total_size(&self.unfolded.bdds, &roots) < AUTO_SIFT_WATERMARK {
            return None;
        }
        let sifted = walshcheck_dd::reorder::sift(&self.unfolded.bdds, &roots);
        // Screening in an equally-large permuted space is pure overhead:
        // require at least a 10% reduction before keeping the order.
        if sifted.after * 10 >= sifted.before * 9 {
            return None;
        }
        let vm = self.varmap.permuted(&sifted.order);
        let permute = |m: Mask| {
            let mut out = Mask::ZERO;
            for i in m.iter() {
                out.0 |= 1 << sifted.order[i].0;
            }
            out
        };
        let mut moved = sifted.roots.iter().copied();
        let local: Vec<Site> = sites
            .iter()
            .map(|s| Site {
                probe: s.probe.clone(),
                funcs: moved.by_ref().take(s.funcs.len()).collect(),
                support: permute(s.support),
            })
            .collect();
        // The screen's manager is private by construction, so its context
        // is too — even on shared-backend runs, where the canonical context
        // above it interns into the run-wide store.
        let ctx = EngineCtx::new(
            options.engine,
            self.varmap.num_vars as u32,
            effective_cache_budget(options),
            None,
            options.dense_cut,
            &Private,
        );
        Some(SiftScreen {
            manager: sifted.manager,
            sites: local,
            vm,
            ctx,
        })
    }

    /// Checks one combination in a cold engine context built from
    /// `options` — the rescue ladder's plain-retry primitive. Every call
    /// starts from scratch (no prefix cache, no shared arenas), so the
    /// result depends only on `(options, sites, idxs)`, never on sweep
    /// history — part of the rescue determinism argument (DESIGN.md §11).
    pub(crate) fn check_fresh(
        &self,
        property: Property,
        options: &VerifyOptions,
        sites: &[Site],
        idxs: &[usize],
        stats: &mut CheckStats,
    ) -> ComboStep {
        let mut state = self.begin_with_sites(sites.to_vec(), property, options, &Private);
        // Rescue attempts re-check a single combination: re-sifting the
        // whole forest to screen one tuple would cost more than the check.
        state.sift_screen = None;
        let step = self.check_indices(&mut state, property, false, idxs, stats);
        state.finish(stats);
        step
    }

    /// Re-checks one combination after greedily sifting its observed
    /// functions into a smaller variable order
    /// ([`walshcheck_dd::reorder::sift`]) — the rescue ladder's second
    /// rung. The functions are re-expressed in a fresh manager under the
    /// found order, the variable map and site supports are permuted to
    /// match, the check runs in a cold engine context, and a violating
    /// coordinate is mapped back to the original numbering before
    /// returning. The `begin_tuple` pre-charge counts functions, not
    /// nodes, so it is unchanged by sifting — only the arena-growth half
    /// of the budget benefits from the smaller diagrams.
    pub(crate) fn check_sifted(
        &self,
        property: Property,
        options: &VerifyOptions,
        sites: &[Site],
        idxs: &[usize],
        stats: &mut CheckStats,
    ) -> ComboStep {
        let combo: Vec<&Site> = idxs.iter().map(|&i| &sites[i]).collect();
        let roots: Vec<Bdd> = combo.iter().flat_map(|s| s.funcs.iter().copied()).collect();
        let sifted = walshcheck_dd::reorder::sift(&self.unfolded.bdds, &roots);
        let vm = self.varmap.permuted(&sifted.order);
        let permute = |m: Mask| {
            let mut out = Mask::ZERO;
            for i in m.iter() {
                out.0 |= 1 << sifted.order[i].0;
            }
            out
        };
        let mut moved = sifted.roots.iter().copied();
        let local: Vec<Site> = combo
            .iter()
            .map(|s| Site {
                probe: s.probe.clone(),
                funcs: moved.by_ref().take(s.funcs.len()).collect(),
                support: permute(s.support),
            })
            .collect();
        let refs: Vec<&Site> = local.iter().collect();
        let mode = if matches!(property, Property::Probing(_)) {
            CheckMode::RowWise
        } else {
            options.mode
        };
        let internal = refs.iter().filter(|s| s.is_internal()).count();
        let region = region_for(property, &refs, refs.len(), internal);
        let mut ctx = EngineCtx::new(
            options.engine,
            self.varmap.num_vars as u32,
            effective_cache_budget(options),
            options.node_budget,
            options.dense_cut,
            &Private,
        );
        ctx.begin_tuple(&refs);
        // Local indices are the throwaway context's cache keys; they never
        // mix with another run's keys because the context dies here.
        let local_idxs: Vec<usize> = (0..refs.len()).collect();
        let hit = ctx.check_combination(
            &sifted.manager,
            &vm,
            &refs,
            &local_idxs,
            &region,
            mode,
            stats,
        );
        ctx.fold_cache_stats(stats);
        match hit {
            Some((mask, reason, coefficient)) => {
                let inv = sifted.inverse_order();
                let mut back = Mask::ZERO;
                for level in mask.iter() {
                    back.0 |= 1 << inv[level].0;
                }
                ComboStep::Violation(Witness {
                    combination: refs.iter().map(|s| s.probe.clone()).collect(),
                    mask: self.restore_mask(back),
                    reason,
                    coefficient,
                })
            }
            None => ComboStep::Clean,
        }
    }

    /// Checks the single combination `idxs` (site indices into
    /// `state.sites`). Does **not** count the combination in
    /// `stats.combinations` — the enumeration driver owns that counter (and
    /// the time-limit / cancellation cadence around it).
    pub(crate) fn check_indices(
        &self,
        state: &mut EnumState,
        property: Property,
        prefilter: bool,
        idxs: &[usize],
        stats: &mut CheckStats,
    ) -> ComboStep {
        let combo: Vec<&Site> = idxs.iter().map(|&i| &state.sites[i]).collect();
        let internal = combo.iter().filter(|s| s.is_internal()).count();
        let region = region_for(property, &combo, combo.len(), internal);

        if prefilter {
            let support = combo.iter().fold(Mask::ZERO, |acc, s| acc | s.support);
            if region_prunable(&region, &self.varmap, support) {
                stats.pruned += 1;
                return ComboStep::Pruned;
            }
        }

        // In-sweep sifted screening: run the check in the sifted order
        // first. Clean carries over — violation existence is invariant
        // under variable reorder — while a violation falls through to the
        // canonical original-order check below, so the reported witness is
        // byte-identical to an unscreened run's.
        if let Some(screen) = &mut state.sift_screen {
            let s_combo: Vec<&Site> = idxs.iter().map(|&i| &screen.sites[i]).collect();
            let s_region = region_for(property, &s_combo, s_combo.len(), internal);
            let hit = screen.ctx.check_combination(
                &screen.manager,
                &screen.vm,
                &s_combo,
                idxs,
                &s_region,
                state.mode,
                stats,
            );
            if hit.is_none() {
                return ComboStep::Clean;
            }
        }

        // Pruned tuples never reach the engine, so budgeting starts here:
        // the prefilter is a sound proof, not a capacity concession.
        state.ctx.begin_tuple(&combo);

        let hit = state.ctx.check_combination(
            &self.unfolded.bdds,
            &self.varmap,
            &combo,
            idxs,
            &region,
            state.mode,
            stats,
        );
        match hit {
            Some((mask, reason, coefficient)) => ComboStep::Violation(Witness {
                combination: combo.iter().map(|s| s.probe.clone()).collect(),
                mask: self.restore_mask(mask),
                reason,
                coefficient,
            }),
            None => ComboStep::Clean,
        }
    }

    /// Releases transient decision-diagram memory after an enumeration.
    /// MAPI/FUJITA verification mutates the shared BDD manager (T matrices,
    /// support BDDs); this gives the memory back between runs.
    pub(crate) fn end_enumeration(&mut self) {
        self.unfolded.bdds.clear_caches();
    }

    /// The shared enumeration loop; `on_witness` decides whether to stop.
    /// Returns the stats and the combinations quarantined by the
    /// per-combination isolation boundary (budget exhaustion or a caught
    /// panic), in enumeration order.
    fn run_enumeration(
        &mut self,
        property: Property,
        options: &VerifyOptions,
        control: &EnumControl,
        on_witness: &mut dyn FnMut(Witness) -> ControlFlow<()>,
    ) -> (CheckStats, Vec<SkippedCombination>) {
        crate::isolate::install_quiet_hook();
        let start = Instant::now();
        if options.presift {
            self.apply_presift();
        }
        let dd = Self::runtime_backend(options);
        let mut state = self.begin_enumeration_with(property, options, dd.as_ref());
        let d = property.order() as usize;
        let mut stats = CheckStats::default();
        let mut skipped: Vec<SkippedCombination> = Vec::new();

        let max_k = d.min(state.sites.len());
        let sizes: Vec<usize> = if options.largest_first {
            (1..=max_k).rev().collect()
        } else {
            (1..=max_k).collect()
        };

        let this = &*self;
        // Position in the deterministic global enumeration order — counted
        // over *all* combinations (including sharded-out ones) so indices
        // agree with the scheduler's batch indices and across shard counts.
        let mut index: u64 = 0;
        'sizes: for k in sizes {
            let flow = for_each_combination(state.sites.len(), k, &mut |idxs| {
                let my_index = index;
                index += 1;
                if let Some((tid, count)) = control.shard {
                    if idxs[0] as u32 % count != tid {
                        return ControlFlow::Continue(());
                    }
                }
                stats.combinations += 1;
                if stats.combinations % 256 == 1 {
                    if crate::shutdown::requested() {
                        stats.interrupted = true;
                        return ControlFlow::Break(());
                    }
                    if let Some(flag) = &control.cancel {
                        if flag.load(Ordering::Relaxed) {
                            stats.timed_out = true;
                            return ControlFlow::Break(());
                        }
                    }
                    state.ctx.maybe_collect();
                }
                // The wall-clock budget is checked on every combination (a
                // clock read is negligible next to any convolution).
                if let Some(limit) = options.time_limit {
                    if start.elapsed() > limit {
                        stats.timed_out = true;
                        return ControlFlow::Break(());
                    }
                }
                match crate::isolate::check_isolated(
                    this,
                    &mut state,
                    property,
                    options,
                    dd.as_ref(),
                    my_index,
                    idxs,
                    &mut stats,
                ) {
                    Ok(ComboStep::Clean | ComboStep::Pruned) => ControlFlow::Continue(()),
                    Ok(ComboStep::Violation(w)) => on_witness(w),
                    Err(reason) => {
                        skipped.push(SkippedCombination {
                            index: my_index,
                            combination: idxs
                                .iter()
                                .map(|&i| state.sites[i].probe.clone())
                                .collect(),
                            reason,
                        });
                        ControlFlow::Continue(())
                    }
                }
            });
            if flow.is_break() {
                break 'sizes;
            }
        }

        state.finish(&mut stats);
        self.end_enumeration();
        stats.total_time = start.elapsed();
        (stats, skipped)
    }
}

/// Owned per-pass enumeration state produced by
/// [`Verifier::begin_enumeration`]: the deterministic site list, the
/// resolved check mode, and the engine's spectrum/diagram caches.
pub(crate) struct EnumState {
    pub(crate) sites: Vec<Site>,
    pub(crate) mode: CheckMode,
    ctx: EngineCtx,
    /// In-sweep sifted screening ([`SiftMode::Auto`]); `None` in every
    /// other mode, under a node budget, or when the forest is too small to
    /// pay for a reorder.
    sift_screen: Option<SiftScreen>,
}

/// The sweep's sites re-expressed in a greedily sifted variable order,
/// with a dedicated engine context ([`SiftMode::Auto`]). Combinations are
/// checked here first; clean results carry over (violation existence is
/// invariant under variable reorder), and violations are re-derived in the
/// original order, so witnesses stay byte-identical to an unscreened run.
struct SiftScreen {
    manager: BddManager,
    sites: Vec<Site>,
    vm: VarMap,
    ctx: EngineCtx,
}

impl EnumState {
    /// Bounds decision-diagram arena growth (see [`EngineCtx::maybe_collect`]).
    pub(crate) fn maybe_collect(&mut self) {
        self.ctx.maybe_collect();
        if let Some(screen) = &mut self.sift_screen {
            screen.ctx.maybe_collect();
        }
    }

    /// Folds the engine's prefix-cache counters into `stats`. Call exactly
    /// once per engine-context epoch: when the worker's enumeration pass is
    /// over, or just before a quarantine rebuilds the context (each rebuilt
    /// context starts its counters at zero, so the epochs sum correctly).
    pub(crate) fn finish(&self, stats: &mut CheckStats) {
        self.ctx.fold_cache_stats(stats);
        if let Some(screen) = &self.sift_screen {
            screen.ctx.fold_cache_stats(stats);
        }
    }
}

/// The cache budget an options struct resolves to: `0` (disabled) when
/// caching is switched off.
fn effective_cache_budget(options: &VerifyOptions) -> usize {
    if options.cache {
        options.cache_budget
    } else {
        0
    }
}

/// Outcome of checking one combination.
pub(crate) enum ComboStep {
    /// No violation on this combination.
    Clean,
    /// Skipped by the functional-support prefilter (counted in
    /// `stats.pruned`).
    Pruned,
    /// The combination violates the property.
    Violation(Witness),
}

impl Verifier {
    /// Shrinks a violating combination to a minimal one: greedily drops
    /// observations while the remainder still violates `property` (with the
    /// budgets of the smaller combination). Useful because the
    /// largest-combinations-first search may return witnesses containing
    /// irrelevant probes.
    ///
    /// Returns the minimized witness, or the original if it cannot shrink.
    pub fn minimize_witness(
        &mut self,
        witness: &Witness,
        property: Property,
        options: &VerifyOptions,
    ) -> Witness {
        let mut current = witness.clone();
        loop {
            let mut shrunk = None;
            for drop in 0..current.combination.len() {
                if current.combination.len() == 1 {
                    break;
                }
                let subset: Vec<crate::property::ProbeRef> = current
                    .combination
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, p)| p.clone())
                    .collect();
                if let Some(w) = self.check_specific(&subset, property, options) {
                    shrunk = Some(w);
                    break;
                }
            }
            match shrunk {
                Some(w) => current = w,
                None => return current,
            }
        }
    }

    /// Checks a single explicit combination of observations against
    /// `property`, returning a witness if it violates.
    pub fn check_specific(
        &mut self,
        combination: &[crate::property::ProbeRef],
        property: Property,
        options: &VerifyOptions,
    ) -> Option<Witness> {
        let sites = extract_sites(&self.netlist, &self.unfolded, &options.sites)
            .expect("netlist validated in Verifier::new");
        // Match the requested probes to sites (by observed wire).
        let idxs: Vec<usize> = combination
            .iter()
            .map(|p| {
                sites
                    .iter()
                    .position(|s| s.probe.wire() == p.wire() && s.is_internal() == p.is_internal())
                    .expect("probe refers to a known site")
            })
            .collect();
        let combo: Vec<&Site> = idxs.iter().map(|&i| &sites[i]).collect();
        let mode = if matches!(property, Property::Probing(_)) {
            CheckMode::RowWise
        } else {
            options.mode
        };
        let internal = combo.iter().filter(|s| s.is_internal()).count();
        let region = region_for(property, &combo, combo.len(), internal);
        // No node budget here: `check_specific` / `minimize_witness` operate
        // on combinations that already completed (or that the caller chose
        // explicitly), so quarantining would only lose information.
        let mut ctx = EngineCtx::new(
            options.engine,
            self.varmap.num_vars as u32,
            effective_cache_budget(options),
            None,
            options.dense_cut,
            &Private,
        );
        let mut stats = CheckStats::default();
        let hit = ctx.check_combination(
            &self.unfolded.bdds,
            &self.varmap,
            &combo,
            &idxs,
            &region,
            mode,
            &mut stats,
        );
        hit.map(|(mask, reason, coefficient)| Witness {
            combination: combo.iter().map(|s| s.probe.clone()).collect(),
            mask: self.restore_mask(mask),
            reason,
            coefficient,
        })
    }
}

/// The pre-scheduler parallel check: static modulo sharding by leading site
/// index, one full enumeration pass per worker. Kept (hidden) as the
/// baseline that `walshcheck-bench`'s scheduler comparison measures the
/// work-stealing scheduler against.
///
/// # Errors
///
/// Fails if the netlist is structurally invalid or cyclic.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the engine).
#[doc(hidden)]
pub fn check_parallel_modulo(
    netlist: &Netlist,
    property: Property,
    options: &VerifyOptions,
    threads: usize,
) -> Result<Verdict, NetlistError> {
    let threads = threads.max(1);
    if threads == 1 {
        return Ok(Verifier::new(netlist)?.check_with_control(
            property,
            options,
            &EnumControl::default(),
        ));
    }
    // Validate up front so workers can't race on the error.
    netlist.validate()?;
    let flag = Arc::new(AtomicBool::new(false));
    let verdicts: Vec<Verdict> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let control = EnumControl {
                    shard: Some((tid as u32, threads as u32)),
                    cancel: Some(Arc::clone(&flag)),
                };
                let flag = Arc::clone(&flag);
                scope.spawn(move || {
                    let mut verifier = Verifier::new(netlist).expect("validated before spawning");
                    let verdict = verifier.check_with_control(property, options, &control);
                    if !verdict.secure {
                        flag.store(true, Ordering::Relaxed);
                    }
                    verdict
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    // Merge: any witness wins; otherwise aggregate the counters.
    let any_witness = verdicts.iter().any(|v| !v.secure);
    let mut merged_stats = crate::property::CheckStats::default();
    let mut witness: Option<Witness> = None;
    let mut skipped: Vec<SkippedCombination> = Vec::new();
    for v in verdicts {
        let mut stats = v.stats.clone();
        // A found witness is a complete answer — one leaking combination
        // disproves the property no matter how much of the space went
        // unexplored — so `timed_out` is cleared when *any* worker found
        // one. Workers stopped by cross-thread cancellation (because a
        // witness exists) are complete for our purposes; only a genuine
        // time-limit stop on an otherwise-clean run makes the merged
        // verdict partial. Pinned by `witness_is_definitive_even_under_
        // timeout` (property.rs) and `timeout_with_witness_is_violated`
        // (tests/resilience.rs); the scheduler merge mirrors this.
        stats.timed_out = stats.timed_out && !any_witness;
        merged_stats.merge(&stats);
        if !v.secure && witness.is_none() {
            witness = v.witness;
        }
        skipped.extend(v.skipped);
    }
    skipped.sort_by_key(|s| s.index);
    Ok(Verdict::conclude(property, witness, skipped, merged_stats))
}

/// The forbidden region for `property` on a combination of `s` observations
/// with `internal` internal probes.
fn region_for(property: Property, combo: &[&Site], s: usize, internal: usize) -> Region {
    match property {
        Property::Probing(_) => Region::Probing,
        Property::Ni(_) => Region::ShareBudget { budget: s as u32 },
        Property::Sni(_) => Region::ShareBudget {
            budget: internal as u32,
        },
        Property::Pini(_) => {
            let mut allowed = 0u64;
            for site in combo {
                if let crate::property::ProbeRef::Output { index, .. } = site.probe {
                    allowed |= 1 << index;
                }
            }
            Region::PiniBudget {
                allowed_indices: allowed,
                extra: internal as u32,
            }
        }
    }
}

/// Whether a combination whose functions only touch `support` can possibly
/// produce a coefficient inside the region (necessary-condition prefilter).
fn region_prunable(region: &Region, vm: &VarMap, support: Mask) -> bool {
    match *region {
        Region::Probing => !vm.share_groups.iter().any(|g| g.is_subset(support)),
        Region::ShareBudget { budget } => vm
            .share_groups
            .iter()
            .all(|&g| support.weight_in(g) <= budget),
        Region::PiniBudget {
            allowed_indices,
            extra,
        } => (vm.share_indices(support) & !allowed_indices).count_ones() <= extra,
    }
}

/// Visits every `k`-combination of `0..n` (lexicographic); the callback may
/// break out early.
fn for_each_combination(
    n: usize,
    k: usize,
    f: &mut dyn FnMut(&[usize]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    if k == 0 || k > n {
        return ControlFlow::Continue(());
    }
    let mut idxs: Vec<usize> = (0..k).collect();
    loop {
        f(&idxs)?;
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return ControlFlow::Continue(());
            }
            i -= 1;
            if idxs[i] != i + n - k {
                break;
            }
        }
        idxs[i] += 1;
        for j in i + 1..k {
            idxs[j] = idxs[j - 1] + 1;
        }
    }
}

/// Partial correlation rows of an enumeration prefix, in the DFS leaf order
/// of [`product_rows`]. `None` marks the path on which no site has
/// contributed a factor yet (joint mode's empty choices); it stands for the
/// unit spectrum without materializing it.
type RowList<S> = Vec<Option<Rc<S>>>;

/// Prefix row lists larger than this are not materialized (wide glitch
/// cones make the cartesian product of per-site choices explode); the
/// engine falls back to the streaming DFS, which needs O(depth) memory.
const MAX_PREFIX_ROWS: usize = 1 << 10;

/// Estimated heap bytes of a cached row list (spectra report their own
/// footprint; the `Option<Rc<_>>` slots add a word each).
fn row_list_bytes<S: Spectrum>(rows: &[Option<Rc<S>>]) -> usize {
    rows.iter().flatten().map(|s| s.heap_bytes()).sum::<usize>() + rows.len() * 8 + 32
}

/// The apply-cache slot limit derived from a prefix-cache byte budget
/// (`None` keeps the manager's default bound). The direct-mapped caches
/// cost 16 bytes per binary slot plus 12 bytes per unary slot at 1/16 the
/// slot count, so ~17 bytes buys one binary slot; the manager rounds the
/// limit down to a power of two, keeping the slab within the budget.
fn add_apply_limit(cache_budget: usize) -> Option<usize> {
    (cache_budget > 0).then(|| (cache_budget / 17).clamp(1 << 14, 1 << 22))
}

/// How one combination's correlation rows will be produced.
enum RowPlan<S> {
    /// Streaming DFS over the per-site groups (cache off, or the prefix
    /// row list would be too large to materialize).
    Dfs(Vec<Vec<Rc<S>>>),
    /// Materialized rows of the proper prefix plus the last site's group;
    /// the last convolution level is streamed row by row.
    Prefix(Rc<RowList<S>>, Rc<RowList<S>>),
}

/// FUJITA's analogue of [`RowPlan`] with sign-ADD handles.
enum SignPlan {
    Dfs(Vec<Vec<Add>>),
    Prefix(Rc<Vec<Option<Add>>>, Rc<Vec<Option<Add>>>),
}

/// Per-run engine state: spectrum caches, prefix caches and
/// decision-diagram managers.
struct EngineCtx {
    kind: EngineKind,
    walsh: SparseWalshCache,
    /// Node-keyed partial-WHT memo shared across FUJITA rows; cleared
    /// whenever [`EngineCtx::maybe_collect`] rebuilds `adds` (its keys are
    /// `adds` handles).
    wht_memo: WhtMemo,
    /// Dense spectral-kernel cut threaded into the map convolutions (see
    /// [`VerifyOptions::dense_cut`]; the DD-side kernels read the same cut
    /// from `walsh` / `wht_memo`).
    dense_cut: u32,
    map_base: FastMap<Bdd, Rc<MapSpectrum>>,
    lil_base: FastMap<Bdd, Rc<LilSpectrum>>,
    sign_base: FastMap<Bdd, Add>,
    adds: AddManager<Dyadic>,
    t_bdds: BddManager,
    t_cache: FastMap<Region, Bdd>,
    /// Byte budget of each prefix cache below; `0` disables prefix caching
    /// entirely (the engines then re-derive every tuple independently, as
    /// before PR 2).
    cache_budget: usize,
    /// Per-combination node-growth budget applied to `adds` / `t_bdds` (the
    /// only managers that grow while checking a tuple) plus a deterministic
    /// row-count pre-charge; `None` disables budgeting.
    node_budget: Option<usize>,
    /// Whether `adds` / `t_bdds` intern into a run-wide shared store; if
    /// so, [`EngineCtx::maybe_collect`] must not throw them away (the
    /// store is not reclaimed by dropping one manager, and other workers'
    /// handles stay live in it).
    shared: bool,
    map_prefix: PrefixCache<Rc<RowList<MapSpectrum>>>,
    lil_prefix: PrefixCache<Rc<RowList<LilSpectrum>>>,
    add_prefix: PrefixCache<Rc<Vec<Option<Add>>>>,
}

impl EngineCtx {
    fn new(
        kind: EngineKind,
        num_vars: u32,
        cache_budget: usize,
        node_budget: Option<usize>,
        dense_cut: u32,
        dd: &dyn DdBackend,
    ) -> Self {
        let cfg = DdConfig {
            apply_cache_limit: add_apply_limit(cache_budget),
            node_budget,
        };
        let adds = dd.add_manager(num_vars, &cfg);
        let t_bdds = dd.bdd_manager(num_vars, &cfg);
        EngineCtx {
            kind,
            shared: dd.kind() == Backend::Shared,
            // The base-spectrum memos predate the prefix caches and stay on
            // even with caching disabled (cache_budget 0 ⇒ unbounded, the
            // pre-PR-10 behavior); a configured budget bounds them too.
            walsh: SparseWalshCache::with_config(cache_budget, dense_cut),
            wht_memo: WhtMemo::with_config(cache_budget, dense_cut),
            dense_cut,
            map_base: FastMap::default(),
            lil_base: FastMap::default(),
            sign_base: FastMap::default(),
            adds,
            t_bdds,
            t_cache: FastMap::default(),
            cache_budget,
            node_budget,
            map_prefix: PrefixCache::new(cache_budget),
            lil_prefix: PrefixCache::new(cache_budget),
            add_prefix: PrefixCache::new(cache_budget),
        }
    }

    /// Opens a tuple-sized budget window: rebases the managers' growth
    /// baselines and pre-charges a deterministic estimate of the tuple's row
    /// count. The pre-charge (`Σ_site 2^|funcs| − 1`, a lower bound on the
    /// correlation rows the tuple contributes) is a pure function of the
    /// tuple, independent of worker history or cache warmth — it is what
    /// makes tiny-budget quarantine lists identical at every thread count.
    /// Diverges with [`walshcheck_dd::budget::CapacityExceeded`] when the
    /// estimate alone exceeds the budget.
    fn begin_tuple(&mut self, combo: &[&Site]) {
        let Some(limit) = self.node_budget else {
            return;
        };
        let est = combo.iter().fold(0usize, |acc, s| {
            let rows = 1usize
                .checked_shl(s.funcs.len() as u32)
                .map_or(usize::MAX, |p| p - 1);
            acc.saturating_add(rows)
        });
        if est > limit {
            walshcheck_dd::budget::exceeded("tuple-estimate", est, limit);
        }
        self.adds.rebase_node_budget();
        self.t_bdds.rebase_node_budget();
    }

    /// Bounds arena growth over very long enumerations: the per-row ADDs
    /// and support BDDs are transient, so once the arenas grow past a
    /// threshold everything (including the cached T matrices and sign
    /// ADDs, which are cheap to rebuild) is dropped and re-created. Cached
    /// prefix ADD handles point into the old arena, so the ADD prefix
    /// cache is invalidated too (the spectrum prefix caches survive).
    fn maybe_collect(&mut self) {
        const NODE_LIMIT: usize = 4_000_000;
        // On the shared backend the arena is run-wide and append-only:
        // dropping this worker's managers frees nothing and would orphan
        // the cached T matrices for no benefit, so collection is a no-op
        // (the store is sized for the run and dies with it).
        if self.shared {
            return;
        }
        if self.adds.arena_size() > NODE_LIMIT || self.t_bdds.arena_size() > NODE_LIMIT {
            let n = self.t_bdds.num_vars();
            self.adds = AddManager::new(self.adds.num_vars());
            if let Some(limit) = add_apply_limit(self.cache_budget) {
                self.adds.set_apply_cache_limit(limit);
            }
            self.adds.set_node_budget(self.node_budget);
            self.t_bdds = BddManager::new(n);
            self.t_bdds.set_node_budget(self.node_budget);
            self.t_cache.clear();
            self.sign_base.clear();
            self.add_prefix.clear();
            // The WHT memo is keyed by handles into the old `adds` arena.
            self.wht_memo.clear();
        }
    }

    /// Folds the prefix-cache counters into `stats` (at most one of the
    /// three caches is active for any engine kind; the others stay zero).
    fn fold_cache_stats(&self, stats: &mut CheckStats) {
        for s in [
            self.map_prefix.stats(),
            self.lil_prefix.stats(),
            self.add_prefix.stats(),
        ] {
            stats.cache_hits += s.hits;
            stats.cache_misses += s.misses;
            stats.cache_evictions += s.evictions;
            stats.cache_peak_bytes += s.peak_bytes;
        }
        for s in [self.walsh.stats(), self.wht_memo.stats()] {
            stats.dd_cache_hits += s.hits;
            stats.dd_cache_misses += s.misses;
            stats.dd_cache_evictions += s.evictions;
            stats.dd_cache_peak_bytes += s.peak_bytes as u64;
        }
    }

    fn t_matrix(&mut self, region: &Region, vm: &VarMap) -> Bdd {
        if let Some(&t) = self.t_cache.get(region) {
            return t;
        }
        let t = region.to_bdd(vm, &mut self.t_bdds);
        self.t_cache.insert(region.clone(), t);
        t
    }

    /// Checks one combination; returns a violating coordinate, the reason,
    /// and the leaking coefficient when a single row exhibits it. `idxs`
    /// are the combination's global site indices — the prefix-cache keys.
    #[allow(clippy::too_many_arguments)]
    fn check_combination(
        &mut self,
        bdds: &BddManager,
        vm: &VarMap,
        combo: &[&Site],
        idxs: &[usize],
        region: &Region,
        mode: CheckMode,
        stats: &mut CheckStats,
    ) -> Option<(Mask, String, Option<Dyadic>)> {
        match (self.kind, mode) {
            (EngineKind::Lil, _) => {
                self.scan_check::<LilSpectrum>(bdds, vm, combo, idxs, region, mode, stats)
            }
            (EngineKind::Map, _) => {
                self.scan_check::<MapSpectrum>(bdds, vm, combo, idxs, region, mode, stats)
            }
            (EngineKind::Mapi, CheckMode::RowWise) => {
                self.mapi_rowwise(bdds, vm, combo, idxs, region, stats)
            }
            // MAPI joint: the union-support accumulation is a map scan (the
            // ADD only accelerates the per-row region product).
            (EngineKind::Mapi, CheckMode::Joint) => {
                self.scan_check::<MapSpectrum>(bdds, vm, combo, idxs, region, mode, stats)
            }
            (EngineKind::Fujita, _) => {
                self.fujita_check(bdds, vm, combo, idxs, region, mode, stats)
            }
        }
    }

    // ---- scan engines (LIL / MAP) ----

    #[allow(clippy::too_many_arguments)]
    fn scan_check<S: Spectrum + SpectrumBase>(
        &mut self,
        bdds: &BddManager,
        vm: &VarMap,
        combo: &[&Site],
        idxs: &[usize],
        region: &Region,
        mode: CheckMode,
        stats: &mut CheckStats,
    ) -> Option<(Mask, String, Option<Dyadic>)> {
        let joint = mode == CheckMode::Joint;
        let plan = self.row_plan::<S>(bdds, combo, idxs, joint, stats);
        let dense_cut = self.dense_cut;
        match mode {
            CheckMode::RowWise => {
                let mut hit = None;
                let _ = drive_rows(&plan, false, dense_cut, stats, &mut |spec, stats| {
                    stats.rows_checked += 1;
                    let t = Instant::now();
                    let found = spec.find(&|m, _| region.matches(vm, m));
                    stats.verification_time += t.elapsed();
                    if let Some((m, c)) = found {
                        hit = Some((m, c));
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                });
                hit.map(|(m, c)| (m, rowwise_reason(region, vm, m), Some(c)))
            }
            CheckMode::Joint => {
                let mut union = Mask::ZERO;
                let _ = drive_rows(&plan, true, dense_cut, stats, &mut |spec, stats| {
                    stats.rows_checked += 1;
                    let t = Instant::now();
                    union = union | spec.support_union(&|m| vm.rho_is_zero(m));
                    stats.verification_time += t.elapsed();
                    ControlFlow::Continue(())
                });
                joint_verdict(region, vm, union).map(|(m, r)| (m, r, None))
            }
        }
    }

    /// Decides how this combination's rows will be produced and computes
    /// the shared pieces: with the cache enabled, per-site groups and the
    /// proper prefix's accumulated rows come from the prefix cache; with it
    /// disabled (or when materializing the prefix would be too large), the
    /// per-site groups feed the streaming DFS of [`product_rows`].
    fn row_plan<S: Spectrum + SpectrumBase>(
        &mut self,
        bdds: &BddManager,
        combo: &[&Site],
        idxs: &[usize],
        joint: bool,
        stats: &mut CheckStats,
    ) -> RowPlan<S> {
        if self.cache_budget == 0 {
            return RowPlan::Dfs(self.subset_spectra::<S>(bdds, combo, stats));
        }
        let groups: Vec<Rc<RowList<S>>> = combo
            .iter()
            .zip(idxs)
            .map(|(site, &i)| self.site_rows::<S>(bdds, site, i, stats))
            .collect();
        let k = groups.len();
        let rows_estimate = groups[..k - 1]
            .iter()
            .map(|g| g.len() + joint as usize)
            .fold(1usize, usize::saturating_mul);
        if rows_estimate > MAX_PREFIX_ROWS {
            let plain = groups
                .iter()
                .map(|g| g.iter().flatten().cloned().collect())
                .collect();
            return RowPlan::Dfs(plain);
        }
        let prefix = if k == 1 {
            Rc::new(vec![None])
        } else {
            self.prefix_rows::<S>(&idxs[..k - 1], &groups[..k - 1], joint, stats)
        };
        RowPlan::Prefix(prefix, Rc::clone(&groups[k - 1]))
    }

    /// The per-site row group — spectra of every non-empty subset of the
    /// site's observed functions (a single element in the standard model) —
    /// cached at key `([i], row-wise)`, which doubles as the depth-1
    /// row-wise prefix entry (the values coincide).
    fn site_rows<S: Spectrum + SpectrumBase>(
        &mut self,
        bdds: &BddManager,
        site: &Site,
        idx: usize,
        stats: &mut CheckStats,
    ) -> Rc<RowList<S>> {
        if let Some(rows) = S::prefix_cache(self).get(&[idx], false) {
            return rows;
        }
        let rows = Rc::new(self.one_site_rows::<S>(bdds, site, stats));
        let bytes = row_list_bytes(&rows);
        S::prefix_cache(self).insert(&[idx], false, Rc::clone(&rows), bytes);
        rows
    }

    /// Computes one site's subset spectra (no cache interaction).
    fn one_site_rows<S: Spectrum + SpectrumBase>(
        &mut self,
        bdds: &BddManager,
        site: &Site,
        stats: &mut CheckStats,
    ) -> RowList<S> {
        let mut out: RowList<S> = Vec::with_capacity((1 << site.funcs.len()) - 1);
        // Enumerate non-empty subsets; reuse smaller subsets'
        // results: subset m = (m without lowest bit) ⊛ base(lowest).
        for m in 1usize..1 << site.funcs.len() {
            let low = m.trailing_zeros() as usize;
            let rest = m & (m - 1);
            let base = S::base(self, bdds, site.funcs[low], stats);
            let spec = if rest == 0 {
                base
            } else {
                let prev = out[rest - 1].as_ref().expect("site rows are all present");
                let t = Instant::now();
                let conv = prev.convolve_opt(&base, self.dense_cut);
                stats.convolution_time += t.elapsed();
                stats.convolutions += 1;
                Rc::new(conv)
            };
            out.push(Some(spec));
        }
        out
    }

    /// Accumulated partial rows of the proper prefix `idxs` (site-index
    /// slice of length ≥ 1), in DFS leaf order. Probes the cache from the
    /// deepest level down, then extends one level at a time, caching every
    /// intermediate so sibling tuples and deeper prefixes reuse it.
    fn prefix_rows<S: Spectrum + SpectrumBase>(
        &mut self,
        idxs: &[usize],
        groups: &[Rc<RowList<S>>],
        joint: bool,
        stats: &mut CheckStats,
    ) -> Rc<RowList<S>> {
        let depth = idxs.len();
        // Depth-1 row-wise rows are the site group itself (same cache key
        // `([i], false)` that `site_rows` maintains), so the descent stops
        // at level 1 without a second probe there.
        let (mut level, mut rows) = if joint {
            (0, Rc::new(vec![None]))
        } else {
            (1, Rc::clone(&groups[0]))
        };
        for j in ((level + 1)..=depth).rev() {
            if let Some(r) = S::prefix_cache(self).get(&idxs[..j], joint) {
                rows = r;
                level = j;
                break;
            }
        }
        while level < depth {
            let next = Rc::new(extend_rows(
                &rows,
                &groups[level],
                joint,
                self.dense_cut,
                stats,
            ));
            level += 1;
            let bytes = row_list_bytes(&next);
            S::prefix_cache(self).insert(&idxs[..level], joint, Rc::clone(&next), bytes);
            rows = next;
        }
        rows
    }

    /// Per-site spectra of every non-empty subset of the site's observed
    /// functions, computed fresh for this combination (the cache-off path:
    /// exactly the pre-PR-2 cost model).
    fn subset_spectra<S: Spectrum + SpectrumBase>(
        &mut self,
        bdds: &BddManager,
        combo: &[&Site],
        stats: &mut CheckStats,
    ) -> Vec<Vec<Rc<S>>> {
        combo
            .iter()
            .map(|site| {
                self.one_site_rows::<S>(bdds, site, stats)
                    .into_iter()
                    .flatten()
                    .collect()
            })
            .collect()
    }

    // ---- MAPI: map convolution, ADD verification ----

    fn mapi_rowwise(
        &mut self,
        bdds: &BddManager,
        vm: &VarMap,
        combo: &[&Site],
        idxs: &[usize],
        region: &Region,
        stats: &mut CheckStats,
    ) -> Option<(Mask, String, Option<Dyadic>)> {
        let plan = self.row_plan::<MapSpectrum>(bdds, combo, idxs, false, stats);
        let mut hit = None;
        let t_bdds = &mut self.t_bdds;
        let t_cache = &mut self.t_cache;
        // Interning-free screening: the existential query ∃α. T(α,ρ) ∧
        // W(α,ρ) ≠ 0 is first resolved by a direct mask scan of the key
        // set — the same `region.matches` predicate the T-matrix BDD was
        // built from — without creating a single node. It must not run
        // under a node budget (skipping the interning would move
        // quarantine points), and clean rows (the overwhelming majority on
        // secure gadgets) return straight from it; only a hit falls
        // through to the exact build-and-intersect below, whose witness —
        // `one_sat` over the BDD product — is byte-identical to an
        // unscreened run's.
        let screen_rows = self.node_budget.is_none();
        // The T-matrix BDD is only consulted past the screen, so its
        // construction is deferred to the first screen hit: secure gadgets
        // (every shipped benchmark) never pay for it. With the screen off
        // the old eager build is kept — every row intersects against it.
        let mut t_matrix = if screen_rows {
            None
        } else {
            Some(match t_cache.get(region) {
                Some(&t) => t,
                None => {
                    let t = region.to_bdd(vm, t_bdds);
                    t_cache.insert(region.clone(), t);
                    t
                }
            })
        };
        let dense_cut = self.dense_cut;
        let mut keys: Vec<u128> = Vec::new();
        let _ = drive_rows(&plan, false, dense_cut, stats, &mut |spec, stats| {
            stats.rows_checked += 1;
            let t = Instant::now();
            if screen_rows
                && !spec
                    .entries()
                    .iter()
                    .any(|(&k, c)| !c.is_zero() && region.matches(vm, Mask(k)))
            {
                stats.verification_time += t.elapsed();
                return ControlFlow::Continue(());
            }
            // The spectrum's non-zero support becomes a BDD straight from
            // the map keys (no intermediate ADD — the witness coefficient
            // comes back out of the map).
            keys.clear();
            keys.extend(
                spec.entries()
                    .iter()
                    .filter(|(_, c)| !c.is_zero())
                    .map(|(&k, _)| k),
            );
            let t_matrix = *t_matrix.get_or_insert_with(|| match t_cache.get(region) {
                Some(&t) => t,
                None => {
                    let t = region.to_bdd(vm, t_bdds);
                    t_cache.insert(region.clone(), t);
                    t
                }
            });
            let nonzero = t_bdds.from_keys(&mut keys);
            let product = t_bdds.and(nonzero, t_matrix);
            stats.verification_time += t.elapsed();
            if product != Bdd::FALSE {
                let alpha = t_bdds.one_sat(product).expect("satisfiable product");
                let coeff = *spec
                    .entries()
                    .get(&alpha)
                    .expect("witness coordinate is in the support");
                hit = Some((Mask(alpha), coeff));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        hit.map(|(m, c)| (m, rowwise_reason(region, vm, m), Some(c)))
    }

    // ---- FUJITA: full ADD pipeline ----

    #[allow(clippy::too_many_arguments)]
    fn fujita_check(
        &mut self,
        bdds: &BddManager,
        vm: &VarMap,
        combo: &[&Site],
        idxs: &[usize],
        region: &Region,
        mode: CheckMode,
        stats: &mut CheckStats,
    ) -> Option<(Mask, String, Option<Dyadic>)> {
        let joint = mode == CheckMode::Joint;
        let plan = self.sign_plan(bdds, combo, idxs, joint, stats);
        let t_matrix = self.t_matrix(region, vm);
        let adds = &mut self.adds;
        let t_bdds = &mut self.t_bdds;
        let wht_memo = &mut self.wht_memo;

        match mode {
            CheckMode::RowWise => {
                let mut hit = None;
                let _ = drive_signs(adds, &plan, false, stats, &mut |adds, sign, stats| {
                    stats.rows_checked += 1;
                    let t = Instant::now();
                    let spec = wht_with(adds, sign, wht_memo);
                    stats.convolution_time += t.elapsed();
                    stats.convolutions += 1;
                    let t = Instant::now();
                    let nonzero = adds.nonzero_bdd(t_bdds, spec);
                    let product = t_bdds.and(nonzero, t_matrix);
                    stats.verification_time += t.elapsed();
                    if product != Bdd::FALSE {
                        let alpha = t_bdds.one_sat(product).expect("satisfiable product");
                        hit = Some((Mask(alpha), *adds.eval(spec, alpha)));
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                });
                hit.map(|(m, c)| (m, rowwise_reason(region, vm, m), Some(c)))
            }
            CheckMode::Joint => {
                let mut union = Mask::ZERO;
                let randoms = vm.random_vars();
                let _ = drive_signs(adds, &plan, true, stats, &mut |adds, sign, stats| {
                    stats.rows_checked += 1;
                    let t = Instant::now();
                    let spec = wht_with(adds, sign, wht_memo);
                    stats.convolution_time += t.elapsed();
                    stats.convolutions += 1;
                    let t = Instant::now();
                    let nonzero = adds.nonzero_bdd(t_bdds, spec);
                    union = union | add_support_union(t_bdds, nonzero, &randoms);
                    stats.verification_time += t.elapsed();
                    ControlFlow::Continue(())
                });
                joint_verdict(region, vm, union).map(|(m, r)| (m, r, None))
            }
        }
    }

    /// FUJITA's [`RowPlan`]: sign-ADD groups per site, with the proper
    /// prefix's accumulated sign products cached like the spectrum paths
    /// (ADD handles are cheap to store; the nodes live in the shared arena,
    /// whose growth [`EngineCtx::maybe_collect`] bounds separately).
    fn sign_plan(
        &mut self,
        bdds: &BddManager,
        combo: &[&Site],
        idxs: &[usize],
        joint: bool,
        stats: &mut CheckStats,
    ) -> SignPlan {
        if self.cache_budget == 0 {
            let groups = combo
                .iter()
                .map(|site| self.one_site_signs(bdds, site, stats))
                .collect();
            return SignPlan::Dfs(groups);
        }
        let groups: Vec<Rc<Vec<Option<Add>>>> = combo
            .iter()
            .zip(idxs)
            .map(|(site, &i)| self.site_signs(bdds, site, i, stats))
            .collect();
        let k = groups.len();
        let rows_estimate = groups[..k - 1]
            .iter()
            .map(|g| g.len() + joint as usize)
            .fold(1usize, usize::saturating_mul);
        if rows_estimate > MAX_PREFIX_ROWS {
            let plain = groups
                .iter()
                .map(|g| g.iter().flatten().copied().collect())
                .collect();
            return SignPlan::Dfs(plain);
        }
        let prefix = if k == 1 {
            Rc::new(vec![None])
        } else {
            self.prefix_signs(&idxs[..k - 1], &groups[..k - 1], joint, stats)
        };
        SignPlan::Prefix(prefix, Rc::clone(&groups[k - 1]))
    }

    /// Cached per-site sign-ADD group (key `([i], row-wise)` in the ADD
    /// prefix cache, mirroring [`EngineCtx::site_rows`]).
    fn site_signs(
        &mut self,
        bdds: &BddManager,
        site: &Site,
        idx: usize,
        stats: &mut CheckStats,
    ) -> Rc<Vec<Option<Add>>> {
        if let Some(rows) = self.add_prefix.get(&[idx], false) {
            return rows;
        }
        let rows: Rc<Vec<Option<Add>>> = Rc::new(
            self.one_site_signs(bdds, site, stats)
                .into_iter()
                .map(Some)
                .collect(),
        );
        let bytes = rows.len() * 8 + 32;
        self.add_prefix
            .insert(&[idx], false, Rc::clone(&rows), bytes);
        rows
    }

    /// Sign-ADD products of every non-empty subset of one site's observed
    /// functions (no cache interaction).
    fn one_site_signs(
        &mut self,
        bdds: &BddManager,
        site: &Site,
        stats: &mut CheckStats,
    ) -> Vec<Add> {
        let mut out: Vec<Add> = Vec::with_capacity((1 << site.funcs.len()) - 1);
        for m in 1usize..1 << site.funcs.len() {
            let low = m.trailing_zeros() as usize;
            let rest = m & (m - 1);
            let base = self.sign(bdds, site.funcs[low], stats);
            let prod = if rest == 0 {
                base
            } else {
                let prev = out[rest - 1];
                let t = Instant::now();
                let p = self.adds.mul_op(prev, base);
                stats.convolution_time += t.elapsed();
                p
            };
            out.push(prod);
        }
        out
    }

    /// Accumulated sign products of the proper prefix `idxs`, analogous to
    /// [`EngineCtx::prefix_rows`]. `None` is the not-yet-multiplied path
    /// (the unit constant without materializing it; multiplying by the unit
    /// would return the identical hash-consed handle anyway).
    fn prefix_signs(
        &mut self,
        idxs: &[usize],
        groups: &[Rc<Vec<Option<Add>>>],
        joint: bool,
        stats: &mut CheckStats,
    ) -> Rc<Vec<Option<Add>>> {
        let depth = idxs.len();
        let (mut level, mut rows) = if joint {
            (0, Rc::new(vec![None]))
        } else {
            (1, Rc::clone(&groups[0]))
        };
        for j in ((level + 1)..=depth).rev() {
            if let Some(r) = self.add_prefix.get(&idxs[..j], joint) {
                rows = r;
                level = j;
                break;
            }
        }
        while level < depth {
            let group = Rc::clone(&groups[level]);
            let mut next: Vec<Option<Add>> =
                Vec::with_capacity(rows.len() * (group.len() + joint as usize));
            for &r in rows.iter() {
                if joint {
                    next.push(r);
                }
                for &c in group.iter().flatten() {
                    match r {
                        None => next.push(Some(c)),
                        Some(prev) => {
                            let t = Instant::now();
                            let p = self.adds.mul_op(prev, c);
                            stats.convolution_time += t.elapsed();
                            next.push(Some(p));
                        }
                    }
                }
            }
            let next = Rc::new(next);
            level += 1;
            let bytes = next.len() * 8 + 32;
            self.add_prefix
                .insert(&idxs[..level], joint, Rc::clone(&next), bytes);
            rows = next;
        }
        rows
    }

    fn sign(&mut self, bdds: &BddManager, f: Bdd, stats: &mut CheckStats) -> Add {
        if let Some(&s) = self.sign_base.get(&f) {
            return s;
        }
        let t = Instant::now();
        let s = sign_add(bdds, &mut self.adds, f);
        stats.convolution_time += t.elapsed();
        self.sign_base.insert(f, s);
        s
    }
}

/// Hook giving the generic scan path access to the right base-spectrum and
/// prefix caches of the context.
trait SpectrumBase: Sized {
    fn base(ctx: &mut EngineCtx, bdds: &BddManager, f: Bdd, stats: &mut CheckStats) -> Rc<Self>;
    fn prefix_cache(ctx: &mut EngineCtx) -> &mut PrefixCache<Rc<RowList<Self>>>;
}

impl SpectrumBase for MapSpectrum {
    fn base(ctx: &mut EngineCtx, bdds: &BddManager, f: Bdd, stats: &mut CheckStats) -> Rc<Self> {
        if let Some(s) = ctx.map_base.get(&f) {
            return Rc::clone(s);
        }
        let t = Instant::now();
        let sparse = walsh_sparse(bdds, f, &mut ctx.walsh);
        let s = Rc::new(MapSpectrum::from_map(&sparse));
        stats.convolution_time += t.elapsed();
        ctx.map_base.insert(f, Rc::clone(&s));
        s
    }

    fn prefix_cache(ctx: &mut EngineCtx) -> &mut PrefixCache<Rc<RowList<Self>>> {
        &mut ctx.map_prefix
    }
}

impl SpectrumBase for LilSpectrum {
    fn base(ctx: &mut EngineCtx, bdds: &BddManager, f: Bdd, stats: &mut CheckStats) -> Rc<Self> {
        if let Some(s) = ctx.lil_base.get(&f) {
            return Rc::clone(s);
        }
        let t = Instant::now();
        let sparse = walsh_sparse(bdds, f, &mut ctx.walsh);
        let s = Rc::new(LilSpectrum::from_map(&sparse));
        stats.convolution_time += t.elapsed();
        ctx.lil_base.insert(f, Rc::clone(&s));
        s
    }

    fn prefix_cache(ctx: &mut EngineCtx) -> &mut PrefixCache<Rc<RowList<Self>>> {
        &mut ctx.lil_prefix
    }
}

/// Extends the accumulated prefix rows by one site's group, preserving the
/// DFS leaf order (rows outer, choices inner; joint mode's empty choice
/// first). The convolution association is the same left-to-right chain the
/// DFS computes, so the resulting spectra are identical, not just
/// equivalent.
fn extend_rows<S: Spectrum>(
    rows: &RowList<S>,
    group: &RowList<S>,
    joint: bool,
    dense_cut: u32,
    stats: &mut CheckStats,
) -> RowList<S> {
    let mut out: RowList<S> = Vec::with_capacity(rows.len() * (group.len() + joint as usize));
    for r in rows {
        if joint {
            out.push(r.clone());
        }
        for c in group.iter().flatten() {
            match r {
                None => out.push(Some(Rc::clone(c))),
                Some(prev) => {
                    let t = Instant::now();
                    let conv = prev.convolve_opt(c, dense_cut);
                    stats.convolution_time += t.elapsed();
                    stats.convolutions += 1;
                    out.push(Some(Rc::new(conv)));
                }
            }
        }
    }
    out
}

/// Drives `leaf` over every correlation row of a [`RowPlan`], in the same
/// leaf order either way (the deterministic-witness guarantee depends on
/// it; see DESIGN.md §9).
fn drive_rows<S: Spectrum>(
    plan: &RowPlan<S>,
    joint: bool,
    dense_cut: u32,
    stats: &mut CheckStats,
    leaf: &mut dyn FnMut(&S, &mut CheckStats) -> ControlFlow<()>,
) -> ControlFlow<()> {
    match plan {
        RowPlan::Dfs(groups) => product_rows(groups, joint, dense_cut, stats, leaf),
        RowPlan::Prefix(rows, group) => stream_rows(rows, group, joint, dense_cut, stats, leaf),
    }
}

/// Streams the last convolution level: every prefix row times every choice
/// of the final site (plus, in joint mode, the prefix row itself for the
/// final site's empty choice). The all-empty path (`None` row, empty last
/// choice) is skipped exactly as [`product_rows`] skips its `None`
/// accumulator.
fn stream_rows<S: Spectrum>(
    rows: &RowList<S>,
    group: &RowList<S>,
    joint: bool,
    dense_cut: u32,
    stats: &mut CheckStats,
    leaf: &mut dyn FnMut(&S, &mut CheckStats) -> ControlFlow<()>,
) -> ControlFlow<()> {
    for r in rows {
        if joint {
            if let Some(spec) = r {
                leaf(spec, stats)?;
            }
        }
        for c in group.iter().flatten() {
            match r {
                None => leaf(c, stats)?,
                Some(prev) => {
                    let t = Instant::now();
                    let conv = prev.convolve_opt(c, dense_cut);
                    stats.convolution_time += t.elapsed();
                    stats.convolutions += 1;
                    leaf(&conv, stats)?;
                }
            }
        }
    }
    ControlFlow::Continue(())
}

/// [`drive_rows`] for the FUJITA sign-ADD pipeline.
fn drive_signs(
    adds: &mut AddManager<Dyadic>,
    plan: &SignPlan,
    joint: bool,
    stats: &mut CheckStats,
    leaf: &mut SignLeaf<'_>,
) -> ControlFlow<()> {
    match plan {
        SignPlan::Dfs(groups) => {
            let unit = adds.constant(Dyadic::ONE);
            product_signs(adds, groups, joint, unit, stats, leaf)
        }
        SignPlan::Prefix(rows, group) => stream_signs(adds, rows, group, joint, stats, leaf),
    }
}

/// Sign-ADD analogue of [`stream_rows`]. A `None` row times a choice is the
/// choice itself — multiplying by the unit constant would return the same
/// hash-consed handle, so skipping it changes nothing but the cost.
fn stream_signs(
    adds: &mut AddManager<Dyadic>,
    rows: &[Option<Add>],
    group: &[Option<Add>],
    joint: bool,
    stats: &mut CheckStats,
    leaf: &mut SignLeaf<'_>,
) -> ControlFlow<()> {
    for &r in rows {
        if joint {
            if let Some(sign) = r {
                leaf(adds, sign, stats)?;
            }
        }
        for &c in group.iter().flatten() {
            match r {
                None => leaf(adds, c, stats)?,
                Some(prev) => {
                    let t = Instant::now();
                    let prod = adds.mul_op(prev, c);
                    stats.convolution_time += t.elapsed();
                    leaf(adds, prod, stats)?;
                }
            }
        }
    }
    ControlFlow::Continue(())
}

/// Walks the cartesian product of per-site row choices, convolving along the
/// path. With `include_empty`, each site may also contribute nothing (used
/// by joint mode to reach every ω), except the all-empty row.
fn product_rows<S: Spectrum>(
    groups: &[Vec<Rc<S>>],
    include_empty: bool,
    dense_cut: u32,
    stats: &mut CheckStats,
    leaf: &mut dyn FnMut(&S, &mut CheckStats) -> ControlFlow<()>,
) -> ControlFlow<()> {
    fn rec<S: Spectrum>(
        groups: &[Vec<Rc<S>>],
        idx: usize,
        acc: Option<&S>,
        include_empty: bool,
        dense_cut: u32,
        stats: &mut CheckStats,
        leaf: &mut dyn FnMut(&S, &mut CheckStats) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if idx == groups.len() {
            return match acc {
                Some(spec) => leaf(spec, stats),
                None => ControlFlow::Continue(()),
            };
        }
        if include_empty {
            rec(groups, idx + 1, acc, include_empty, dense_cut, stats, leaf)?;
        }
        for choice in &groups[idx] {
            match acc {
                None => rec(
                    groups,
                    idx + 1,
                    Some(choice),
                    include_empty,
                    dense_cut,
                    stats,
                    leaf,
                )?,
                Some(prev) => {
                    let t = Instant::now();
                    let conv = prev.convolve_opt(choice, dense_cut);
                    stats.convolution_time += t.elapsed();
                    stats.convolutions += 1;
                    rec(
                        groups,
                        idx + 1,
                        Some(&conv),
                        include_empty,
                        dense_cut,
                        stats,
                        leaf,
                    )?;
                }
            }
        }
        ControlFlow::Continue(())
    }
    rec(groups, 0, None, include_empty, dense_cut, stats, leaf)
}

/// Leaf callback of [`product_signs`]: receives the manager, the
/// accumulated sign-ADD product, and the stats counters.
type SignLeaf<'a> =
    dyn FnMut(&mut AddManager<Dyadic>, Add, &mut CheckStats) -> ControlFlow<()> + 'a;

/// ADD analogue of [`product_rows`] for the FUJITA engine: multiplies sign
/// ADDs along the product walk.
fn product_signs(
    adds: &mut AddManager<Dyadic>,
    groups: &[Vec<Add>],
    include_empty: bool,
    unit: Add,
    stats: &mut CheckStats,
    leaf: &mut SignLeaf<'_>,
) -> ControlFlow<()> {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        adds: &mut AddManager<Dyadic>,
        groups: &[Vec<Add>],
        idx: usize,
        acc: Add,
        any: bool,
        include_empty: bool,
        stats: &mut CheckStats,
        leaf: &mut SignLeaf<'_>,
    ) -> ControlFlow<()> {
        if idx == groups.len() {
            if any {
                return leaf(adds, acc, stats);
            }
            return ControlFlow::Continue(());
        }
        if include_empty {
            rec(adds, groups, idx + 1, acc, any, include_empty, stats, leaf)?;
        }
        for i in 0..groups[idx].len() {
            let choice = groups[idx][i];
            let t = Instant::now();
            let prod = adds.mul_op(acc, choice);
            stats.convolution_time += t.elapsed();
            rec(
                adds,
                groups,
                idx + 1,
                prod,
                true,
                include_empty,
                stats,
                leaf,
            )?;
        }
        ControlFlow::Continue(())
    }
    rec(adds, groups, 0, unit, false, include_empty, stats, leaf)
}

/// Union of coordinates of a non-zero-support BDD after forcing `ρ = 0`:
/// variable `v` is in the union iff some surviving coordinate selects it.
fn add_support_union(bdds: &mut BddManager, nonzero: Bdd, randoms: &VarSet) -> Mask {
    let mut s0 = nonzero;
    for v in randoms.iter() {
        s0 = bdds.restrict(s0, v, false);
    }
    if s0 == Bdd::FALSE {
        return Mask::ZERO;
    }
    let mut acc = Mask::ZERO;
    let num_vars = bdds.num_vars();
    let support = bdds.support(s0);
    for v in 0..num_vars {
        let var = VarId(v);
        if randoms.contains(var) {
            continue;
        }
        if !support.contains(var) {
            // s0 is independent of v and non-empty: entries with v = 1 exist.
            acc.0 |= 1 << v;
            continue;
        }
        let lit = bdds.var(var);
        if bdds.and(s0, lit) != Bdd::FALSE {
            acc.0 |= 1 << v;
        }
    }
    acc
}

fn rowwise_reason(region: &Region, vm: &VarMap, mask: Mask) -> String {
    match *region {
        Region::Probing => {
            format!("non-zero correlation with raw secret(s) at α={mask} (full share groups, ρ=0)")
        }
        Region::ShareBudget { budget } => {
            let worst = vm
                .share_groups
                .iter()
                .map(|&g| mask.weight_in(g))
                .max()
                .unwrap_or(0);
            format!(
                "coefficient at α={mask} selects {worst} shares of one secret (budget {budget})"
            )
        }
        Region::PiniBudget {
            allowed_indices,
            extra,
        } => {
            let outside = (vm.share_indices(mask) & !allowed_indices).count_ones();
            format!(
                "coefficient at α={mask} uses {outside} non-output share indices (budget {extra})"
            )
        }
    }
}

fn joint_verdict(region: &Region, vm: &VarMap, union: Mask) -> Option<(Mask, String)> {
    match *region {
        Region::ShareBudget { budget } => {
            for (i, &g) in vm.share_groups.iter().enumerate() {
                let w = union.weight_in(g);
                if w > budget {
                    return Some((
                        union,
                        format!("simulation set needs {w} shares of secret #{i} (budget {budget})"),
                    ));
                }
            }
            None
        }
        Region::PiniBudget {
            allowed_indices,
            extra,
        } => {
            let outside = (vm.share_indices(union) & !allowed_indices).count_ones();
            (outside > extra).then(|| {
                (
                    union,
                    format!(
                        "simulation set needs {outside} non-output share indices (budget {extra})"
                    ),
                )
            })
        }
        Region::Probing => unreachable!("probing is checked row-wise"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_enumeration_is_exhaustive() {
        let mut seen = Vec::new();
        let _ = for_each_combination(5, 3, &mut |c| {
            seen.push(c.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[9], vec![2, 3, 4]);
        // Early break stops enumeration.
        let mut count = 0;
        let flow = for_each_combination(5, 2, &mut |_| {
            count += 1;
            if count == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(count, 3);
    }

    #[test]
    fn degenerate_combinations() {
        let mut n = 0;
        let _ = for_each_combination(3, 0, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 0);
        let _ = for_each_combination(2, 5, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 0);
        let _ = for_each_combination(3, 3, &mut |c| {
            assert_eq!(c, [0, 1, 2]);
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn engine_kind_display() {
        assert_eq!(EngineKind::Lil.to_string(), "LIL");
        assert_eq!(EngineKind::Mapi.to_string(), "MAPI");
        assert_eq!(EngineKind::default(), EngineKind::Mapi);
    }
}
