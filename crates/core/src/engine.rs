//! The exact spectral verifier and its four engine backends.
//!
//! [`Verifier::check`] enumerates all combinations of up to `d` observations
//! (output shares and internal probes), computes the Walsh correlation rows
//! of each combination, and tests them against the property's forbidden
//! region. The four [`EngineKind`] backends reproduce the implementation
//! alternatives compared in the paper's evaluation:
//!
//! | engine  | convolution        | verification                     |
//! |---------|--------------------|----------------------------------|
//! | `Lil`   | sorted lists (\[11\])| scan entries against the region  |
//! | `Map`   | hash maps          | scan entries against the region  |
//! | `Mapi`  | hash maps          | ADD × `T`-matrix (the paper)     |
//! | `Fujita`| sign-ADD product + | ADD × `T`-matrix                 |
//! |         | ADD Walsh transform|                                  |
//!
//! The enumeration applies the paper's largest-combinations-first heuristic
//! and an optional functional-support prefilter (a cheap necessary
//! condition), both switchable for the ablation benchmarks.

use std::collections::HashMap;
use std::ops::ControlFlow;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use walshcheck_circuit::glitch::ProbeModel;
use walshcheck_circuit::netlist::{Netlist, NetlistError};
use walshcheck_circuit::unfold::{unfold, Unfolded};
use walshcheck_dd::add::{Add, AddManager};
use walshcheck_dd::bdd::{Bdd, BddManager};
use walshcheck_dd::dyadic::Dyadic;
use walshcheck_dd::spectral::{sign_add, walsh_sparse, wht, SparseWalshCache};
use walshcheck_dd::var::{VarId, VarSet};

use crate::mask::{Mask, VarMap};
use crate::property::{CheckMode, CheckStats, Property, Verdict, Witness};
use crate::sites::{extract_sites, Site, SiteOptions};
use crate::spectrum::{LilSpectrum, MapSpectrum, Spectrum};
use crate::tmatrix::Region;

/// Selects the data structures used for convolution and verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Sorted list-of-lists — the exact baseline of reference \[11\].
    Lil,
    /// Hash maps for both convolution and verification.
    Map,
    /// Hash-map convolution, ADD-based verification — the paper's method.
    #[default]
    Mapi,
    /// Full ADD pipeline using the Fujita Walsh transform.
    Fujita,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Lil => "LIL",
            EngineKind::Map => "MAP",
            EngineKind::Mapi => "MAPI",
            EngineKind::Fujita => "FUJITA",
        })
    }
}

/// Options for a verification run.
///
/// Construct with [`VerifyOptions::builder`], [`VerifyOptions::default`] or
/// the [`VerifyOptions::paper`] preset; the struct is `#[non_exhaustive]`, so
/// literal construction outside this crate is not possible (fields may be
/// added without a breaking change). Individual fields stay public and can
/// be adjusted after construction.
///
/// Work distribution is no longer part of the options: sharding and
/// cross-worker cancellation are internal to the work-stealing scheduler
/// and are driven by [`crate::Session::threads`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct VerifyOptions {
    /// Engine backend.
    pub engine: EngineKind,
    /// Row-wise (paper-faithful) or joint (union-support) checking.
    pub mode: CheckMode,
    /// Probe-site extraction options (leakage model, input probing, dedup).
    pub sites: SiteOptions,
    /// Skip combinations whose functional support already satisfies the
    /// budget (sound, cheap necessary condition).
    pub prefilter: bool,
    /// Enumerate larger combinations first (the paper's search heuristic).
    pub largest_first: bool,
    /// Optional wall-clock budget; when exceeded the check stops and the
    /// verdict carries `stats.timed_out = true`.
    pub time_limit: Option<std::time::Duration>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            engine: EngineKind::Mapi,
            mode: CheckMode::Joint,
            sites: SiteOptions::default(),
            prefilter: true,
            largest_first: true,
            time_limit: None,
        }
    }
}

impl VerifyOptions {
    /// Starts a builder initialized with the default configuration.
    pub fn builder() -> VerifyOptionsBuilder {
        VerifyOptionsBuilder {
            options: VerifyOptions::default(),
        }
    }

    /// Paper-faithful configuration for an engine: row-wise checking with
    /// prefiltering disabled, as in the original evaluation.
    pub fn paper(engine: EngineKind) -> Self {
        VerifyOptions {
            engine,
            mode: CheckMode::RowWise,
            sites: SiteOptions::default(),
            prefilter: false,
            largest_first: true,
            time_limit: None,
        }
    }

    /// Re-opens this configuration as a builder (useful to tweak a preset).
    pub fn to_builder(&self) -> VerifyOptionsBuilder {
        VerifyOptionsBuilder {
            options: self.clone(),
        }
    }

    /// Sets the probe model (standard or glitch-extended).
    pub fn with_probe_model(mut self, model: ProbeModel) -> Self {
        self.sites.probe_model = model;
        self
    }
}

/// Fluent constructor for [`VerifyOptions`].
///
/// ```
/// use walshcheck_core::{CheckMode, EngineKind, VerifyOptions};
///
/// let options = VerifyOptions::builder()
///     .engine(EngineKind::Fujita)
///     .mode(CheckMode::RowWise)
///     .prefilter(false)
///     .build();
/// assert_eq!(options.engine, EngineKind::Fujita);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VerifyOptionsBuilder {
    options: VerifyOptions,
}

impl VerifyOptionsBuilder {
    /// Engine backend.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.options.engine = engine;
        self
    }

    /// Row-wise (paper-faithful) or joint (union-support) checking.
    pub fn mode(mut self, mode: CheckMode) -> Self {
        self.options.mode = mode;
        self
    }

    /// Replaces the probe-site extraction options wholesale.
    pub fn sites(mut self, sites: SiteOptions) -> Self {
        self.options.sites = sites;
        self
    }

    /// Probe model (standard or glitch-extended).
    pub fn probe_model(mut self, model: ProbeModel) -> Self {
        self.options.sites.probe_model = model;
        self
    }

    /// Whether unshared input wires are also probeable sites.
    pub fn include_inputs(mut self, include: bool) -> Self {
        self.options.sites.include_inputs = include;
        self
    }

    /// Deduplication of sites with identical observed function sets.
    pub fn dedup_sites(mut self, on: bool) -> Self {
        self.options.sites.dedup = on;
        self
    }

    /// Functional-support prefilter on/off.
    pub fn prefilter(mut self, on: bool) -> Self {
        self.options.prefilter = on;
        self
    }

    /// Largest-combinations-first enumeration on/off.
    pub fn largest_first(mut self, on: bool) -> Self {
        self.options.largest_first = on;
        self
    }

    /// Wall-clock budget for the run.
    pub fn time_limit(mut self, limit: std::time::Duration) -> Self {
        self.options.time_limit = Some(limit);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> VerifyOptions {
        self.options
    }
}

/// Work-distribution knobs for one enumeration pass. Scheduler-internal:
/// this is what the old `VerifyOptions::{shard, cancel}` fields became.
#[derive(Debug, Clone, Default)]
pub(crate) struct EnumControl {
    /// Only combinations whose first site index is congruent to `tid`
    /// modulo `count` are processed (static modulo sharding).
    pub(crate) shard: Option<(u32, u32)>,
    /// Cooperative cancellation: when set by another worker the run stops
    /// early (the local verdict is then moot).
    pub(crate) cancel: Option<Arc<AtomicBool>>,
}

/// The exact spectral verifier for one netlist.
#[derive(Debug)]
pub struct Verifier {
    netlist: Netlist,
    unfolded: Unfolded,
    varmap: VarMap,
}

impl Verifier {
    /// Unfolds the netlist and prepares the verifier.
    ///
    /// # Errors
    ///
    /// Fails if the netlist is structurally invalid or cyclic.
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let unfolded = unfold(netlist)?;
        let varmap = VarMap::from_netlist(netlist);
        Ok(Verifier {
            netlist: netlist.clone(),
            unfolded,
            varmap,
        })
    }

    /// The input-variable classification.
    pub fn varmap(&self) -> &VarMap {
        &self.varmap
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The symbolic unfolding (wire functions).
    pub fn unfolded(&self) -> &Unfolded {
        &self.unfolded
    }

    /// Checks `property` with the default options (MAPI engine, joint mode).
    pub fn check_default(&mut self, property: Property) -> Verdict {
        self.check_with_control(property, &VerifyOptions::default(), &EnumControl::default())
    }

    /// Checks `property` under `options`.
    ///
    /// Deprecated thin wrapper: [`crate::Session`] is the supported entry
    /// point (it adds parallelism and run observability on top of the same
    /// enumeration).
    ///
    /// Joint mode walks all `2^m − 1` rows of a combination with `m`
    /// observed functions; under very wide glitch cones this is expensive —
    /// prefer row-wise mode or the standard probe model there.
    #[deprecated(
        since = "0.2.0",
        note = "use `Session::new(netlist)?.property(p).run()` instead"
    )]
    pub fn check(&mut self, property: Property, options: &VerifyOptions) -> Verdict {
        self.check_with_control(property, options, &EnumControl::default())
    }

    /// [`Verifier::check`] with explicit work-distribution control — the
    /// primitive behind both the serial path and the modulo-shard baseline.
    pub(crate) fn check_with_control(
        &mut self,
        property: Property,
        options: &VerifyOptions,
        control: &EnumControl,
    ) -> Verdict {
        let mut witness: Option<Witness> = None;
        let stats = self.run_enumeration(property, options, control, &mut |w| {
            witness = Some(w);
            ControlFlow::Break(())
        });
        Verdict {
            property,
            secure: witness.is_none(),
            witness,
            stats,
        }
    }

    /// Enumerates violating combinations until `limit` witnesses are found
    /// (or the space is exhausted). Unlike [`Verifier::check`], the search
    /// continues past the first violation — useful for leakage diagnosis.
    pub fn find_witnesses(
        &mut self,
        property: Property,
        options: &VerifyOptions,
        limit: usize,
    ) -> Vec<Witness> {
        let mut found = Vec::new();
        let _ = self.run_enumeration(property, options, &EnumControl::default(), &mut |w| {
            found.push(w);
            if found.len() >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        found
    }

    /// Prepares the per-run enumeration state: the (deterministic) probe
    /// sites, the resolved check mode, and a fresh engine context. Shared
    /// between the serial enumeration and the scheduler's workers.
    pub(crate) fn begin_enumeration(
        &self,
        property: Property,
        options: &VerifyOptions,
    ) -> EnumState {
        let sites = extract_sites(&self.netlist, &self.unfolded, &options.sites)
            .expect("netlist validated in Verifier::new");
        // Probing security is a per-coefficient property: joint mode
        // degenerates to the row-wise region test.
        let mode = if matches!(property, Property::Probing(_)) {
            CheckMode::RowWise
        } else {
            options.mode
        };
        let ctx = EngineCtx::new(options.engine, self.varmap.num_vars as u32);
        EnumState { sites, mode, ctx }
    }

    /// Checks the single combination `idxs` (site indices into
    /// `state.sites`). Does **not** count the combination in
    /// `stats.combinations` — the enumeration driver owns that counter (and
    /// the time-limit / cancellation cadence around it).
    pub(crate) fn check_indices(
        &self,
        state: &mut EnumState,
        property: Property,
        prefilter: bool,
        idxs: &[usize],
        stats: &mut CheckStats,
    ) -> ComboStep {
        let combo: Vec<&Site> = idxs.iter().map(|&i| &state.sites[i]).collect();
        let internal = combo.iter().filter(|s| s.is_internal()).count();
        let region = region_for(property, &combo, combo.len(), internal);

        if prefilter {
            let support = combo.iter().fold(Mask::ZERO, |acc, s| acc | s.support);
            if region_prunable(&region, &self.varmap, support) {
                stats.pruned += 1;
                return ComboStep::Pruned;
            }
        }

        let hit = state.ctx.check_combination(
            &self.unfolded.bdds,
            &self.varmap,
            &combo,
            &region,
            state.mode,
            stats,
        );
        match hit {
            Some((mask, reason, coefficient)) => ComboStep::Violation(Witness {
                combination: combo.iter().map(|s| s.probe.clone()).collect(),
                mask,
                reason,
                coefficient,
            }),
            None => ComboStep::Clean,
        }
    }

    /// Releases transient decision-diagram memory after an enumeration.
    /// MAPI/FUJITA verification mutates the shared BDD manager (T matrices,
    /// support BDDs); this gives the memory back between runs.
    pub(crate) fn end_enumeration(&mut self) {
        self.unfolded.bdds.clear_caches();
    }

    /// The shared enumeration loop; `on_witness` decides whether to stop.
    fn run_enumeration(
        &mut self,
        property: Property,
        options: &VerifyOptions,
        control: &EnumControl,
        on_witness: &mut dyn FnMut(Witness) -> ControlFlow<()>,
    ) -> CheckStats {
        let start = Instant::now();
        let mut state = self.begin_enumeration(property, options);
        let d = property.order() as usize;
        let mut stats = CheckStats::default();

        let max_k = d.min(state.sites.len());
        let sizes: Vec<usize> = if options.largest_first {
            (1..=max_k).rev().collect()
        } else {
            (1..=max_k).collect()
        };

        let this = &*self;
        'sizes: for k in sizes {
            let flow = for_each_combination(state.sites.len(), k, &mut |idxs| {
                if let Some((tid, count)) = control.shard {
                    if idxs[0] as u32 % count != tid {
                        return ControlFlow::Continue(());
                    }
                }
                stats.combinations += 1;
                if stats.combinations % 256 == 1 {
                    if let Some(flag) = &control.cancel {
                        if flag.load(Ordering::Relaxed) {
                            stats.timed_out = true;
                            return ControlFlow::Break(());
                        }
                    }
                    state.ctx.maybe_collect();
                }
                // The wall-clock budget is checked on every combination (a
                // clock read is negligible next to any convolution).
                if let Some(limit) = options.time_limit {
                    if start.elapsed() > limit {
                        stats.timed_out = true;
                        return ControlFlow::Break(());
                    }
                }
                match this.check_indices(&mut state, property, options.prefilter, idxs, &mut stats)
                {
                    ComboStep::Clean | ComboStep::Pruned => ControlFlow::Continue(()),
                    ComboStep::Violation(w) => on_witness(w),
                }
            });
            if flow.is_break() {
                break 'sizes;
            }
        }

        self.end_enumeration();
        stats.total_time = start.elapsed();
        stats
    }
}

/// Owned per-pass enumeration state produced by
/// [`Verifier::begin_enumeration`]: the deterministic site list, the
/// resolved check mode, and the engine's spectrum/diagram caches.
pub(crate) struct EnumState {
    pub(crate) sites: Vec<Site>,
    pub(crate) mode: CheckMode,
    ctx: EngineCtx,
}

impl EnumState {
    /// Bounds decision-diagram arena growth (see [`EngineCtx::maybe_collect`]).
    pub(crate) fn maybe_collect(&mut self) {
        self.ctx.maybe_collect();
    }
}

/// Outcome of checking one combination.
pub(crate) enum ComboStep {
    /// No violation on this combination.
    Clean,
    /// Skipped by the functional-support prefilter (counted in
    /// `stats.pruned`).
    Pruned,
    /// The combination violates the property.
    Violation(Witness),
}

impl Verifier {
    /// Shrinks a violating combination to a minimal one: greedily drops
    /// observations while the remainder still violates `property` (with the
    /// budgets of the smaller combination). Useful because the
    /// largest-combinations-first search may return witnesses containing
    /// irrelevant probes.
    ///
    /// Returns the minimized witness, or the original if it cannot shrink.
    pub fn minimize_witness(
        &mut self,
        witness: &Witness,
        property: Property,
        options: &VerifyOptions,
    ) -> Witness {
        let mut current = witness.clone();
        loop {
            let mut shrunk = None;
            for drop in 0..current.combination.len() {
                if current.combination.len() == 1 {
                    break;
                }
                let subset: Vec<crate::property::ProbeRef> = current
                    .combination
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, p)| p.clone())
                    .collect();
                if let Some(w) = self.check_specific(&subset, property, options) {
                    shrunk = Some(w);
                    break;
                }
            }
            match shrunk {
                Some(w) => current = w,
                None => return current,
            }
        }
    }

    /// Checks a single explicit combination of observations against
    /// `property`, returning a witness if it violates.
    pub fn check_specific(
        &mut self,
        combination: &[crate::property::ProbeRef],
        property: Property,
        options: &VerifyOptions,
    ) -> Option<Witness> {
        let sites = extract_sites(&self.netlist, &self.unfolded, &options.sites)
            .expect("netlist validated in Verifier::new");
        // Match the requested probes to sites (by observed wire).
        let combo: Vec<&Site> = combination
            .iter()
            .map(|p| {
                sites
                    .iter()
                    .find(|s| s.probe.wire() == p.wire() && s.is_internal() == p.is_internal())
                    .expect("probe refers to a known site")
            })
            .collect();
        let mode = if matches!(property, Property::Probing(_)) {
            CheckMode::RowWise
        } else {
            options.mode
        };
        let internal = combo.iter().filter(|s| s.is_internal()).count();
        let region = region_for(property, &combo, combo.len(), internal);
        let mut ctx = EngineCtx::new(options.engine, self.varmap.num_vars as u32);
        let mut stats = CheckStats::default();
        let hit = ctx.check_combination(
            &self.unfolded.bdds,
            &self.varmap,
            &combo,
            &region,
            mode,
            &mut stats,
        );
        hit.map(|(mask, reason, coefficient)| Witness {
            combination: combo.iter().map(|s| s.probe.clone()).collect(),
            mask,
            reason,
            coefficient,
        })
    }
}

/// Checks `property` on `netlist` with `threads` worker threads.
///
/// Deprecated thin wrapper over [`crate::Session`], which replaces the old
/// static modulo sharding with the work-stealing batch scheduler.
///
/// # Errors
///
/// Fails if the netlist is structurally invalid or cyclic.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the engine).
#[deprecated(
    since = "0.2.0",
    note = "use `Session::new(netlist)?.property(p).threads(n).run()` instead"
)]
pub fn check_parallel(
    netlist: &Netlist,
    property: Property,
    options: &VerifyOptions,
    threads: usize,
) -> Result<Verdict, NetlistError> {
    Ok(crate::Session::new(netlist)?
        .property(property)
        .options(options.clone())
        .threads(threads)
        .run())
}

/// The pre-scheduler parallel check: static modulo sharding by leading site
/// index, one full enumeration pass per worker. Kept (hidden) as the
/// baseline that `walshcheck-bench`'s scheduler comparison measures the
/// work-stealing scheduler against.
///
/// # Errors
///
/// Fails if the netlist is structurally invalid or cyclic.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the engine).
#[doc(hidden)]
pub fn check_parallel_modulo(
    netlist: &Netlist,
    property: Property,
    options: &VerifyOptions,
    threads: usize,
) -> Result<Verdict, NetlistError> {
    let threads = threads.max(1);
    if threads == 1 {
        return Ok(Verifier::new(netlist)?.check_with_control(
            property,
            options,
            &EnumControl::default(),
        ));
    }
    // Validate up front so workers can't race on the error.
    netlist.validate()?;
    let flag = Arc::new(AtomicBool::new(false));
    let verdicts: Vec<Verdict> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let control = EnumControl {
                    shard: Some((tid as u32, threads as u32)),
                    cancel: Some(Arc::clone(&flag)),
                };
                let flag = Arc::clone(&flag);
                scope.spawn(move || {
                    let mut verifier = Verifier::new(netlist).expect("validated before spawning");
                    let verdict = verifier.check_with_control(property, options, &control);
                    if !verdict.secure {
                        flag.store(true, Ordering::Relaxed);
                    }
                    verdict
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    // Merge: any witness wins; otherwise aggregate the counters.
    let any_witness = verdicts.iter().any(|v| !v.secure);
    let mut merged = Verdict {
        property,
        secure: true,
        witness: None,
        stats: crate::property::CheckStats::default(),
    };
    for v in verdicts {
        let mut stats = v.stats.clone();
        // Workers stopped by cross-thread cancellation (because a witness
        // exists) are complete for our purposes; only a genuine time-limit
        // stop on an otherwise-clean run makes the merged verdict partial.
        stats.timed_out = stats.timed_out && !any_witness;
        merged.stats.merge(&stats);
        if !v.secure && merged.witness.is_none() {
            merged.secure = false;
            merged.witness = v.witness;
        }
    }
    Ok(merged)
}

/// Checks `property` on `netlist` in one call.
///
/// Deprecated thin wrapper over [`crate::Session`].
///
/// # Errors
///
/// Fails if the netlist is structurally invalid or cyclic.
#[deprecated(
    since = "0.2.0",
    note = "use `Session::new(netlist)?.property(p).run()` instead"
)]
pub fn check_netlist(
    netlist: &Netlist,
    property: Property,
    options: &VerifyOptions,
) -> Result<Verdict, NetlistError> {
    Ok(crate::Session::new(netlist)?
        .property(property)
        .options(options.clone())
        .run())
}

/// The forbidden region for `property` on a combination of `s` observations
/// with `internal` internal probes.
fn region_for(property: Property, combo: &[&Site], s: usize, internal: usize) -> Region {
    match property {
        Property::Probing(_) => Region::Probing,
        Property::Ni(_) => Region::ShareBudget { budget: s as u32 },
        Property::Sni(_) => Region::ShareBudget {
            budget: internal as u32,
        },
        Property::Pini(_) => {
            let mut allowed = 0u64;
            for site in combo {
                if let crate::property::ProbeRef::Output { index, .. } = site.probe {
                    allowed |= 1 << index;
                }
            }
            Region::PiniBudget {
                allowed_indices: allowed,
                extra: internal as u32,
            }
        }
    }
}

/// Whether a combination whose functions only touch `support` can possibly
/// produce a coefficient inside the region (necessary-condition prefilter).
fn region_prunable(region: &Region, vm: &VarMap, support: Mask) -> bool {
    match *region {
        Region::Probing => !vm.share_groups.iter().any(|g| g.is_subset(support)),
        Region::ShareBudget { budget } => vm
            .share_groups
            .iter()
            .all(|&g| support.weight_in(g) <= budget),
        Region::PiniBudget {
            allowed_indices,
            extra,
        } => (vm.share_indices(support) & !allowed_indices).count_ones() <= extra,
    }
}

/// Visits every `k`-combination of `0..n` (lexicographic); the callback may
/// break out early.
fn for_each_combination(
    n: usize,
    k: usize,
    f: &mut dyn FnMut(&[usize]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    if k == 0 || k > n {
        return ControlFlow::Continue(());
    }
    let mut idxs: Vec<usize> = (0..k).collect();
    loop {
        f(&idxs)?;
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return ControlFlow::Continue(());
            }
            i -= 1;
            if idxs[i] != i + n - k {
                break;
            }
        }
        idxs[i] += 1;
        for j in i + 1..k {
            idxs[j] = idxs[j - 1] + 1;
        }
    }
}

/// Per-run engine state: spectrum caches and decision-diagram managers.
struct EngineCtx {
    kind: EngineKind,
    walsh: SparseWalshCache,
    map_base: HashMap<Bdd, Rc<MapSpectrum>>,
    lil_base: HashMap<Bdd, Rc<LilSpectrum>>,
    sign_base: HashMap<Bdd, Add>,
    adds: AddManager<Dyadic>,
    t_bdds: BddManager,
    t_cache: HashMap<Region, Bdd>,
}

impl EngineCtx {
    fn new(kind: EngineKind, num_vars: u32) -> Self {
        EngineCtx {
            kind,
            walsh: SparseWalshCache::new(),
            map_base: HashMap::new(),
            lil_base: HashMap::new(),
            sign_base: HashMap::new(),
            adds: AddManager::new(num_vars),
            t_bdds: BddManager::new(num_vars),
            t_cache: HashMap::new(),
        }
    }

    /// Bounds arena growth over very long enumerations: the per-row ADDs
    /// and support BDDs are transient, so once the arenas grow past a
    /// threshold everything (including the cached T matrices and sign
    /// ADDs, which are cheap to rebuild) is dropped and re-created.
    fn maybe_collect(&mut self) {
        const NODE_LIMIT: usize = 4_000_000;
        if self.adds.arena_size() > NODE_LIMIT || self.t_bdds.arena_size() > NODE_LIMIT {
            let n = self.t_bdds.num_vars();
            self.adds = AddManager::new(self.adds.num_vars());
            self.t_bdds = BddManager::new(n);
            self.t_cache.clear();
            self.sign_base.clear();
        }
    }

    fn t_matrix(&mut self, region: &Region, vm: &VarMap) -> Bdd {
        if let Some(&t) = self.t_cache.get(region) {
            return t;
        }
        let t = region.to_bdd(vm, &mut self.t_bdds);
        self.t_cache.insert(region.clone(), t);
        t
    }

    /// Checks one combination; returns a violating coordinate, the reason,
    /// and the leaking coefficient when a single row exhibits it.
    fn check_combination(
        &mut self,
        bdds: &BddManager,
        vm: &VarMap,
        combo: &[&Site],
        region: &Region,
        mode: CheckMode,
        stats: &mut CheckStats,
    ) -> Option<(Mask, String, Option<Dyadic>)> {
        match (self.kind, mode) {
            (EngineKind::Lil, _) => {
                self.scan_check::<LilSpectrum>(bdds, vm, combo, region, mode, stats)
            }
            (EngineKind::Map, _) => {
                self.scan_check::<MapSpectrum>(bdds, vm, combo, region, mode, stats)
            }
            (EngineKind::Mapi, CheckMode::RowWise) => {
                self.mapi_rowwise(bdds, vm, combo, region, stats)
            }
            // MAPI joint: the union-support accumulation is a map scan (the
            // ADD only accelerates the per-row region product).
            (EngineKind::Mapi, CheckMode::Joint) => {
                self.scan_check::<MapSpectrum>(bdds, vm, combo, region, mode, stats)
            }
            (EngineKind::Fujita, _) => self.fujita_check(bdds, vm, combo, region, mode, stats),
        }
    }

    // ---- scan engines (LIL / MAP) ----

    fn scan_check<S: Spectrum + SpectrumBase>(
        &mut self,
        bdds: &BddManager,
        vm: &VarMap,
        combo: &[&Site],
        region: &Region,
        mode: CheckMode,
        stats: &mut CheckStats,
    ) -> Option<(Mask, String, Option<Dyadic>)> {
        let groups = self.subset_spectra::<S>(bdds, combo, mode, stats);
        match mode {
            CheckMode::RowWise => {
                let mut hit = None;
                let _ = product_rows(&groups, false, stats, &mut |spec, stats| {
                    stats.rows_checked += 1;
                    let t = Instant::now();
                    let found = spec.find(&|m, _| region.matches(vm, m));
                    stats.verification_time += t.elapsed();
                    if let Some((m, c)) = found {
                        hit = Some((m, c));
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                });
                hit.map(|(m, c)| (m, rowwise_reason(region, vm, m), Some(c)))
            }
            CheckMode::Joint => {
                let mut union = Mask::ZERO;
                let _ = product_rows(&groups, true, stats, &mut |spec, stats| {
                    stats.rows_checked += 1;
                    let t = Instant::now();
                    union = union | spec.support_union(&|m| vm.rho_is_zero(m));
                    stats.verification_time += t.elapsed();
                    ControlFlow::Continue(())
                });
                joint_verdict(region, vm, union).map(|(m, r)| (m, r, None))
            }
        }
    }

    /// Per-site spectra of every non-empty subset of the site's observed
    /// functions (a single element per site in the standard model).
    fn subset_spectra<S: Spectrum + SpectrumBase>(
        &mut self,
        bdds: &BddManager,
        combo: &[&Site],
        _mode: CheckMode,
        stats: &mut CheckStats,
    ) -> Vec<Vec<Rc<S>>> {
        combo
            .iter()
            .map(|site| {
                let mut out: Vec<Rc<S>> = Vec::with_capacity((1 << site.funcs.len()) - 1);
                // Enumerate non-empty subsets; reuse smaller subsets'
                // results: subset m = (m without lowest bit) ⊛ base(lowest).
                for m in 1usize..1 << site.funcs.len() {
                    let low = m.trailing_zeros() as usize;
                    let rest = m & (m - 1);
                    let base = S::base(self, bdds, site.funcs[low], stats);
                    let spec = if rest == 0 {
                        base
                    } else {
                        let prev = Rc::clone(&out[rest - 1]);
                        let t = Instant::now();
                        let conv = prev.convolve(&base);
                        stats.convolution_time += t.elapsed();
                        stats.convolutions += 1;
                        Rc::new(conv)
                    };
                    out.push(spec);
                }
                out
            })
            .collect()
    }

    // ---- MAPI: map convolution, ADD verification ----

    fn mapi_rowwise(
        &mut self,
        bdds: &BddManager,
        vm: &VarMap,
        combo: &[&Site],
        region: &Region,
        stats: &mut CheckStats,
    ) -> Option<(Mask, String, Option<Dyadic>)> {
        let groups = self.subset_spectra::<MapSpectrum>(bdds, combo, CheckMode::RowWise, stats);
        let t_matrix = self.t_matrix(region, vm);
        let mut hit = None;
        let adds = &mut self.adds;
        let t_bdds = &mut self.t_bdds;
        let _ = product_rows(&groups, false, stats, &mut |spec, stats| {
            stats.rows_checked += 1;
            let t = Instant::now();
            // Convert the convolution into an ADD and resolve the
            // existential query ∃α. T(α,ρ) ∧ W(α,ρ) with diagram machinery.
            let w_add = map_to_add(adds, spec);
            let nonzero = adds.nonzero_bdd(t_bdds, w_add);
            let product = t_bdds.and(nonzero, t_matrix);
            stats.verification_time += t.elapsed();
            if product != Bdd::FALSE {
                let alpha = t_bdds.one_sat(product).expect("satisfiable product");
                hit = Some((Mask(alpha), *adds.eval(w_add, alpha)));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        hit.map(|(m, c)| (m, rowwise_reason(region, vm, m), Some(c)))
    }

    // ---- FUJITA: full ADD pipeline ----

    fn fujita_check(
        &mut self,
        bdds: &BddManager,
        vm: &VarMap,
        combo: &[&Site],
        region: &Region,
        mode: CheckMode,
        stats: &mut CheckStats,
    ) -> Option<(Mask, String, Option<Dyadic>)> {
        // Per-site sign-ADD products of every non-empty subset.
        let groups: Vec<Vec<Add>> = combo
            .iter()
            .map(|site| {
                let mut out: Vec<Add> = Vec::with_capacity((1 << site.funcs.len()) - 1);
                for m in 1usize..1 << site.funcs.len() {
                    let low = m.trailing_zeros() as usize;
                    let rest = m & (m - 1);
                    let base = self.sign(bdds, site.funcs[low], stats);
                    let prod = if rest == 0 {
                        base
                    } else {
                        let prev = out[rest - 1];
                        let t = Instant::now();
                        let p = self.adds.mul_op(prev, base);
                        stats.convolution_time += t.elapsed();
                        p
                    };
                    out.push(prod);
                }
                out
            })
            .collect();

        let t_matrix = self.t_matrix(region, vm);
        let adds = &mut self.adds;
        let t_bdds = &mut self.t_bdds;
        let unit = adds.constant(Dyadic::ONE);

        match mode {
            CheckMode::RowWise => {
                let mut hit = None;
                let _ = product_signs(
                    adds,
                    &groups,
                    false,
                    unit,
                    stats,
                    &mut |adds, sign, stats| {
                        stats.rows_checked += 1;
                        let t = Instant::now();
                        let spec = wht(adds, sign);
                        stats.convolution_time += t.elapsed();
                        stats.convolutions += 1;
                        let t = Instant::now();
                        let nonzero = adds.nonzero_bdd(t_bdds, spec);
                        let product = t_bdds.and(nonzero, t_matrix);
                        stats.verification_time += t.elapsed();
                        if product != Bdd::FALSE {
                            let alpha = t_bdds.one_sat(product).expect("satisfiable product");
                            hit = Some((Mask(alpha), *adds.eval(spec, alpha)));
                            return ControlFlow::Break(());
                        }
                        ControlFlow::Continue(())
                    },
                );
                hit.map(|(m, c)| (m, rowwise_reason(region, vm, m), Some(c)))
            }
            CheckMode::Joint => {
                let mut union = Mask::ZERO;
                let randoms = vm.random_vars();
                let _ = product_signs(
                    adds,
                    &groups,
                    true,
                    unit,
                    stats,
                    &mut |adds, sign, stats| {
                        stats.rows_checked += 1;
                        let t = Instant::now();
                        let spec = wht(adds, sign);
                        stats.convolution_time += t.elapsed();
                        stats.convolutions += 1;
                        let t = Instant::now();
                        let nonzero = adds.nonzero_bdd(t_bdds, spec);
                        union = union | add_support_union(t_bdds, nonzero, &randoms);
                        stats.verification_time += t.elapsed();
                        ControlFlow::Continue(())
                    },
                );
                joint_verdict(region, vm, union).map(|(m, r)| (m, r, None))
            }
        }
    }

    fn sign(&mut self, bdds: &BddManager, f: Bdd, stats: &mut CheckStats) -> Add {
        if let Some(&s) = self.sign_base.get(&f) {
            return s;
        }
        let t = Instant::now();
        let s = sign_add(bdds, &mut self.adds, f);
        stats.convolution_time += t.elapsed();
        self.sign_base.insert(f, s);
        s
    }
}

/// Hook giving the generic scan path access to the right base-spectrum
/// cache of the context.
trait SpectrumBase: Sized {
    fn base(ctx: &mut EngineCtx, bdds: &BddManager, f: Bdd, stats: &mut CheckStats) -> Rc<Self>;
}

impl SpectrumBase for MapSpectrum {
    fn base(ctx: &mut EngineCtx, bdds: &BddManager, f: Bdd, stats: &mut CheckStats) -> Rc<Self> {
        if let Some(s) = ctx.map_base.get(&f) {
            return Rc::clone(s);
        }
        let t = Instant::now();
        let sparse = walsh_sparse(bdds, f, &mut ctx.walsh);
        let s = Rc::new(MapSpectrum::from_map(&sparse));
        stats.convolution_time += t.elapsed();
        ctx.map_base.insert(f, Rc::clone(&s));
        s
    }
}

impl SpectrumBase for LilSpectrum {
    fn base(ctx: &mut EngineCtx, bdds: &BddManager, f: Bdd, stats: &mut CheckStats) -> Rc<Self> {
        if let Some(s) = ctx.lil_base.get(&f) {
            return Rc::clone(s);
        }
        let t = Instant::now();
        let sparse = walsh_sparse(bdds, f, &mut ctx.walsh);
        let s = Rc::new(LilSpectrum::from_map(&sparse));
        stats.convolution_time += t.elapsed();
        ctx.lil_base.insert(f, Rc::clone(&s));
        s
    }
}

/// Walks the cartesian product of per-site row choices, convolving along the
/// path. With `include_empty`, each site may also contribute nothing (used
/// by joint mode to reach every ω), except the all-empty row.
fn product_rows<S: Spectrum>(
    groups: &[Vec<Rc<S>>],
    include_empty: bool,
    stats: &mut CheckStats,
    leaf: &mut dyn FnMut(&S, &mut CheckStats) -> ControlFlow<()>,
) -> ControlFlow<()> {
    fn rec<S: Spectrum>(
        groups: &[Vec<Rc<S>>],
        idx: usize,
        acc: Option<&S>,
        include_empty: bool,
        stats: &mut CheckStats,
        leaf: &mut dyn FnMut(&S, &mut CheckStats) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if idx == groups.len() {
            return match acc {
                Some(spec) => leaf(spec, stats),
                None => ControlFlow::Continue(()),
            };
        }
        if include_empty {
            rec(groups, idx + 1, acc, include_empty, stats, leaf)?;
        }
        for choice in &groups[idx] {
            match acc {
                None => rec(groups, idx + 1, Some(choice), include_empty, stats, leaf)?,
                Some(prev) => {
                    let t = Instant::now();
                    let conv = prev.convolve(choice);
                    stats.convolution_time += t.elapsed();
                    stats.convolutions += 1;
                    rec(groups, idx + 1, Some(&conv), include_empty, stats, leaf)?;
                }
            }
        }
        ControlFlow::Continue(())
    }
    rec(groups, 0, None, include_empty, stats, leaf)
}

/// Leaf callback of [`product_signs`]: receives the manager, the
/// accumulated sign-ADD product, and the stats counters.
type SignLeaf<'a> =
    dyn FnMut(&mut AddManager<Dyadic>, Add, &mut CheckStats) -> ControlFlow<()> + 'a;

/// ADD analogue of [`product_rows`] for the FUJITA engine: multiplies sign
/// ADDs along the product walk.
fn product_signs(
    adds: &mut AddManager<Dyadic>,
    groups: &[Vec<Add>],
    include_empty: bool,
    unit: Add,
    stats: &mut CheckStats,
    leaf: &mut SignLeaf<'_>,
) -> ControlFlow<()> {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        adds: &mut AddManager<Dyadic>,
        groups: &[Vec<Add>],
        idx: usize,
        acc: Add,
        any: bool,
        include_empty: bool,
        stats: &mut CheckStats,
        leaf: &mut SignLeaf<'_>,
    ) -> ControlFlow<()> {
        if idx == groups.len() {
            if any {
                return leaf(adds, acc, stats);
            }
            return ControlFlow::Continue(());
        }
        if include_empty {
            rec(adds, groups, idx + 1, acc, any, include_empty, stats, leaf)?;
        }
        for i in 0..groups[idx].len() {
            let choice = groups[idx][i];
            let t = Instant::now();
            let prod = adds.mul_op(acc, choice);
            stats.convolution_time += t.elapsed();
            rec(
                adds,
                groups,
                idx + 1,
                prod,
                true,
                include_empty,
                stats,
                leaf,
            )?;
        }
        ControlFlow::Continue(())
    }
    rec(adds, groups, 0, unit, false, include_empty, stats, leaf)
}

/// Builds the ADD of a sparse spectrum: one path per non-zero coefficient.
fn map_to_add(adds: &mut AddManager<Dyadic>, spec: &MapSpectrum) -> Add {
    let entries: Vec<(u128, Dyadic)> = spec.entries().iter().map(|(&k, &c)| (k, c)).collect();
    adds.from_sparse(entries, Dyadic::ZERO)
}

/// Union of coordinates of a non-zero-support BDD after forcing `ρ = 0`:
/// variable `v` is in the union iff some surviving coordinate selects it.
fn add_support_union(bdds: &mut BddManager, nonzero: Bdd, randoms: &VarSet) -> Mask {
    let mut s0 = nonzero;
    for v in randoms.iter() {
        s0 = bdds.restrict(s0, v, false);
    }
    if s0 == Bdd::FALSE {
        return Mask::ZERO;
    }
    let mut acc = Mask::ZERO;
    let num_vars = bdds.num_vars();
    let support = bdds.support(s0);
    for v in 0..num_vars {
        let var = VarId(v);
        if randoms.contains(var) {
            continue;
        }
        if !support.contains(var) {
            // s0 is independent of v and non-empty: entries with v = 1 exist.
            acc.0 |= 1 << v;
            continue;
        }
        let lit = bdds.var(var);
        if bdds.and(s0, lit) != Bdd::FALSE {
            acc.0 |= 1 << v;
        }
    }
    acc
}

fn rowwise_reason(region: &Region, vm: &VarMap, mask: Mask) -> String {
    match *region {
        Region::Probing => {
            format!("non-zero correlation with raw secret(s) at α={mask} (full share groups, ρ=0)")
        }
        Region::ShareBudget { budget } => {
            let worst = vm
                .share_groups
                .iter()
                .map(|&g| mask.weight_in(g))
                .max()
                .unwrap_or(0);
            format!(
                "coefficient at α={mask} selects {worst} shares of one secret (budget {budget})"
            )
        }
        Region::PiniBudget {
            allowed_indices,
            extra,
        } => {
            let outside = (vm.share_indices(mask) & !allowed_indices).count_ones();
            format!(
                "coefficient at α={mask} uses {outside} non-output share indices (budget {extra})"
            )
        }
    }
}

fn joint_verdict(region: &Region, vm: &VarMap, union: Mask) -> Option<(Mask, String)> {
    match *region {
        Region::ShareBudget { budget } => {
            for (i, &g) in vm.share_groups.iter().enumerate() {
                let w = union.weight_in(g);
                if w > budget {
                    return Some((
                        union,
                        format!("simulation set needs {w} shares of secret #{i} (budget {budget})"),
                    ));
                }
            }
            None
        }
        Region::PiniBudget {
            allowed_indices,
            extra,
        } => {
            let outside = (vm.share_indices(union) & !allowed_indices).count_ones();
            (outside > extra).then(|| {
                (
                    union,
                    format!(
                        "simulation set needs {outside} non-output share indices (budget {extra})"
                    ),
                )
            })
        }
        Region::Probing => unreachable!("probing is checked row-wise"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_enumeration_is_exhaustive() {
        let mut seen = Vec::new();
        let _ = for_each_combination(5, 3, &mut |c| {
            seen.push(c.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[9], vec![2, 3, 4]);
        // Early break stops enumeration.
        let mut count = 0;
        let flow = for_each_combination(5, 2, &mut |_| {
            count += 1;
            if count == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(count, 3);
    }

    #[test]
    fn degenerate_combinations() {
        let mut n = 0;
        let _ = for_each_combination(3, 0, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 0);
        let _ = for_each_combination(2, 5, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 0);
        let _ = for_each_combination(3, 3, &mut |c| {
            assert_eq!(c, [0, 1, 2]);
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn engine_kind_display() {
        assert_eq!(EngineKind::Lil.to_string(), "LIL");
        assert_eq!(EngineKind::Mapi.to_string(), "MAPI");
        assert_eq!(EngineKind::default(), EngineKind::Mapi);
    }
}
