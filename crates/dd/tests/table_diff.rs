//! Differential tests pinning the CUDD-style kernel structures — the
//! open-addressed unique subtables and the direct-mapped lossy apply caches —
//! against straightforward reference models.
//!
//! The contract under test (DESIGN.md §12): because every node is
//! hash-consed, a lossy apply cache can only cause *recomputation*, never a
//! different answer, so the handles a manager returns must not depend on the
//! cache size; and a `CapacityExceeded` unwind mid-operation must leave the
//! arena usable with all previously returned handles intact.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use walshcheck_dd::add::{Add, AddManager};
use walshcheck_dd::bdd::{Bdd, BddManager};
use walshcheck_dd::dyadic::Dyadic;
use walshcheck_dd::var::VarId;
use walshcheck_dd::CapacityExceeded;

// ---------- random op programs ----------

/// One step of a straight-line ADD program. Operand indices refer to earlier
/// results (mod the current length), so every program is valid.
#[derive(Debug, Clone, Copy)]
enum AddStep {
    Const(i8),
    Indicator(u8),
    Add(u8, u8),
    Sub(u8, u8),
    Mul(u8, u8),
    Neg(u8),
    Half(u8),
}

fn add_step_strategy() -> impl Strategy<Value = AddStep> {
    prop_oneof![
        (-4i8..5).prop_map(AddStep::Const),
        (0u8..5).prop_map(AddStep::Indicator),
        (0u8..64, 0u8..64).prop_map(|(a, b)| AddStep::Add(a, b)),
        (0u8..64, 0u8..64).prop_map(|(a, b)| AddStep::Sub(a, b)),
        (0u8..64, 0u8..64).prop_map(|(a, b)| AddStep::Mul(a, b)),
        (0u8..64).prop_map(AddStep::Neg),
        (0u8..64).prop_map(AddStep::Half),
    ]
}

/// Runs `steps` in `m`, returning every intermediate handle.
fn run_add_program(m: &mut AddManager<Dyadic>, steps: &[AddStep]) -> Vec<Add> {
    let mut regs: Vec<Add> = vec![m.zero()];
    for &step in steps {
        let pick = |i: u8, regs: &[Add]| regs[i as usize % regs.len()];
        let r = match step {
            AddStep::Const(c) => m.constant(Dyadic::from_int(c as i64)),
            AddStep::Indicator(v) => m.indicator(VarId(v as u32 % 5), Dyadic::ONE, Dyadic::ZERO),
            AddStep::Add(a, b) => {
                let (fa, fb) = (pick(a, &regs), pick(b, &regs));
                m.add_op(fa, fb)
            }
            AddStep::Sub(a, b) => {
                let (fa, fb) = (pick(a, &regs), pick(b, &regs));
                m.sub_op(fa, fb)
            }
            AddStep::Mul(a, b) => {
                let (fa, fb) = (pick(a, &regs), pick(b, &regs));
                m.mul_op(fa, fb)
            }
            AddStep::Neg(a) => {
                let fa = pick(a, &regs);
                m.neg_op(fa)
            }
            AddStep::Half(a) => {
                let fa = pick(a, &regs);
                m.half_op(fa)
            }
        };
        regs.push(r);
    }
    regs
}

/// One step of a straight-line BDD program over 6 variables.
#[derive(Debug, Clone, Copy)]
enum BddStep {
    Var(u8),
    Not(u8),
    And(u8, u8),
    Or(u8, u8),
    Xor(u8, u8),
    Ite(u8, u8, u8),
}

fn bdd_step_strategy() -> impl Strategy<Value = BddStep> {
    prop_oneof![
        (0u8..6).prop_map(BddStep::Var),
        (0u8..64).prop_map(BddStep::Not),
        (0u8..64, 0u8..64).prop_map(|(a, b)| BddStep::And(a, b)),
        (0u8..64, 0u8..64).prop_map(|(a, b)| BddStep::Or(a, b)),
        (0u8..64, 0u8..64).prop_map(|(a, b)| BddStep::Xor(a, b)),
        (0u8..64, 0u8..64, 0u8..64).prop_map(|(a, b, c)| BddStep::Ite(a, b, c)),
    ]
}

/// Runs `steps` in `m` alongside a 64-bit truth-table model (one bit per
/// assignment of the 6 variables), returning `(handle, table)` pairs.
fn run_bdd_program(m: &mut BddManager, steps: &[BddStep]) -> Vec<(Bdd, u64)> {
    // Truth table of variable v: bit `a` is set iff assignment `a` sets v.
    let var_tt = |v: u8| -> u64 {
        let mut tt = 0u64;
        for a in 0..64u64 {
            if a >> v & 1 == 1 {
                tt |= 1 << a;
            }
        }
        tt
    };
    let mut regs: Vec<(Bdd, u64)> = vec![(m.constant(false), 0)];
    for &step in steps {
        let pick = |i: u8, regs: &[(Bdd, u64)]| regs[i as usize % regs.len()];
        let r = match step {
            BddStep::Var(v) => (m.var(VarId(v as u32)), var_tt(v)),
            BddStep::Not(a) => {
                let (fa, ta) = pick(a, &regs);
                (m.not(fa), !ta)
            }
            BddStep::And(a, b) => {
                let ((fa, ta), (fb, tb)) = (pick(a, &regs), pick(b, &regs));
                (m.and(fa, fb), ta & tb)
            }
            BddStep::Or(a, b) => {
                let ((fa, ta), (fb, tb)) = (pick(a, &regs), pick(b, &regs));
                (m.or(fa, fb), ta | tb)
            }
            BddStep::Xor(a, b) => {
                let ((fa, ta), (fb, tb)) = (pick(a, &regs), pick(b, &regs));
                (m.xor(fa, fb), ta ^ tb)
            }
            BddStep::Ite(a, b, c) => {
                let ((fa, ta), (fb, tb), (fc, tc)) =
                    (pick(a, &regs), pick(b, &regs), pick(c, &regs));
                (m.ite(fa, fb, fc), (ta & tb) | (!ta & tc))
            }
        };
        regs.push(r);
    }
    regs
}

// ---------- cache-size independence ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same ADD program run with a minimal (16-slot, collision-heavy)
    /// apply cache and with the default cache returns bit-identical handle
    /// sequences, and every handle evaluates to the value the reference
    /// interpreter predicts.
    #[test]
    fn add_handles_do_not_depend_on_cache_size(
        steps in proptest::collection::vec(add_step_strategy(), 1..80)
    ) {
        let mut tiny = AddManager::new(5);
        tiny.set_apply_cache_limit(16);
        let mut roomy = AddManager::new(5);
        let ht = run_add_program(&mut tiny, &steps);
        let hr = run_add_program(&mut roomy, &steps);
        prop_assert_eq!(&ht, &hr, "handle sequences diverged");
        prop_assert_eq!(tiny.arena_size(), roomy.arena_size());
        for (&a, &b) in ht.iter().zip(hr.iter()) {
            for assignment in 0..32u128 {
                prop_assert_eq!(
                    tiny.eval(a, assignment),
                    roomy.eval(b, assignment),
                    "eval diverged at {}", assignment
                );
            }
        }
    }

    /// The same BDD program with minimal caches matches a 64-bit truth-table
    /// model and the default-cache manager node for node. Programs long
    /// enough to intern hundreds of nodes force unique-subtable growth.
    #[test]
    fn bdd_handles_match_truth_tables_at_any_cache_size(
        steps in proptest::collection::vec(bdd_step_strategy(), 1..120)
    ) {
        let mut tiny = BddManager::new(6);
        tiny.set_apply_cache_limit(16);
        let mut roomy = BddManager::new(6);
        let rt = run_bdd_program(&mut tiny, &steps);
        let rr = run_bdd_program(&mut roomy, &steps);
        prop_assert_eq!(tiny.arena_size(), roomy.arena_size());
        for (&(f_tiny, tt), &(f_roomy, _)) in rt.iter().zip(rr.iter()) {
            prop_assert_eq!(f_tiny, f_roomy, "handle sequences diverged");
            for a in 0..64u128 {
                prop_assert_eq!(
                    tiny.eval(f_tiny, a),
                    tt >> a & 1 == 1,
                    "truth table mismatch at {}", a
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `BddManager::from_keys` is exactly the non-zero support of the ADD
    /// interned from the same keys — the identity the MAPI engine's row-wise
    /// verification relies on to skip the intermediate ADD. Handles are
    /// compared in one manager, so canonicity makes equality structural.
    #[test]
    fn from_keys_equals_sparse_add_support(
        keys in proptest::collection::vec(0u128..64, 0..48)
    ) {
        let mut bdds = BddManager::new(6);
        let mut adds: AddManager<Dyadic> = AddManager::new(6);
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let entries: Vec<(u128, Dyadic)> =
            uniq.iter().map(|&k| (k, Dyadic::ONE)).collect();
        let w_add = adds.from_sparse(entries, Dyadic::ZERO);
        let via_add = adds.nonzero_bdd(&mut bdds, w_add);
        // from_keys tolerates duplicates and any order.
        let mut raw = keys.clone();
        let direct = bdds.from_keys(&mut raw);
        prop_assert_eq!(direct, via_add);
        for a in 0..64u128 {
            prop_assert_eq!(bdds.eval(direct, a), uniq.contains(&a));
        }
    }
}

// ---------- forced growth ----------

/// Interning far more nodes than the initial subtable slots (16 per
/// variable) forces several rounds of incremental growth; every handle must
/// stay retrievable and distinct afterwards.
#[test]
fn unique_subtable_growth_preserves_hash_consing() {
    let mut m = AddManager::new(1);
    let mut handles = Vec::new();
    for i in 0..2000i64 {
        let lo = m.constant(Dyadic::from_int(i));
        let hi = m.constant(Dyadic::from_int(-i - 1));
        handles.push(m.mk(VarId(0), lo, hi));
    }
    // Re-interning after growth must return the same handles, not copies.
    for (i, &h) in handles.iter().enumerate().take(2000) {
        let i = i as i64;
        let lo = m.constant(Dyadic::from_int(i));
        let hi = m.constant(Dyadic::from_int(-i - 1));
        assert_eq!(m.mk(VarId(0), lo, hi), h);
        assert_eq!(*m.eval(h, 0), Dyadic::from_int(i));
        assert_eq!(*m.eval(h, 1), Dyadic::from_int(-i - 1));
    }
}

// ---------- budget panics mid-operation ----------

/// A `CapacityExceeded` unwind in the middle of an apply leaves the manager
/// usable: old handles still evaluate correctly, and retrying after lifting
/// the budget produces the same diagram a fresh manager builds.
#[test]
fn budget_panic_mid_insert_leaves_arena_consistent() {
    let mut m = AddManager::new(8);
    // Pre-build a product of indicators, then budget-starve a bigger one.
    let mut partial = m.constant(Dyadic::ONE);
    for v in 0..4 {
        let ind = m.indicator(VarId(v), Dyadic::ONE, Dyadic::ZERO);
        partial = m.mul_op(partial, ind);
    }
    let before = m.arena_size();
    m.set_node_budget(Some(2));
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut f = partial;
        for v in 4..8 {
            let ind = m.indicator(VarId(v), Dyadic::ONE, Dyadic::ZERO);
            f = m.add_op(f, ind);
        }
        f
    }))
    .expect_err("budget of 2 nodes cannot fit the sum of indicators");
    let payload = err
        .downcast_ref::<CapacityExceeded>()
        .expect("payload must be CapacityExceeded");
    assert_eq!(payload.arena, "add-arena");
    assert_eq!(payload.limit, 2);

    // Old handles survived the unwind.
    assert_eq!(*m.eval(partial, 0b1111), Dyadic::ONE);
    assert_eq!(*m.eval(partial, 0b0111), Dyadic::ZERO);

    // Lifting the budget and retrying matches a fresh manager exactly.
    m.set_node_budget(None);
    let build = |m: &mut AddManager<Dyadic>, base: Add| {
        let mut f = base;
        for v in 4..8 {
            let ind = m.indicator(VarId(v), Dyadic::ONE, Dyadic::ZERO);
            f = m.add_op(f, ind);
        }
        f
    };
    let retried = build(&mut m, partial);
    let mut fresh = AddManager::new(8);
    let mut fresh_partial = fresh.constant(Dyadic::ONE);
    for v in 0..4 {
        let ind = fresh.indicator(VarId(v), Dyadic::ONE, Dyadic::ZERO);
        fresh_partial = fresh.mul_op(fresh_partial, ind);
    }
    let fresh_full = build(&mut fresh, fresh_partial);
    for a in 0..256u128 {
        assert_eq!(m.eval(retried, a), fresh.eval(fresh_full, a));
    }
    assert!(m.arena_size() > before);
}

/// Same contract for the BDD arena: the payload names "bdd-arena" and the
/// manager keeps working after the quarantined operation is abandoned.
#[test]
fn bdd_budget_panic_is_typed_and_recoverable() {
    let mut m = BddManager::new(10);
    let a = m.var(VarId(0));
    let b = m.var(VarId(1));
    let ab = m.and(a, b);
    m.set_node_budget(Some(1));
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut f = ab;
        for v in 2..10 {
            let x = m.var(VarId(v));
            f = m.xor(f, x);
        }
        f
    }))
    .expect_err("budget of 1 node cannot fit the xor chain");
    let payload = err
        .downcast_ref::<CapacityExceeded>()
        .expect("payload must be CapacityExceeded");
    assert_eq!(payload.arena, "bdd-arena");

    m.set_node_budget(None);
    assert!(m.eval(ab, 0b11));
    assert!(!m.eval(ab, 0b01));
    let c = m.var(VarId(2));
    let abc = m.and(ab, c);
    assert!(m.eval(abc, 0b111));
    assert!(!m.eval(abc, 0b011));
}
