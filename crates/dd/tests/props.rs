//! Property-based tests for the decision-diagram package: dyadic rational
//! arithmetic, BDD operations against a truth-table model, and the spectral
//! transform invariants (Parseval, involution, convolution theorem).

use proptest::prelude::*;

use walshcheck_dd::add::AddManager;
use walshcheck_dd::bdd::{Bdd, BddManager};
use walshcheck_dd::dyadic::Dyadic;
use walshcheck_dd::spectral::{
    dense_walsh, inverse_wht, sign_add, walsh_sparse, wht, wht_with, SparseWalshCache, WhtMemo,
};
use walshcheck_dd::threshold::{at_least, at_most, exactly};
use walshcheck_dd::var::{VarId, VarSet};

// ---------- dyadic rationals ----------

/// Model: exact fraction num / 2^denpow with i128 arithmetic.
#[derive(Debug, Clone, Copy)]
struct Frac {
    num: i128,
    denpow: u32,
}

impl Frac {
    fn of(d: Dyadic) -> Frac {
        if d.exponent() >= 0 {
            Frac {
                num: d.mantissa() << d.exponent(),
                denpow: 0,
            }
        } else {
            Frac {
                num: d.mantissa(),
                denpow: (-d.exponent()) as u32,
            }
        }
    }

    fn eq_value(a: Frac, b: Frac) -> bool {
        // a.num / 2^a.denpow == b.num / 2^b.denpow
        let shift = a.denpow.max(b.denpow);
        (a.num << (shift - a.denpow)) == (b.num << (shift - b.denpow))
    }
}

fn dyadic_strategy() -> impl Strategy<Value = Dyadic> {
    (-1000i128..1000, -20i32..20).prop_map(|(m, e)| Dyadic::new(m, e))
}

proptest! {
    #[test]
    fn dyadic_add_matches_fractions(a in dyadic_strategy(), b in dyadic_strategy()) {
        let sum = a + b;
        let fa = Frac::of(a);
        let fb = Frac::of(b);
        let shift = fa.denpow.max(fb.denpow);
        let model = Frac {
            num: (fa.num << (shift - fa.denpow)) + (fb.num << (shift - fb.denpow)),
            denpow: shift,
        };
        prop_assert!(Frac::eq_value(Frac::of(sum), model));
    }

    #[test]
    fn dyadic_mul_matches_fractions(a in dyadic_strategy(), b in dyadic_strategy()) {
        let prod = a * b;
        let fa = Frac::of(a);
        let fb = Frac::of(b);
        let model = Frac { num: fa.num * fb.num, denpow: fa.denpow + fb.denpow };
        prop_assert!(Frac::eq_value(Frac::of(prod), model));
    }

    #[test]
    fn dyadic_ring_laws(a in dyadic_strategy(), b in dyadic_strategy(), c in dyadic_strategy()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Dyadic::ZERO);
        prop_assert_eq!(a + Dyadic::ZERO, a);
        prop_assert_eq!(a * Dyadic::ONE, a);
        prop_assert_eq!(a.half().double(), a);
    }

    #[test]
    fn dyadic_ordering_is_total(a in dyadic_strategy(), b in dyadic_strategy()) {
        let byf = a.to_f64().partial_cmp(&b.to_f64()).expect("finite");
        // f64 is exact for these small mantissas/exponents.
        prop_assert_eq!(a.cmp(&b), byf);
    }
}

// ---------- random Boolean expressions ----------

const NVARS: u32 = 5;

#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn build(m: &mut BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => m.var(VarId(*v)),
        Expr::Const(b) => m.constant(*b),
        Expr::Not(a) => {
            let x = build(m, a);
            m.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.xor(x, y)
        }
        Expr::Ite(a, b, c) => {
            let (x, y, z) = (build(m, a), build(m, b), build(m, c));
            m.ite(x, y, z)
        }
    }
}

fn eval_expr(e: &Expr, a: u128) -> bool {
    match e {
        Expr::Var(v) => a >> v & 1 == 1,
        Expr::Const(b) => *b,
        Expr::Not(x) => !eval_expr(x, a),
        Expr::And(x, y) => eval_expr(x, a) && eval_expr(y, a),
        Expr::Or(x, y) => eval_expr(x, a) || eval_expr(y, a),
        Expr::Xor(x, y) => eval_expr(x, a) ^ eval_expr(y, a),
        Expr::Ite(x, y, z) => {
            if eval_expr(x, a) {
                eval_expr(y, a)
            } else {
                eval_expr(z, a)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bdd_matches_expression_semantics(e in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        for a in 0..1u128 << NVARS {
            prop_assert_eq!(m.eval(f, a), eval_expr(&e, a));
        }
    }

    #[test]
    fn bdd_sat_count_matches_truth_table(e in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let expected = (0..1u128 << NVARS).filter(|&a| eval_expr(&e, a)).count() as u128;
        prop_assert_eq!(m.sat_count(f), expected);
        // one_sat returns a model iff satisfiable.
        match m.one_sat(f) {
            Some(a) => prop_assert!(m.eval(f, a)),
            None => prop_assert_eq!(expected, 0),
        }
    }

    #[test]
    fn bdd_de_morgan_and_double_negation(e1 in expr_strategy(), e2 in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e1);
        let g = build(&mut m, &e2);
        let fg = m.and(f, g);
        let n_fg = m.not(fg);
        let nf = m.not(f);
        let ng = m.not(g);
        let de_morgan = m.or(nf, ng);
        prop_assert_eq!(n_fg, de_morgan);
        let nn = m.not(nf);
        prop_assert_eq!(nn, f);
    }

    #[test]
    fn bdd_quantifier_semantics(e in expr_strategy(), v in 0..NVARS) {
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let lo = m.restrict(f, VarId(v), false);
        let hi = m.restrict(f, VarId(v), true);
        let ex = m.exists(f, VarSet::singleton(VarId(v)));
        let all = m.forall(f, VarSet::singleton(VarId(v)));
        let or = m.or(lo, hi);
        let and = m.and(lo, hi);
        prop_assert_eq!(ex, or);
        prop_assert_eq!(all, and);
    }

    #[test]
    fn sparse_walsh_matches_dense(e in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let table: Vec<bool> = (0..1u128 << NVARS).map(|a| eval_expr(&e, a)).collect();
        let dense = dense_walsh(&table);
        let mut cache = SparseWalshCache::new();
        let sparse = walsh_sparse(&m, f, &mut cache);
        for (alpha, want) in dense.iter().enumerate() {
            let got = sparse.get(&(alpha as u128)).copied().unwrap_or(Dyadic::ZERO);
            prop_assert_eq!(got, *want, "α={}", alpha);
        }
    }

    #[test]
    fn parseval_holds(e in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let mut cache = SparseWalshCache::new();
        let sparse = walsh_sparse(&m, f, &mut cache);
        let energy: Dyadic = sparse.values().map(|c| *c * *c).sum();
        prop_assert_eq!(energy, Dyadic::ONE);
    }

    #[test]
    fn wht_involution(e in expr_strategy()) {
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let mut adds = AddManager::new(NVARS);
        let sign = sign_add(&m, &mut adds, f);
        let spec = wht(&mut adds, sign);
        let back = inverse_wht(&mut adds, spec);
        prop_assert_eq!(back, sign);
    }

    #[test]
    fn convolution_theorem(e1 in expr_strategy(), e2 in expr_strategy()) {
        // WHT(sign(f)·sign(g)) = spectrum of f ⊕ g (pointwise product of
        // sign functions is the sign of the XOR).
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e1);
        let g = build(&mut m, &e2);
        let fg = m.xor(f, g);
        let mut adds = AddManager::new(NVARS);
        let sf = sign_add(&m, &mut adds, f);
        let sg = sign_add(&m, &mut adds, g);
        let prod = adds.mul_op(sf, sg);
        let via_product = wht(&mut adds, prod);
        let sfg = sign_add(&m, &mut adds, fg);
        let direct = wht(&mut adds, sfg);
        prop_assert_eq!(via_product, direct);
    }

    #[test]
    fn threshold_functions_count_bits(k in 0usize..7) {
        let mut m = BddManager::new(NVARS);
        let vars: VarSet = (0..NVARS).map(VarId).collect();
        let ge = at_least(&mut m, &vars, k);
        let le = at_most(&mut m, &vars, k);
        let eq = exactly(&mut m, &vars, k);
        for a in 0..1u128 << NVARS {
            let ones = a.count_ones() as usize;
            prop_assert_eq!(m.eval(ge, a), ones >= k);
            prop_assert_eq!(m.eval(le, a), ones <= k);
            prop_assert_eq!(m.eval(eq, a), ones == k);
        }
    }

    #[test]
    fn add_from_sparse_round_trips(entries in proptest::collection::btree_map(0u128..32, -50i64..50, 0..10)) {
        let mut adds: AddManager<Dyadic> = AddManager::new(NVARS);
        let list: Vec<(u128, Dyadic)> = entries
            .iter()
            .filter(|&(_, &v)| v != 0)
            .map(|(&k, &v)| (k, Dyadic::from_int(v)))
            .collect();
        let f = adds.from_sparse(list.clone(), Dyadic::ZERO);
        for a in 0..1u128 << NVARS {
            let want = list
                .iter()
                .find(|&&(k, _)| k == a)
                .map(|&(_, v)| v)
                .unwrap_or(Dyadic::ZERO);
            prop_assert_eq!(*adds.eval(f, a), want);
        }
        // And back out through the sparse walk.
        let mut seen = Vec::new();
        adds.for_each_nonzero(f, &Dyadic::ZERO, &mut |a, v| seen.push((a, *v)));
        seen.sort();
        let mut want = list.clone();
        want.sort();
        prop_assert_eq!(seen, want);
    }
}

// ---------- dense-kernel equivalence up to 12 variables ----------

/// Wider variable space for exercising the dense spectral fallback: the
/// default `dense_cut` is 12, so functions drawn here cross the cut from
/// both sides (small supports take the flat butterfly, full-support ones
/// stay on the node-wise recursion).
const NVARS_WIDE: u32 = 12;

fn wide_expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS_WIDE).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(6, 96, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `wht` (dense kernel on and off), `walsh_sparse` (dense kernel on
    /// and off) and the literal `dense_walsh` truth-table transform agree
    /// on random functions of up to 12 variables — and on their
    /// complements, so the top-level complement edge crosses every kernel.
    #[test]
    fn spectral_kernels_agree_up_to_12_vars(e in wide_expr_strategy()) {
        let mut m = BddManager::new(NVARS_WIDE);
        let f = build(&mut m, &e);
        let nf = m.not(f);
        for (g, negated) in [(f, false), (nf, true)] {
            let table: Vec<bool> = (0..1u128 << NVARS_WIDE)
                .map(|a| eval_expr(&e, a) ^ negated)
                .collect();
            let dense = dense_walsh(&table);

            // walsh_sparse, dense kernel off (new()) and on (cut 12).
            let mut off = SparseWalshCache::new();
            let mut on = SparseWalshCache::with_config(0, NVARS_WIDE);
            let s_off = walsh_sparse(&m, g, &mut off);
            let s_on = walsh_sparse(&m, g, &mut on);
            for (alpha, want) in dense.iter().enumerate() {
                let a = alpha as u128;
                let got_off = s_off.get(&a).copied().unwrap_or(Dyadic::ZERO);
                let got_on = s_on.get(&a).copied().unwrap_or(Dyadic::ZERO);
                prop_assert_eq!(got_off, *want, "sparse/off α={}", alpha);
                prop_assert_eq!(got_on, *want, "sparse/on α={}", alpha);
            }

            // ADD-side WHT, dense kernel off and on: canonical hash
            // consing means both paths must return the same handle.
            let mut adds = AddManager::new(NVARS_WIDE);
            let sign = sign_add(&m, &mut adds, g);
            let mut memo_off = WhtMemo::new();
            let mut memo_on = WhtMemo::with_config(0, NVARS_WIDE);
            let w_off = wht_with(&mut adds, sign, &mut memo_off);
            let w_on = wht_with(&mut adds, sign, &mut memo_on);
            prop_assert_eq!(w_off, w_on);
            for (alpha, want) in dense.iter().enumerate() {
                prop_assert_eq!(*adds.eval(w_off, alpha as u128), *want, "wht α={}", alpha);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Order transfer preserves semantics for arbitrary expressions and
    /// permutations; sifting never increases the shared node count.
    #[test]
    fn reorder_preserves_semantics(e in expr_strategy(), seed in any::<u64>()) {
        use walshcheck_dd::reorder::{sift, transfer};
        let mut src = BddManager::new(NVARS);
        let f = build(&mut src, &e);
        // A pseudo-random permutation of the variables.
        let mut perm: Vec<u32> = (0..NVARS).collect();
        let mut state = seed | 1;
        for i in (1..perm.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let map: Vec<VarId> = perm.iter().map(|&v| VarId(v)).collect();
        let mut dst = BddManager::new(NVARS);
        let moved = transfer(&src, &[f], &mut dst, &map)[0];
        for a in 0..1u128 << NVARS {
            let mut remapped = 0u128;
            for (i, &p) in perm.iter().enumerate() {
                if a >> i & 1 == 1 {
                    remapped |= 1 << p;
                }
            }
            prop_assert_eq!(src.eval(f, a), dst.eval(moved, remapped));
        }
        // Sifting: never worse, semantics preserved under its order.
        let result = sift(&src, &[f]);
        prop_assert!(result.after <= result.before);
        for a in 0..1u128 << NVARS {
            let mut remapped = 0u128;
            for i in 0..NVARS as usize {
                if a >> i & 1 == 1 {
                    remapped |= 1 << result.order[i].0;
                }
            }
            prop_assert_eq!(src.eval(f, a), result.manager.eval(result.roots[0], remapped));
        }
    }

    /// The sparse ANF agrees with the function on every point, degree is
    /// bounded by the variable count, and to_bdd round-trips.
    #[test]
    fn anf_round_trips_on_random_expressions(e in expr_strategy()) {
        use walshcheck_dd::anf::anf_from_bdd;
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let anf = anf_from_bdd(&m, f);
        prop_assert!(anf.degree() <= NVARS);
        for a in 0..1u128 << NVARS {
            prop_assert_eq!(anf.eval(a), m.eval(f, a), "a={:b}", a);
        }
        let back = anf.to_bdd(&mut m);
        prop_assert_eq!(back, f);
    }

    /// BDD functional composition matches semantic substitution.
    #[test]
    fn compose_matches_substitution(e1 in expr_strategy(), e2 in expr_strategy(), v in 0..NVARS) {
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e1);
        let g = build(&mut m, &e2);
        let h = m.compose(f, VarId(v), g);
        for a in 0..1u128 << NVARS {
            let gv = m.eval(g, a);
            let substituted = if gv { a | 1 << v } else { a & !(1 << v) };
            prop_assert_eq!(m.eval(h, a), m.eval(f, substituted), "a={:b}", a);
        }
    }
}
