//! Contention stress for the shared backend: eight threads hammer one
//! concurrent store with overlapping workloads and the node-dedup
//! invariants must hold — identical functions get identical handles on
//! every thread, results match the private backend, and re-running the
//! workload afterwards interns nothing new.

use std::thread;

use walshcheck_dd::prelude::*;

const THREADS: usize = 8;
const VARS: u32 = 12;

/// A deterministic family of functions with heavy structure sharing.
/// `rot` rotates the construction order so concurrent threads race on
/// different stripes at different times; the *functions* are the same.
fn bdd_suite(m: &mut BddManager, rot: usize) -> Vec<Bdd> {
    let n = VARS as usize;
    let mut out = vec![Bdd::FALSE; n];
    for k in 0..n {
        let i = (k + rot) % n;
        let x = m.var(VarId(i as u32));
        let y = m.var(VarId(((i + 1) % n) as u32));
        let z = m.var(VarId(((i + 5) % n) as u32));
        let xy = m.and(x, y);
        let f = m.xor(xy, z);
        let g = m.or(f, x);
        out[i] = m.ite(g, f, z);
    }
    // A chain that forces deep recursion through the shared apply caches.
    let mut acc = Bdd::TRUE;
    for k in 0..n {
        let i = (k + rot) % n;
        acc = m.xor(acc, out[i]);
    }
    out.push(acc);
    out
}

fn add_suite(m: &mut AddManager<Dyadic>, rot: usize) -> Vec<Add> {
    let n = VARS as usize;
    let zero = m.constant(Dyadic::ZERO);
    let mut out = vec![zero; n];
    for k in 0..n {
        let i = (k + rot) % n;
        let a = m.indicator(
            VarId(i as u32),
            Dyadic::from_int(i as i64 + 1),
            Dyadic::from_int(-(i as i64) - 1),
        );
        let b = m.indicator(VarId(((i + 3) % n) as u32), Dyadic::ONE, Dyadic::ZERO);
        out[i] = m.add_op(a, b);
    }
    let mut acc = m.constant(Dyadic::ZERO);
    for k in 0..n {
        let i = (k + rot) % n;
        acc = m.add_op(acc, out[i]);
    }
    out.push(acc);
    out
}

#[test]
fn eight_threads_dedupe_into_one_bdd_store() {
    let backend = Shared::new(None);
    let per_thread: Vec<Vec<Bdd>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let backend = backend.clone();
                s.spawn(move || {
                    let mut m = backend.bdd_manager(VARS, &DdConfig::default());
                    bdd_suite(&mut m, t)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Canonicity: every thread resolved each function to the same handle.
    for t in 1..THREADS {
        assert_eq!(per_thread[t], per_thread[0], "thread {t} diverged");
    }
    // Saturation: the workload is fully interned — replaying it creates
    // zero new nodes (the dedup invariant would be violated by any lost
    // race that slipped a duplicate into the arena).
    let mut replay = backend.bdd_manager(VARS, &DdConfig::default());
    let before = replay.arena_size();
    let again = bdd_suite(&mut replay, 3);
    assert_eq!(replay.arena_size(), before, "replay interned new nodes");
    assert_eq!(again, per_thread[0]);
    // Semantics: spot-check against the private backend.
    let mut private = BddManager::new(VARS);
    let reference = bdd_suite(&mut private, 0);
    for a in (0..1u128 << VARS).step_by(37) {
        for (f, g) in per_thread[0].iter().zip(&reference) {
            assert_eq!(replay.eval(*f, a), private.eval(*g, a), "at {a:b}");
        }
    }
}

#[test]
fn eight_threads_dedupe_into_one_add_store() {
    let backend = Shared::new(None);
    let per_thread: Vec<Vec<Add>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let backend = backend.clone();
                s.spawn(move || {
                    let mut m = backend.add_manager(VARS, &DdConfig::default());
                    add_suite(&mut m, t)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for t in 1..THREADS {
        assert_eq!(per_thread[t], per_thread[0], "thread {t} diverged");
    }
    let mut replay = backend.add_manager(VARS, &DdConfig::default());
    let before = replay.arena_size();
    let again = add_suite(&mut replay, 5);
    assert_eq!(replay.arena_size(), before, "replay interned new nodes");
    assert_eq!(again, per_thread[0]);
    let mut private = AddManager::new(VARS);
    let reference = add_suite(&mut private, 0);
    for a in (0..1u128 << VARS).step_by(41) {
        for (f, g) in per_thread[0].iter().zip(&reference) {
            assert_eq!(replay.eval(*f, a), private.eval(*g, a), "at {a:b}");
        }
    }
}
