//! Backend selection for the DD kernel: private per-caller managers versus
//! one concurrent store shared by every manager a backend creates.
//!
//! The verifier's engines are generic over a [`DdBackend`], a sealed
//! factory trait with exactly two implementations:
//!
//! * [`Private`] — each [`crate::add::AddManager`] / [`crate::bdd::BddManager`]
//!   owns its arena, unique tables and apply caches (the PR 5 kernel and
//!   the default). Zero synchronization, zero sharing.
//! * [`Shared`] — managers created from one `Shared` value intern nodes
//!   into a single concurrent store ([`crate::shared`], DESIGN.md §14), so
//!   scheduler workers reuse each other's structure and apply results
//!   instead of rebuilding them per worker.
//!
//! The backend is a *speed knob*, never a result knob: handles are
//! canonical within a store under both backends, so verdicts, witnesses
//! and reports are byte-identical across backends and thread counts (the
//! determinism suite enforces this). Accordingly the backend is excluded
//! from job identity hashing, and is selectable per run via
//! `Session::dd_backend`, `--dd-backend`, or the `WALSHCHECK_DD_BACKEND`
//! environment variable.
//!
//! Construction-time knobs (apply-cache sizing, node budgets) travel
//! through [`DdConfig`] so accounting stays behind the trait rather than
//! leaking manager internals to every call site.

use std::fmt;
use std::sync::Arc;

use crate::add::AddManager;
use crate::bdd::BddManager;
use crate::dyadic::Dyadic;
use crate::shared::{SharedAddStore, SharedBddStore};

/// Which node-store implementation a run uses. See the module docs; this
/// is the serializable name of a [`DdBackend`] implementation, carried in
/// options, CLI flags and the (non-hashed) run section of reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Per-manager arenas and caches; no cross-thread sharing (default).
    #[default]
    Private,
    /// One concurrent arena, unique table and apply cache per run, shared
    /// by all workers.
    Shared,
}

impl Backend {
    /// Environment variable consulted by [`Backend::from_env`]; the
    /// process-wide default backend for runs that don't set one explicitly
    /// (CLI without `--dd-backend`, daemon submissions, test suites).
    pub const ENV_VAR: &'static str = "WALSHCHECK_DD_BACKEND";

    /// The canonical lowercase name (`"private"` / `"shared"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Private => "private",
            Backend::Shared => "shared",
        }
    }

    /// Parses a canonical name; `None` for anything else.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "private" => Some(Backend::Private),
            "shared" => Some(Backend::Shared),
            _ => None,
        }
    }

    /// The default backend for this process: `WALSHCHECK_DD_BACKEND` if set
    /// to a valid name, otherwise [`Backend::Private`].
    pub fn from_env() -> Backend {
        std::env::var(Self::ENV_VAR)
            .ok()
            .and_then(|v| Backend::parse(&v))
            .unwrap_or(Backend::Private)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Construction-time knobs a backend applies to the managers it builds.
///
/// Keeping these behind the factory (rather than having every call site
/// poke `set_node_budget` / `set_apply_cache_limit` on fresh managers)
/// lets the shared backend interpret them correctly: a shared store's
/// caches are sized once at backend creation, while node budgets are
/// per-manager — each worker accounts the nodes *it* created.
#[derive(Debug, Clone, Copy, Default)]
pub struct DdConfig {
    /// Approximate binary apply-cache slot count for ADD managers (the
    /// other caches scale proportionally). `None` keeps the defaults. On
    /// the shared backend this is fixed at [`Shared::new`] time and this
    /// field is ignored.
    pub apply_cache_limit: Option<usize>,
    /// Node-growth budget installed on each manager (see
    /// [`crate::budget`]); `None` for unbounded.
    pub node_budget: Option<usize>,
}

mod sealed {
    /// Seals [`super::DdBackend`]: the two implementations in this module
    /// are the complete set, so downstream code may match exhaustively on
    /// [`super::Backend`].
    pub trait Sealed {}
    impl Sealed for super::Private {}
    impl Sealed for super::Shared {}
}

/// Factory for the DD managers a verification run works with.
///
/// Sealed: [`Private`] and [`Shared`] are the only implementations. The
/// trait is object-safe — engines hold a `&dyn DdBackend` and stay
/// backend-generic.
pub trait DdBackend: sealed::Sealed + fmt::Debug + Send + Sync {
    /// The serializable name of this backend.
    fn kind(&self) -> Backend;

    /// A fresh ADD manager over `num_vars` variables, configured per `cfg`.
    fn add_manager(&self, num_vars: u32, cfg: &DdConfig) -> AddManager<Dyadic>;

    /// A fresh BDD manager over `num_vars` variables, configured per `cfg`.
    fn bdd_manager(&self, num_vars: u32, cfg: &DdConfig) -> BddManager;
}

/// The default backend: every manager owns its store outright.
#[derive(Debug, Clone, Copy, Default)]
pub struct Private;

impl DdBackend for Private {
    fn kind(&self) -> Backend {
        Backend::Private
    }

    fn add_manager(&self, num_vars: u32, cfg: &DdConfig) -> AddManager<Dyadic> {
        let mut m = AddManager::new(num_vars);
        if let Some(limit) = cfg.apply_cache_limit {
            m.set_apply_cache_limit(limit);
        }
        m.set_node_budget(cfg.node_budget);
        m
    }

    fn bdd_manager(&self, num_vars: u32, cfg: &DdConfig) -> BddManager {
        let mut m = BddManager::new(num_vars);
        m.set_node_budget(cfg.node_budget);
        m
    }
}

/// A concurrent store shared by every manager this backend creates.
///
/// Cloning is cheap (two `Arc`s) and clones share the same store —
/// a scheduler creates one `Shared` per run and hands it to each worker.
#[derive(Debug, Clone)]
pub struct Shared {
    adds: Arc<SharedAddStore<Dyadic>>,
    bdds: Arc<SharedBddStore>,
}

impl Shared {
    /// A fresh shared store. `apply_cache_limit` sizes the ADD apply
    /// caches exactly like
    /// [`crate::add::AddManager::set_apply_cache_limit`] would (the BDD
    /// caches keep the manager defaults); `None` keeps the defaults. The
    /// caches are allocated eagerly — a shared store is created once per
    /// run, not per worker.
    pub fn new(apply_cache_limit: Option<usize>) -> Self {
        Shared {
            adds: Arc::new(SharedAddStore::new(apply_cache_limit)),
            bdds: Arc::new(SharedBddStore::new()),
        }
    }
}

impl DdBackend for Shared {
    fn kind(&self) -> Backend {
        Backend::Shared
    }

    fn add_manager(&self, num_vars: u32, cfg: &DdConfig) -> AddManager<Dyadic> {
        let mut m = AddManager::with_shared(num_vars, Arc::clone(&self.adds));
        m.set_node_budget(cfg.node_budget);
        m
    }

    fn bdd_manager(&self, num_vars: u32, cfg: &DdConfig) -> BddManager {
        let mut m = BddManager::with_shared(num_vars, Arc::clone(&self.bdds));
        m.set_node_budget(cfg.node_budget);
        m
    }
}

/// Builds the runtime backend for `kind`. For [`Backend::Shared`] this
/// creates the run's single shared store, sized by `apply_cache_limit`.
pub fn runtime(kind: Backend, apply_cache_limit: Option<usize>) -> Box<dyn DdBackend> {
    match kind {
        Backend::Private => Box::new(Private),
        Backend::Shared => Box::new(Shared::new(apply_cache_limit)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarId;

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Private, Backend::Shared] {
            assert_eq!(Backend::parse(b.as_str()), Some(b));
            assert_eq!(b.to_string(), b.as_str());
        }
        assert_eq!(Backend::parse("bogus"), None);
        assert_eq!(Backend::default(), Backend::Private);
    }

    #[test]
    fn factories_apply_the_config() {
        let cfg = DdConfig {
            apply_cache_limit: Some(1 << 10),
            node_budget: Some(4),
        };
        for backend in [&Private as &dyn DdBackend, &Shared::new(Some(1 << 10))] {
            let mut m = backend.add_manager(3, &cfg);
            assert_eq!(m.num_vars(), 3);
            // The budget must trip after ~4 fresh nodes.
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for v in (0..3u32).rev() {
                    let acc = m.indicator(VarId(v), Dyadic::from_int(v as i64 + 2), Dyadic::ZERO);
                    let one = m.constant(Dyadic::from_int(-7));
                    let _ = m.mk(VarId(0), one, acc);
                }
                for i in 0..100 {
                    let _ = m.indicator(VarId(2), Dyadic::from_int(i + 100), Dyadic::ZERO);
                }
            }))
            .unwrap_err();
            assert!(
                err.downcast_ref::<crate::budget::CapacityExceeded>()
                    .is_some(),
                "{:?} budget did not trip",
                backend.kind()
            );
        }
    }

    #[test]
    fn shared_managers_dedupe_against_each_other() {
        let backend = Shared::new(None);
        let cfg = DdConfig::default();
        let mut a = backend.bdd_manager(4, &cfg);
        let mut b = backend.bdd_manager(4, &cfg);
        let xa = a.var(VarId(0));
        let ya = a.var(VarId(1));
        let fa = a.and(xa, ya);
        let xb = b.var(VarId(0));
        let yb = b.var(VarId(1));
        let fb = b.and(xb, yb);
        // Same function, different managers, one store: same handle.
        assert_eq!(fa, fb);
        assert_eq!(a.arena_size(), b.arena_size());
    }
}
