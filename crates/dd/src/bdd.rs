//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! [`BddManager`] is an arena-based, hash-consed ROBDD package in the style of
//! CUDD: nodes are interned in open-addressed unique tables so that structural
//! equality is pointer (index) equality, and all operations are memoized in
//! fixed-size direct-mapped apply caches ([`crate::table`], DESIGN.md §12),
//! giving the classical `O(|f|·|g|)` bound for binary Boolean operations. A
//! manager owns those structures outright on the [`crate::backend::Private`]
//! backend, or borrows a run-wide concurrent store on
//! [`crate::backend::Shared`] ([`crate::shared`], DESIGN.md §14); the API and
//! all results are identical either way.
//!
//! Handles carry a **complement edge** (DESIGN.md §17): the top bit of a
//! [`Bdd`] marks logical negation of the node it points at, so `not` is a
//! bit flip, a function and its complement share every node, and the two
//! terminals collapse to a single arena node (`TRUE`; `FALSE = ¬TRUE`).
//! Canonicity is kept by the CUDD rule that a stored node's *hi* edge is
//! always regular (uncomplemented): `mk` normalizes `(v, l, ¬h)` to
//! `¬(v, ¬l, h)`. All traversal goes through the logical node view
//! ([`BddManager::node`]), which resolves the complement bit into the
//! cofactors, so algorithms observe exactly the semantics of the plain
//! representation — including witness enumeration order.
//!
//! The variable order is static (variable `0` is tested first). This suits the
//! probing-security workload, where the order is fixed by the circuit's input
//! declaration and never reordered mid-analysis (the sweep-time exception is
//! [`crate::reorder`], which builds a separate sifted manager).
//!
//! ```
//! use walshcheck_dd::bdd::BddManager;
//! use walshcheck_dd::var::VarId;
//!
//! let mut m = BddManager::new(3);
//! let x = m.var(VarId(0));
//! let y = m.var(VarId(1));
//! let f = m.and(x, y);
//! let g = m.or(x, y);
//! assert!(m.implies(f, g));
//! assert_eq!(m.sat_count(f), 2); // x∧y over 3 variables: 2 assignments
//! ```

use std::cell::Cell;
use std::sync::Arc;

use crate::budget::NodeBudget;
use crate::fasthash::{hash_pair, FastMap, FastSet};
use crate::shared::{MkMemo, SharedBddStore};
use crate::table::{BinaryApplyCache, Subtable, TernaryApplyCache};
use crate::var::{VarId, VarSet};

/// Handle to a BDD node inside a [`BddManager`].
///
/// Handles are plain indices; they are only meaningful for the manager (or,
/// on the shared backend, the store) that produced them. Structural equality
/// of functions is handle equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

/// Complement bit: a handle with this bit set denotes the negation of the
/// regular handle obtained by clearing it.
const COMPL: u32 = 1 << 31;

impl Bdd {
    /// The constant true function: the single terminal arena node.
    pub const TRUE: Bdd = Bdd(1);
    /// The constant false function: the complemented terminal.
    pub const FALSE: Bdd = Bdd(1 | COMPL);

    /// Whether this handle is one of the two constant functions.
    pub fn is_const(self) -> bool {
        self.0 & !COMPL == 1
    }

    /// The handle with the complement bit cleared (the function or its
    /// negation, whichever is stored regular).
    #[inline]
    pub(crate) fn regular(self) -> Bdd {
        Bdd(self.0 & !COMPL)
    }

    /// Whether the complement bit is set.
    #[inline]
    fn is_compl(self) -> bool {
        self.0 & COMPL != 0
    }
}

/// Level assigned to terminal nodes: below every variable.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

/// With complement edges only two binary kernels are needed: `or` is
/// De Morgan over `and` (a pair of free bit flips), which concentrates all
/// conjunction/disjunction traffic on a single cache tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BoolOp {
    And,
    Xor,
}

impl BoolOp {
    /// Tag in the shared binary apply cache.
    #[inline]
    fn tag(self) -> u32 {
        match self {
            BoolOp::And => 1,
            BoolOp::Xor => 3,
        }
    }
}

/// Default slot counts for the operation caches. The binary cache carries
/// almost all of the engines' traffic (`and`/`or`/`xor` during transition
/// matrix builds), so it gets the lion's share.
const BINARY_CACHE_SLOTS: usize = 1 << 16;
const TERNARY_CACHE_SLOTS: usize = 1 << 15;

/// The node store a manager works against: owned outright
/// ([`crate::backend::Private`]) or a handle on the run-wide concurrent
/// store ([`crate::backend::Shared`]) plus a private `mk` memo that
/// keeps repeat interning off the shared unique table.
#[derive(Debug)]
enum BddStore {
    Private(PrivateBddStore),
    Shared {
        store: Arc<SharedBddStore>,
        memo: MkMemo,
        /// Private L1 apply caches in front of the run-wide (L2) caches.
        /// Every result this manager computes is recorded in both, so the
        /// manager's own repeat lookups hit at private-backend cost — the
        /// L1 sees the exact put sequence a private manager's cache would —
        /// while L1 misses fall through to the shared L2, which is what
        /// carries cross-manager reuse.
        apply_l1: BinaryApplyCache,
        ite_l1: TernaryApplyCache,
        /// Read-through copy of the shared arena's nodes, indexed by id.
        /// Arena slots are written exactly once, so a mirrored `(var, lo,
        /// hi)` can never go stale — reads the manager repeats (the bulk of
        /// `apply` traffic) become plain vector loads instead of
        /// segment-located atomics. Slots holding `lo ==`
        /// [`MIRROR_VACANT`] fall back to the arena and fill in.
        mirror: Vec<Cell<(u32, u32, u32)>>,
    },
}

/// `lo` sentinel of an unfilled mirror slot. A stored `lo` edge is a node
/// id with an optional complement bit; `mk` refuses ids at or above
/// `COMPL − 1`, so `u32::MAX` (= the complement of id `COMPL − 1`) can
/// never be a real edge.
const MIRROR_VACANT: u32 = u32::MAX;

/// The single-owner store: the PR 5 kernel structures, unchanged.
#[derive(Debug)]
struct PrivateBddStore {
    nodes: Vec<Node>,
    /// One unique subtable per variable (see [`crate::table`]); extended by
    /// [`BddManager::add_var`].
    unique: Vec<Subtable>,
    apply_cache: BinaryApplyCache,
    ite_cache: TernaryApplyCache,
}

/// An arena-based ROBDD manager with unique table and operation caches.
#[derive(Debug)]
pub struct BddManager {
    store: BddStore,
    quant_cache: FastMap<(Bdd, u128, bool), Bdd>,
    /// Handles registered via [`BddManager::add_ref`], which structure
    /// rewrites (sifting) must preserve even when they are not listed as
    /// roots of the rewrite.
    external: Vec<Bdd>,
    budget: NodeBudget,
    /// Internal nodes *this manager* interned first (on the private backend,
    /// exactly the arena growth past the two terminals). The node budget
    /// charges against this counter, so on the shared backend each worker
    /// accounts its own creations instead of the racy store-wide total.
    created: usize,
    num_vars: u32,
}

impl BddManager {
    /// Creates a manager with `num_vars` variables (levels `0..num_vars`)
    /// owning a private store.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds [`VarId::MAX_VARS`].
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars <= VarId::MAX_VARS, "too many variables");
        // Slot 0 is a dead placeholder (the pre-complement-edge false
        // terminal) kept so the true terminal stays at its historical id 1;
        // no handle ever points at it. FALSE is the complement of TRUE.
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                lo: Bdd(0),
                hi: Bdd(0),
            },
            Node {
                var: TERMINAL_VAR,
                lo: Bdd::TRUE,
                hi: Bdd::TRUE,
            },
        ];
        BddManager {
            store: BddStore::Private(PrivateBddStore {
                nodes,
                unique: (0..num_vars).map(|_| Subtable::default()).collect(),
                apply_cache: BinaryApplyCache::new(BINARY_CACHE_SLOTS),
                ite_cache: TernaryApplyCache::new(TERNARY_CACHE_SLOTS),
            }),
            quant_cache: FastMap::default(),
            external: Vec::new(),
            budget: NodeBudget::default(),
            created: 0,
            num_vars,
        }
    }

    /// Creates a manager working against the given run-wide store (whose
    /// terminal seeds are ids 0/1); reached via [`crate::backend::Shared`].
    pub(crate) fn with_shared(num_vars: u32, store: Arc<SharedBddStore>) -> Self {
        assert!(num_vars <= VarId::MAX_VARS, "too many variables");
        store.attach();
        BddManager {
            store: BddStore::Shared {
                store,
                memo: MkMemo::new(),
                apply_l1: BinaryApplyCache::new(BINARY_CACHE_SLOTS),
                ite_l1: TernaryApplyCache::new(TERNARY_CACHE_SLOTS),
                mirror: Vec::new(),
            },
            quant_cache: FastMap::default(),
            external: Vec::new(),
            budget: NodeBudget::default(),
            created: 0,
            num_vars,
        }
    }

    /// Whether this manager works against a run-wide shared store.
    pub fn is_shared(&self) -> bool {
        matches!(self.store, BddStore::Shared { .. })
    }

    /// Installs (or clears, with `None`) a node-growth budget and rebases
    /// its baseline to the nodes this manager has created so far. Once set,
    /// interning more than `limit` new internal nodes past the most recent
    /// [`BddManager::rebase_node_budget`] raises a
    /// [`crate::budget::CapacityExceeded`] panic payload for the caller to
    /// `catch_unwind`. Prefer installing budgets via
    /// [`crate::backend::DdConfig`] at manager creation.
    pub fn set_node_budget(&mut self, limit: Option<usize>) {
        self.budget.set(limit, self.created);
    }

    /// Moves the budget baseline forward, making existing structure free.
    /// Call at each unit-of-work (tuple) boundary.
    pub fn rebase_node_budget(&mut self) {
        self.budget.rebase(self.created);
    }

    /// Sizes the apply caches to about `limit` slots (rounded down to a
    /// power of two, floored at 16); the ternary cache scales down
    /// proportionally. The caches are fixed direct-mapped slabs, so
    /// this bounds their memory exactly; see
    /// [`crate::add::AddManager::set_apply_cache_limit`].
    ///
    /// On the shared backend this sizes the manager's private L1 caches;
    /// the run-wide L2 caches are sized once, at
    /// [`crate::backend::Shared::new`] time.
    pub fn set_apply_cache_limit(&mut self, limit: usize) {
        match &mut self.store {
            BddStore::Private(p) => {
                p.apply_cache.resize(limit);
                p.ite_cache = TernaryApplyCache::new((limit >> 1).max(16));
            }
            BddStore::Shared {
                apply_l1, ite_l1, ..
            } => {
                apply_l1.resize(limit);
                *ite_l1 = TernaryApplyCache::new((limit >> 1).max(16));
            }
        }
    }

    /// Heap footprint of the operation-cache slabs, in bytes (fixed —
    /// independent of occupancy).
    pub fn apply_cache_bytes(&self) -> usize {
        match &self.store {
            BddStore::Private(p) => p.apply_cache.bytes() + p.ite_cache.bytes(),
            BddStore::Shared {
                store,
                apply_l1,
                ite_l1,
                ..
            } => apply_l1.bytes() + ite_l1.bytes() + store.binary.bytes() + store.ternary.bytes(),
        }
    }

    /// Number of variables managed.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Appends a fresh variable at the bottom of the order and returns it.
    pub fn add_var(&mut self) -> VarId {
        assert!(self.num_vars < VarId::MAX_VARS, "too many variables");
        let v = VarId(self.num_vars);
        self.num_vars += 1;
        // The shared table is global (the variable is part of the node key),
        // so only the private per-variable subtables need extending.
        if let BddStore::Private(p) = &mut self.store {
            p.unique.push(Subtable::default());
        }
        v
    }

    /// Registers `f` as externally held: structure rewrites such as
    /// [`crate::reorder::sift`] will transfer it even when the caller does
    /// not list it as a root (see [`crate::reorder::SiftResult::image_of`]).
    pub fn add_ref(&mut self, f: Bdd) {
        if !self.external.contains(&f) {
            self.external.push(f);
        }
    }

    /// Drops an external registration made by [`BddManager::add_ref`];
    /// unknown handles are ignored.
    pub fn del_ref(&mut self, f: Bdd) {
        if let Some(i) = self.external.iter().position(|&x| x == f) {
            self.external.remove(i);
        }
    }

    /// The externally registered handles, in registration order.
    pub fn external_refs(&self) -> &[Bdd] {
        &self.external
    }

    /// Total number of live nodes in the arena (including both terminals).
    /// On the shared backend this is the *store-wide* count, racy while
    /// other workers intern.
    pub fn arena_size(&self) -> usize {
        match &self.store {
            BddStore::Private(p) => p.nodes.len(),
            BddStore::Shared { store, .. } => store.nodes.len(),
        }
    }

    /// The *logical* node behind `f` (terminals read as `var ==
    /// TERMINAL_VAR`): the complement bit of the handle is pushed onto the
    /// stored cofactors, so `raw(¬f).lo == ¬raw(f).lo` and traversals see
    /// exactly the semantics a complement-free representation would.
    #[inline]
    fn raw(&self, f: Bdd) -> Node {
        let n = self.raw_stored(f.regular());
        if f.is_compl() {
            Node {
                var: n.var,
                lo: Bdd(n.lo.0 ^ COMPL),
                hi: Bdd(n.hi.0 ^ COMPL),
            }
        } else {
            n
        }
    }

    /// The stored node at a regular handle.
    #[inline]
    fn raw_stored(&self, f: Bdd) -> Node {
        debug_assert!(!f.is_compl());
        match &self.store {
            BddStore::Private(p) => p.nodes[f.0 as usize],
            BddStore::Shared { store, mirror, .. } => {
                if let Some(slot) = mirror.get(f.0 as usize) {
                    let (var, lo, hi) = slot.get();
                    if lo != MIRROR_VACANT {
                        return Node {
                            var,
                            lo: Bdd(lo),
                            hi: Bdd(hi),
                        };
                    }
                }
                let n = store.nodes.node(f.0);
                if let Some(slot) = mirror.get(f.0 as usize) {
                    slot.set((n.var, n.lo, n.hi));
                }
                Node {
                    var: n.var,
                    lo: Bdd(n.lo),
                    hi: Bdd(n.hi),
                }
            }
        }
    }

    #[inline]
    fn app_get(&self, op: u32, f: u32, g: u32) -> Option<u32> {
        match &self.store {
            BddStore::Private(p) => p.apply_cache.get(op, f, g),
            BddStore::Shared {
                store, apply_l1, ..
            } => apply_l1.get(op, f, g).or_else(|| {
                store
                    .publish()
                    .then(|| store.binary.get(op, f, g))
                    .flatten()
            }),
        }
    }

    #[inline]
    fn app_put(&mut self, op: u32, f: u32, g: u32, r: u32) {
        match &mut self.store {
            BddStore::Private(p) => p.apply_cache.put(op, f, g, r),
            BddStore::Shared {
                store, apply_l1, ..
            } => {
                apply_l1.put(op, f, g, r);
                if store.publish() {
                    store.binary.put(op, f, g, r);
                }
            }
        }
    }

    #[inline]
    fn ite_get(&self, f: u32, g: u32, h: u32) -> Option<u32> {
        match &self.store {
            BddStore::Private(p) => p.ite_cache.get(f, g, h),
            BddStore::Shared { store, ite_l1, .. } => ite_l1.get(f, g, h).or_else(|| {
                store
                    .publish()
                    .then(|| store.ternary.get(f, g, h))
                    .flatten()
            }),
        }
    }

    #[inline]
    fn ite_put(&mut self, f: u32, g: u32, h: u32, r: u32) {
        match &mut self.store {
            BddStore::Private(p) => p.ite_cache.put(f, g, h, r),
            BddStore::Shared { store, ite_l1, .. } => {
                ite_l1.put(f, g, h, r);
                if store.publish() {
                    store.ternary.put(f, g, h, r);
                }
            }
        }
    }

    /// The decision variable of `f`'s root, or `None` for terminals.
    pub fn root_var(&self, f: Bdd) -> Option<VarId> {
        let v = self.raw(f).var;
        (v != TERMINAL_VAR).then_some(VarId(v))
    }

    fn var_of(&self, f: Bdd) -> u32 {
        self.raw(f).var
    }

    fn lo(&self, f: Bdd) -> Bdd {
        self.raw(f).lo
    }

    fn hi(&self, f: Bdd) -> Bdd {
        self.raw(f).hi
    }

    /// Decomposes a non-terminal node into `(var, lo, hi)`, or returns
    /// `None` for the two terminals. This is the raw structural view used by
    /// algorithms (e.g. spectral transforms) that traverse the diagram.
    pub fn node(&self, f: Bdd) -> Option<(VarId, Bdd, Bdd)> {
        if f.is_const() {
            None
        } else {
            let n = self.raw(f);
            Some((VarId(n.var), n.lo, n.hi))
        }
    }

    /// The `(lo, hi)` cofactors of `f` with respect to variable `v`, which
    /// must be at or above `f`'s root level.
    pub fn cofactors(&self, f: Bdd, v: VarId) -> (Bdd, Bdd) {
        if self.var_of(f) == v.0 {
            (self.lo(f), self.hi(f))
        } else {
            (f, f)
        }
    }

    /// Interns the node `(var, lo, hi)`, applying the reduction rule and
    /// the complement-edge canonicity rule (stored *hi* edges are regular:
    /// `(v, l, ¬h)` is interned as `(v, ¬l, h)` and returned complemented).
    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.var_of(lo) && var < self.var_of(hi),
            "ordering violated"
        );
        let flip = hi.0 & COMPL;
        let (lo, hi) = (Bdd(lo.0 ^ flip), Bdd(hi.0 ^ flip));
        let id = match &mut self.store {
            BddStore::Private(p) => {
                let h = hash_pair(lo.0, hi.0);
                let nodes = &p.nodes;
                let sub = &mut p.unique[var as usize];
                if let Some(found) = sub.get(h, |i| {
                    let n = &nodes[i as usize];
                    n.lo == lo && n.hi == hi
                }) {
                    found
                } else {
                    self.budget.charge("bdd-arena", self.created);
                    let raw = u32::try_from(p.nodes.len()).expect("BDD arena full");
                    // Ids must stay below the complement bit, and strictly
                    // below COMPL − 1 so a complemented edge can never
                    // collide with the MIRROR_VACANT sentinel.
                    assert!(raw < COMPL - 1, "BDD arena full");
                    p.nodes.push(Node { var, lo, hi });
                    let nodes = &p.nodes;
                    p.unique[var as usize].insert(h, raw, |i| {
                        let n = &nodes[i as usize];
                        hash_pair(n.lo.0, n.hi.0)
                    });
                    self.created += 1;
                    raw
                }
            }
            BddStore::Shared {
                store,
                memo,
                mirror,
                ..
            } => {
                if let Some(id) = memo.get(var, lo.0, hi.0) {
                    return Bdd(id | flip);
                }
                // The budget verdict is precomputed so a CapacityExceeded
                // unwind can never poison the shared table — `intern` does
                // probe and insert under one stripe acquisition and returns
                // `None` instead of inserting when over budget.
                let over = self.budget.would_trip(self.created);
                let Some((id, fresh)) = store.nodes.intern(var, lo.0, hi.0, over) else {
                    self.budget.charge("bdd-arena", self.created);
                    unreachable!("would_trip and charge disagree");
                };
                assert!(id < COMPL - 1, "BDD arena full");
                if fresh {
                    self.created += 1;
                }
                // `mk` is the one `&mut self` choke point every new id
                // passes through, so the mirror is grown here; `raw` (which
                // only has `&self`) fills out-of-range ids lazily.
                let idx = id as usize;
                if mirror.len() <= idx {
                    mirror.resize(idx + 1, Cell::new((0, MIRROR_VACANT, 0)));
                }
                mirror[idx].set((var, lo.0, hi.0));
                memo.put(var, lo.0, hi.0, id);
                id
            }
        };
        Bdd(id | flip)
    }

    /// The literal `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this manager.
    pub fn var(&mut self, v: VarId) -> Bdd {
        assert!(v.0 < self.num_vars, "unknown variable {v}");
        self.mk(v.0, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated literal `¬v`.
    pub fn nvar(&mut self, v: VarId) -> Bdd {
        assert!(v.0 < self.num_vars, "unknown variable {v}");
        self.mk(v.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// Constant function for `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Logical negation `¬f`: with complement edges, a free bit flip.
    pub fn not(&self, f: Bdd) -> Bdd {
        Bdd(f.0 ^ COMPL)
    }

    fn apply(&mut self, op: BoolOp, f: Bdd, g: Bdd) -> Bdd {
        // Terminal and complement short-cuts.
        match op {
            BoolOp::And => {
                if f == Bdd::FALSE || g == Bdd::FALSE || f.0 ^ g.0 == COMPL {
                    return Bdd::FALSE;
                }
                if f == Bdd::TRUE {
                    return g;
                }
                if g == Bdd::TRUE || f == g {
                    return f;
                }
            }
            BoolOp::Xor => {
                if f == g {
                    return Bdd::FALSE;
                }
                if f.0 ^ g.0 == COMPL {
                    return Bdd::TRUE;
                }
                // XOR commutes with complement: pull both complement bits
                // out so all four sign combinations of (f, g) share one
                // cache entry.
                if (f.0 | g.0) & COMPL != 0 {
                    let flip = (f.0 ^ g.0) & COMPL;
                    let r = self.apply(BoolOp::Xor, f.regular(), g.regular());
                    return Bdd(r.0 ^ flip);
                }
                if f == Bdd::TRUE {
                    return self.not(g);
                }
                if g == Bdd::TRUE {
                    return self.not(f);
                }
            }
        }
        // Commutative: canonicalize the cache key.
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(r) = self.app_get(op.tag(), a.0, b.0) {
            return Bdd(r);
        }
        let va = self.var_of(a);
        let vb = self.var_of(b);
        let top = va.min(vb);
        let (a0, a1) = if va == top {
            (self.lo(a), self.hi(a))
        } else {
            (a, a)
        };
        let (b0, b1) = if vb == top {
            (self.lo(b), self.hi(b))
        } else {
            (b, b)
        };
        let r0 = self.apply(op, a0, b0);
        let r1 = self.apply(op, a1, b1);
        let r = self.mk(top, r0, r1);
        self.app_put(op.tag(), a.0, b.0, r.0);
        r
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(BoolOp::And, f, g)
    }

    /// Disjunction `f ∨ g`, by De Morgan over the `and` kernel (negation is
    /// free, so this costs nothing and keeps all ∧/∨ traffic on one cache
    /// tag).
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let (nf, ng) = (self.not(f), self.not(g));
        let r = self.apply(BoolOp::And, nf, ng);
        self.not(r)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(BoolOp::Xor, f, g)
    }

    /// Exclusive nor `¬(f ⊕ g)`.
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Negated conjunction `¬(f ∧ g)`.
    pub fn nand(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.and(f, g);
        self.not(x)
    }

    /// Negated disjunction `¬(f ∨ g)`.
    pub fn nor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.or(f, g);
        self.not(x)
    }

    /// If-then-else `(f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if f == Bdd::TRUE {
            return g;
        }
        if f == Bdd::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return f;
        }
        if g == Bdd::FALSE && h == Bdd::TRUE {
            return self.not(f);
        }
        // Complement canonicalization (CUDD): make f regular by swapping
        // the branches (ite(¬f,g,h) = ite(f,h,g)), then make g regular by
        // complementing the result (ite(f,¬g,¬h) = ¬ite(f,g,h)). All eight
        // sign combinations share one cache entry.
        let (f, g, h) = if f.is_compl() {
            (self.not(f), h, g)
        } else {
            (f, g, h)
        };
        if g.is_compl() {
            let (ng, nh) = (self.not(g), self.not(h));
            let r = self.ite(f, ng, nh);
            return self.not(r);
        }
        if let Some(r) = self.ite_get(f.0, g.0, h.0) {
            return Bdd(r);
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = if self.var_of(f) == top {
            (self.lo(f), self.hi(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if self.var_of(g) == top {
            (self.lo(g), self.hi(g))
        } else {
            (g, g)
        };
        let (h0, h1) = if self.var_of(h) == top {
            (self.lo(h), self.hi(h))
        } else {
            (h, h)
        };
        let r0 = self.ite(f0, g0, h0);
        let r1 = self.ite(f1, g1, h1);
        let r = self.mk(top, r0, r1);
        self.ite_put(f.0, g.0, h.0, r.0);
        r
    }

    /// Whether `f → g` is a tautology.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> bool {
        let ng = self.not(g);
        self.and(f, ng) == Bdd::FALSE
    }

    /// Cofactor of `f` with variable `v` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, v: VarId, value: bool) -> Bdd {
        if f.is_const() || self.var_of(f) > v.0 {
            return f;
        }
        if self.var_of(f) == v.0 {
            return if value { self.hi(f) } else { self.lo(f) };
        }
        // var_of(f) < v: rebuild (no dedicated cache; restrict is rare and
        // shallow in this workload).
        let n = self.raw(f);
        let rlo = self.restrict(n.lo, v, value);
        let rhi = self.restrict(n.hi, v, value);
        self.mk(n.var, rlo, rhi)
    }

    fn quantify(&mut self, f: Bdd, vars: VarSet, existential: bool) -> Bdd {
        if f.is_const() || vars.is_empty() {
            return f;
        }
        if let Some(&r) = self.quant_cache.get(&(f, vars.0, existential)) {
            return r;
        }
        let var = self.var_of(f);
        let lo = self.lo(f);
        let hi = self.hi(f);
        // Variables above f's root no longer matter.
        let below = VarSet(vars.0 & !((1u128 << var).wrapping_sub(1)));
        let r = if below.is_empty() {
            f
        } else if below.contains(VarId(var)) {
            let mut rest = below;
            rest.remove(VarId(var));
            let rlo = self.quantify(lo, rest, existential);
            let rhi = self.quantify(hi, rest, existential);
            if existential {
                self.or(rlo, rhi)
            } else {
                self.and(rlo, rhi)
            }
        } else {
            let rlo = self.quantify(lo, below, existential);
            let rhi = self.quantify(hi, below, existential);
            self.mk(var, rlo, rhi)
        };
        self.quant_cache.insert((f, vars.0, existential), r);
        r
    }

    /// Functional composition `f[v := g]`: substitutes `g` for variable
    /// `v` in `f` (CUDD's `Cudd_bddCompose`).
    pub fn compose(&mut self, f: Bdd, v: VarId, g: Bdd) -> Bdd {
        let mut memo: FastMap<Bdd, Bdd> = FastMap::default();
        self.compose_rec(f, v, g, &mut memo)
    }

    fn compose_rec(&mut self, f: Bdd, v: VarId, g: Bdd, memo: &mut FastMap<Bdd, Bdd>) -> Bdd {
        if f.is_const() || self.var_of(f) > v.0 {
            return f; // v cannot appear below this node
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.raw(f);
        let r = if n.var == v.0 {
            self.ite(g, n.hi, n.lo)
        } else {
            let clo = self.compose_rec(n.lo, v, g, memo);
            let chi = self.compose_rec(n.hi, v, g, memo);
            let lit = self.mk(n.var, Bdd::FALSE, Bdd::TRUE);
            self.ite(lit, chi, clo)
        };
        memo.insert(f, r);
        r
    }

    /// Existential quantification `∃ vars. f`.
    pub fn exists(&mut self, f: Bdd, vars: VarSet) -> Bdd {
        self.quantify(f, vars, true)
    }

    /// Universal quantification `∀ vars. f`.
    pub fn forall(&mut self, f: Bdd, vars: VarSet) -> Bdd {
        self.quantify(f, vars, false)
    }

    /// The set of variables `f` structurally depends on.
    pub fn support(&self, f: Bdd) -> VarSet {
        // Dedupe on regular handles: f and ¬f share the same cone.
        let mut seen: FastSet<Bdd> = FastSet::default();
        let mut stack = vec![f.regular()];
        let mut s = VarSet::EMPTY;
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            let node = self.raw_stored(n);
            s.insert(VarId(node.var));
            stack.push(node.lo.regular());
            stack.push(node.hi.regular());
        }
        s
    }

    /// Evaluates `f` under `assignment`, where bit `i` gives variable `i`.
    pub fn eval(&self, f: Bdd, assignment: u128) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.raw(cur);
            cur = if assignment >> n.var & 1 == 1 {
                n.hi
            } else {
                n.lo
            };
        }
        cur == Bdd::TRUE
    }

    /// Number of satisfying assignments of `f` over all manager variables.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let mut memo: FastMap<Bdd, u128> = FastMap::default();
        let below = self.count_below(f, &mut memo);
        below << self.level(f)
    }

    fn level(&self, f: Bdd) -> u32 {
        self.var_of(f).min(self.num_vars)
    }

    /// Satisfying assignments over variables at or below `f`'s own level.
    fn count_below(&self, f: Bdd, memo: &mut FastMap<Bdd, u128>) -> u128 {
        if f == Bdd::FALSE {
            return 0;
        }
        if f == Bdd::TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.raw(f);
        let clo = self.count_below(n.lo, memo) << (self.level(n.lo) - n.var - 1);
        let chi = self.count_below(n.hi, memo) << (self.level(n.hi) - n.var - 1);
        let c = clo + chi;
        memo.insert(f, c);
        c
    }

    /// Builds the characteristic function of a set of full assignments
    /// (bit `i` of a key = variable `i`) in one radix pass over `keys`,
    /// partitioning the slice in place level by level — no apply-cache
    /// traffic and no allocation. Duplicate keys are tolerated; the slice
    /// order is not preserved.
    ///
    /// This is the fast path for turning a sparse spectrum's support into
    /// the BDD intersected with the `T`-matrix: equivalent to interning the
    /// keys into an ADD and taking its non-zero support, minus the ADD.
    pub fn from_keys(&mut self, keys: &mut [u128]) -> Bdd {
        let n = self.num_vars();
        self.keys_to_bdd_rec(0, n, keys)
    }

    fn keys_to_bdd_rec(&mut self, level: u32, n: u32, keys: &mut [u128]) -> Bdd {
        if keys.is_empty() {
            return Bdd::FALSE;
        }
        if level == n {
            return Bdd::TRUE;
        }
        let bit = 1u128 << level;
        // Unstable in-place partition: low-half keys first.
        let mut i = 0;
        let mut j = keys.len();
        while i < j {
            if keys[i] & bit == 0 {
                i += 1;
            } else {
                j -= 1;
                keys.swap(i, j);
            }
        }
        let (lo, hi) = keys.split_at_mut(i);
        let l = self.keys_to_bdd_rec(level + 1, n, lo);
        let h = self.keys_to_bdd_rec(level + 1, n, hi);
        self.mk(level, l, h)
    }

    /// Whether any of `keys` (full assignments, bit `i` = variable `i`)
    /// satisfies `t` — exactly `and(from_keys(keys), t) != FALSE`, but
    /// computed by a read-only radix descent that interns **zero** nodes
    /// and touches no caches. `keys` is reordered in place.
    ///
    /// This is the fast path for the MAPI verification step, where almost
    /// every row's spectrum support misses the `T`-matrix entirely: the
    /// descent short-circuits on the first hit and prunes whole key blocks
    /// on `t`'s false cofactors.
    pub fn any_key_sat(&self, t: Bdd, keys: &mut [u128]) -> bool {
        self.any_key_rec(0, self.num_vars, t, keys)
    }

    fn any_key_rec(&self, level: u32, n: u32, t: Bdd, keys: &mut [u128]) -> bool {
        if keys.is_empty() || t == Bdd::FALSE {
            return false;
        }
        if t == Bdd::TRUE || level == n {
            return true;
        }
        let (t0, t1) = if self.var_of(t) == level {
            (self.lo(t), self.hi(t))
        } else {
            (t, t)
        };
        let bit = 1u128 << level;
        // Unstable in-place partition: low-half keys first.
        let mut i = 0;
        let mut j = keys.len();
        while i < j {
            if keys[i] & bit == 0 {
                i += 1;
            } else {
                j -= 1;
                keys.swap(i, j);
            }
        }
        let (lo, hi) = keys.split_at_mut(i);
        self.any_key_rec(level + 1, n, t0, lo) || self.any_key_rec(level + 1, n, t1, hi)
    }

    /// One satisfying full assignment of `f` (don't-care variables are 0),
    /// or `None` for the constant-false function.
    pub fn one_sat(&self, f: Bdd) -> Option<u128> {
        if f == Bdd::FALSE {
            return None;
        }
        let mut cur = f;
        let mut assignment = 0u128;
        while !cur.is_const() {
            let n = self.raw(cur);
            if n.hi != Bdd::FALSE {
                assignment |= 1u128 << n.var;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(assignment)
    }

    /// The conjunction of literals described by `(vars, polarity)`: for each
    /// variable in `vars`, positive if the corresponding bit of `polarity`
    /// is set.
    pub fn cube(&mut self, vars: VarSet, polarity: u128) -> Bdd {
        let mut acc = Bdd::TRUE;
        // Build bottom-up for linear-size construction.
        let members: Vec<VarId> = vars.iter().collect();
        for v in members.into_iter().rev() {
            acc = if polarity >> v.0 & 1 == 1 {
                self.mk(v.0, Bdd::FALSE, acc)
            } else {
                self.mk(v.0, acc, Bdd::FALSE)
            };
        }
        acc
    }

    /// XOR of all literals in `vars` (the parity function).
    pub fn parity(&mut self, vars: VarSet) -> Bdd {
        let mut acc = Bdd::FALSE;
        for v in vars.iter() {
            let lit = self.var(v);
            acc = self.xor(acc, lit);
        }
        acc
    }

    /// Number of distinct arena nodes reachable from `f` (including the
    /// terminal). A node and its complement count once — that is the real
    /// memory footprint under complement edges.
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen: FastSet<Bdd> = FastSet::default();
        let mut stack = vec![f.regular()];
        while let Some(n) = stack.pop() {
            if seen.insert(n) && !n.is_const() {
                let node = self.raw_stored(n);
                stack.push(node.lo.regular());
                stack.push(node.hi.regular());
            }
        }
        seen.len()
    }

    /// Clears the operation caches (the unique table is kept, so existing
    /// handles stay valid). Useful to bound memory on very long runs.
    ///
    /// On the shared backend the per-manager structures (L1 apply caches
    /// and the quantification cache) are cleared — the run-wide L2 caches
    /// stay, since other managers may be mid-operation on them and cached
    /// handles are always safe to keep.
    pub fn clear_caches(&mut self) {
        match &mut self.store {
            BddStore::Private(p) => {
                p.apply_cache.clear();
                p.ite_cache.clear();
            }
            BddStore::Shared {
                apply_l1, ite_l1, ..
            } => {
                apply_l1.clear();
                ite_l1.clear();
            }
        }
        self.quant_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new(4)
    }

    #[test]
    fn constants_and_literals() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        assert!(m.eval(x, 0b1));
        assert!(!m.eval(x, 0b0));
        let nx = m.nvar(VarId(0));
        let notx = m.not(x);
        assert_eq!(nx, notx);
        assert_eq!(m.constant(true), Bdd::TRUE);
    }

    #[test]
    fn hash_consing_gives_canonical_nodes() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f1 = m.and(x, y);
        let f2 = m.and(y, x);
        assert_eq!(f1, f2);
        let g1 = m.or(x, y);
        let ng = m.not(g1);
        let nx = m.not(x);
        let ny = m.not(y);
        let demorgan = m.and(nx, ny);
        assert_eq!(ng, demorgan);
    }

    #[test]
    fn xor_chain_is_parity() {
        let mut m = mgr();
        let vars: VarSet = (0..4).map(VarId).collect();
        let p = m.parity(vars);
        for a in 0..16u128 {
            assert_eq!(m.eval(p, a), (a.count_ones() & 1) == 1);
        }
        assert_eq!(m.sat_count(p), 8);
    }

    #[test]
    fn ite_matches_definition() {
        let mut m = mgr();
        let f = m.var(VarId(0));
        let g = m.var(VarId(1));
        let h = m.var(VarId(2));
        let r = m.ite(f, g, h);
        for a in 0..16u128 {
            let expect = if m.eval(f, a) {
                m.eval(g, a)
            } else {
                m.eval(h, a)
            };
            assert_eq!(m.eval(r, a), expect);
        }
    }

    #[test]
    fn restrict_is_cofactor() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let z = m.var(VarId(2));
        let xy = m.and(x, y);
        let f = m.xor(xy, z);
        let f1 = m.restrict(f, VarId(1), true);
        let expect = m.xor(x, z);
        assert_eq!(f1, expect);
        let f0 = m.restrict(f, VarId(1), false);
        assert_eq!(f0, z);
    }

    #[test]
    fn compose_substitutes_functions() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let z = m.var(VarId(2));
        let w = m.var(VarId(3));
        let xy = m.and(x, y);
        let f = m.xor(xy, z);
        // Substitute z := y ∨ w.
        let g = m.or(y, w);
        let h = m.compose(f, VarId(2), g);
        for a in 0..16u128 {
            let xv = a & 1 == 1;
            let yv = a >> 1 & 1 == 1;
            let wv = a >> 3 & 1 == 1;
            assert_eq!(m.eval(h, a), (xv && yv) ^ (yv || wv), "a={a:b}");
        }
        // Composing with a constant is cofactoring.
        let h_true = m.compose(f, VarId(2), Bdd::TRUE);
        let cof = m.restrict(f, VarId(2), true);
        assert_eq!(h_true, cof);
        // Composing a variable not in the support is the identity.
        assert_eq!(m.compose(f, VarId(3), g), f);
        // Shannon identity: f[v := v] = f.
        assert_eq!(m.compose(f, VarId(1), y), f);
    }

    #[test]
    fn quantifiers() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.and(x, y);
        let ex = m.exists(f, VarSet::singleton(VarId(0)));
        assert_eq!(ex, y);
        let fa = m.forall(f, VarSet::singleton(VarId(0)));
        assert_eq!(fa, Bdd::FALSE);
        let g = m.or(x, y);
        let fa2 = m.forall(g, VarSet::singleton(VarId(0)));
        assert_eq!(fa2, y);
        // Quantifying a variable not in the support is the identity.
        assert_eq!(m.exists(f, VarSet::singleton(VarId(3))), f);
    }

    #[test]
    fn support_tracks_dependencies() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let z = m.var(VarId(2));
        let f = m.xor(x, z);
        let s = m.support(f);
        assert!(s.contains(VarId(0)));
        assert!(!s.contains(VarId(1)));
        assert!(s.contains(VarId(2)));
        assert_eq!(m.support(Bdd::TRUE), VarSet::EMPTY);
    }

    #[test]
    fn sat_count_with_skipped_levels() {
        let mut m = mgr();
        let z = m.var(VarId(3)); // lowest variable: 8 assignments
        assert_eq!(m.sat_count(z), 8);
        let x = m.var(VarId(0));
        let f = m.or(x, z);
        // |x ∨ z| over 4 vars = 16 − |¬x ∧ ¬z| = 16 − 4 = 12.
        assert_eq!(m.sat_count(f), 12);
        assert_eq!(m.sat_count(Bdd::TRUE), 16);
        assert_eq!(m.sat_count(Bdd::FALSE), 0);
    }

    #[test]
    fn one_sat_finds_a_model() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let ny = m.nvar(VarId(1));
        let f = m.and(x, ny);
        let a = m.one_sat(f).expect("satisfiable");
        assert!(m.eval(f, a));
        assert_eq!(m.one_sat(Bdd::FALSE), None);
    }

    #[test]
    fn cube_builds_minterms() {
        let mut m = mgr();
        let vars: VarSet = [VarId(0), VarId(2)].into_iter().collect();
        let c = m.cube(vars, 0b001);
        // x0 ∧ ¬x2
        for a in 0..16u128 {
            assert_eq!(m.eval(c, a), (a & 1 == 1) && (a >> 2 & 1 == 0));
        }
        assert_eq!(m.sat_count(c), 4);
    }

    #[test]
    fn implies_and_node_count() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.and(x, y);
        assert!(m.implies(f, x));
        assert!(!m.implies(x, f));
        assert!(m.node_count(f) >= 3);
    }

    #[test]
    fn add_var_extends_domain() {
        let mut m = BddManager::new(1);
        let v = m.add_var();
        assert_eq!(v, VarId(1));
        let x = m.var(v);
        // Over the 2-variable domain, the literal has 2 satisfying assignments.
        assert_eq!(m.sat_count(x), 2);
    }

    #[test]
    fn tiny_caches_do_not_change_results() {
        // Evict constantly; canonical handles must still match a roomy
        // manager's results function-by-function.
        let mut small = BddManager::new(6);
        small.set_apply_cache_limit(0);
        let mut big = BddManager::new(6);
        let build = |m: &mut BddManager| {
            let mut acc = m.constant(false);
            for v in 0..6u32 {
                let lit = m.var(VarId(v));
                let a = m.and(acc, lit);
                let o = m.or(acc, lit);
                let x = m.xor(a, o);
                acc = m.ite(lit, x, acc);
            }
            acc
        };
        let f = build(&mut small);
        let g = build(&mut big);
        for a in 0..64u128 {
            assert_eq!(small.eval(f, a), big.eval(g, a), "at {a:b}");
        }
    }

    #[test]
    fn external_refs_register_and_release() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.and(x, y);
        m.add_ref(f);
        m.add_ref(f); // idempotent
        m.add_ref(x);
        assert_eq!(m.external_refs(), &[f, x]);
        m.del_ref(f);
        assert_eq!(m.external_refs(), &[x]);
        m.del_ref(f); // unknown handles are ignored
        assert_eq!(m.external_refs(), &[x]);
    }

    #[test]
    fn shared_store_matches_private_semantics() {
        use crate::backend::{DdBackend, DdConfig, Shared};
        let backend = Shared::new(None);
        let cfg = DdConfig::default();
        let mut sh = backend.bdd_manager(6, &cfg);
        assert!(sh.is_shared());
        let mut pv = BddManager::new(6);
        assert!(!pv.is_shared());
        let build = |m: &mut BddManager| {
            let mut acc = m.constant(false);
            for v in 0..6u32 {
                let lit = m.var(VarId(v));
                let a = m.and(acc, lit);
                let o = m.or(acc, lit);
                let x = m.xor(a, o);
                acc = m.ite(lit, x, acc);
            }
            acc
        };
        let f = build(&mut sh);
        let g = build(&mut pv);
        for a in 0..64u128 {
            assert_eq!(sh.eval(f, a), pv.eval(g, a), "at {a:b}");
        }
        // A second shared manager re-finds the same handles without
        // creating nodes.
        let nodes = sh.arena_size();
        let mut sh2 = backend.bdd_manager(6, &cfg);
        let h = build(&mut sh2);
        assert_eq!(f, h, "shared handles must be canonical across managers");
        assert_eq!(sh2.arena_size(), nodes, "no duplicate nodes interned");
    }

    #[test]
    fn complement_edges_make_negation_free() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.ite(x, y, Bdd::FALSE);
        let before = m.arena_size();
        let nf = m.not(f);
        assert_eq!(m.arena_size(), before, "not must intern nothing");
        assert_eq!(m.not(nf), f, "involution at the handle level");
        // f and ¬f share the whole cone.
        assert_eq!(m.node_count(f), m.node_count(nf));
        for a in 0..16u128 {
            assert_eq!(m.eval(nf, a), !m.eval(f, a));
        }
        // Complement-aware terminal rules.
        assert_eq!(m.and(f, nf), Bdd::FALSE);
        assert_eq!(m.or(f, nf), Bdd::TRUE);
        assert_eq!(m.xor(f, nf), Bdd::TRUE);
        // XOR complement normalization: ¬f ⊕ y == ¬(f ⊕ y).
        let a = m.xor(nf, y);
        let b = m.xor(f, y);
        assert_eq!(a, m.not(b));
    }

    #[test]
    fn complemented_structure_traverses_like_plain() {
        // The logical node view must hide the representation: cofactors of
        // ¬f are the complements of f's cofactors, level by level.
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let z = m.var(VarId(2));
        let xy = m.and(x, y);
        let f = m.or(xy, z);
        let nf = m.not(f);
        let (vf, lof, hif) = m.node(f).expect("non-terminal");
        let (vn, lon, hin) = m.node(nf).expect("non-terminal");
        assert_eq!(vf, vn);
        assert_eq!(lon, m.not(lof));
        assert_eq!(hin, m.not(hif));
        // sat_count and one_sat see the same structure.
        assert_eq!(m.sat_count(f) + m.sat_count(nf), 16);
        let w = m.one_sat(nf).expect("satisfiable");
        assert!(!m.eval(f, w));
    }

    #[test]
    fn any_key_sat_matches_intersection_semantics() {
        let mut m = mgr();
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let z = m.var(VarId(2));
        let xy = m.and(x, y);
        let t = m.xor(xy, z);
        for mask in 0..256u32 {
            let mut keys: Vec<u128> = (0..8u128).filter(|k| mask >> k & 1 == 1).collect();
            let expect = keys.iter().any(|&k| m.eval(t, k));
            assert_eq!(
                m.any_key_sat(t, &mut keys),
                expect,
                "mask={mask:08b} t=xy^z"
            );
        }
        // Constants and the empty key set.
        let mut keys = vec![0u128, 5];
        assert!(m.any_key_sat(Bdd::TRUE, &mut keys));
        assert!(!m.any_key_sat(Bdd::FALSE, &mut keys));
        assert!(!m.any_key_sat(t, &mut []));
        // No nodes are interned by the descent.
        let before = m.arena_size();
        let mut all: Vec<u128> = (0..16).collect();
        assert!(m.any_key_sat(t, &mut all));
        assert_eq!(m.arena_size(), before);
    }
}
