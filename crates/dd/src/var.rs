//! Variable identifiers and compact variable sets.

use std::fmt;

/// Identifier of a decision variable.
///
/// Variables are identified by their level in the (static) variable order:
/// variable `0` is tested first. Managers support up to [`VarId::MAX_VARS`]
/// variables so that a [`VarSet`] fits into a single `u128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Upper bound on the number of variables a manager may hold.
    pub const MAX_VARS: u32 = 128;

    /// The level of the variable in the order (0 = topmost).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A set of decision variables, stored as a 128-bit mask.
///
/// ```
/// use walshcheck_dd::var::{VarId, VarSet};
///
/// let mut s = VarSet::EMPTY;
/// s.insert(VarId(3));
/// s.insert(VarId(7));
/// assert!(s.contains(VarId(3)));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![VarId(3), VarId(7)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VarSet(pub u128);

impl VarSet {
    /// The empty set.
    pub const EMPTY: VarSet = VarSet(0);

    /// The singleton `{v}`.
    pub fn singleton(v: VarId) -> Self {
        VarSet(1u128 << v.0)
    }

    /// Inserts a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is at or beyond [`VarId::MAX_VARS`].
    pub fn insert(&mut self, v: VarId) {
        assert!(v.0 < VarId::MAX_VARS, "variable index out of range");
        self.0 |= 1u128 << v.0;
    }

    /// Removes a variable.
    pub fn remove(&mut self, v: VarId) {
        self.0 &= !(1u128 << v.0);
    }

    /// Whether the set contains `v`.
    pub fn contains(&self, v: VarId) -> bool {
        v.0 < VarId::MAX_VARS && self.0 >> v.0 & 1 == 1
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(&self, other: &VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the members in increasing level order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let v = bits.trailing_zeros();
                bits &= bits - 1;
                Some(VarId(v))
            }
        })
    }
}

impl FromIterator<VarId> for VarSet {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        let mut s = VarSet::EMPTY;
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<VarId> for VarSet {
    fn extend<I: IntoIterator<Item = VarId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let a: VarSet = [VarId(0), VarId(2), VarId(64)].into_iter().collect();
        let b: VarSet = [VarId(2), VarId(3)].into_iter().collect();
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b), VarSet::singleton(VarId(2)));
        assert_eq!(a.difference(&b).len(), 2);
        assert!(VarSet::singleton(VarId(2)).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(VarSet::EMPTY.is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = VarSet::EMPTY;
        s.insert(VarId(127));
        assert!(s.contains(VarId(127)));
        s.remove(VarId(127));
        assert!(s.is_empty());
        assert!(!s.contains(VarId(5)));
    }

    #[test]
    fn display() {
        let s: VarSet = [VarId(1), VarId(3)].into_iter().collect();
        assert_eq!(s.to_string(), "{x1, x3}");
    }
}
