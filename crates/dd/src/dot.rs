//! Graphviz (DOT) export for decision diagrams — a debugging aid mirroring
//! CUDD's `Cudd_DumpDot`.

use std::collections::HashSet;
use std::fmt::Debug;
use std::fmt::Write as _;
use std::hash::Hash;

use crate::add::{Add, AddManager};
use crate::bdd::{Bdd, BddManager};

/// Renders the BDD rooted at `f` as a DOT digraph. Dashed edges are 0-edges.
pub fn bdd_to_dot(m: &BddManager, f: Bdd, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  f [shape=plaintext,label=\"{name}\"];");
    let _ = writeln!(out, "  n0 [shape=box,label=\"0\"];");
    let _ = writeln!(out, "  n1 [shape=box,label=\"1\"];");
    let _ = writeln!(out, "  f -> n{};", f.0);
    let mut seen: HashSet<Bdd> = HashSet::new();
    let mut stack = vec![f];
    while let Some(n) = stack.pop() {
        if n.is_const() || !seen.insert(n) {
            continue;
        }
        let (var, lo, hi) = m.node(n).expect("non-terminal");
        let _ = writeln!(out, "  n{} [shape=circle,label=\"{var}\"];", n.0);
        let _ = writeln!(out, "  n{} -> n{} [style=dashed];", n.0, lo.0);
        let _ = writeln!(out, "  n{} -> n{};", n.0, hi.0);
        stack.push(lo);
        stack.push(hi);
    }
    out.push_str("}\n");
    out
}

/// Renders the ADD rooted at `f` as a DOT digraph with terminal value boxes.
pub fn add_to_dot<T: Clone + Eq + Hash + Debug>(m: &AddManager<T>, f: Add, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  f [shape=plaintext,label=\"{name}\"];");
    let _ = writeln!(out, "  f -> \"{f:?}\";");
    let mut seen: HashSet<Add> = HashSet::new();
    let mut stack = vec![f];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if let Some(v) = m.terminal_value(n) {
            let _ = writeln!(out, "  \"{n:?}\" [shape=box,label=\"{v:?}\"];");
            continue;
        }
        let (var, lo, hi) = m.node_parts(n).expect("non-terminal");
        let _ = writeln!(out, "  \"{n:?}\" [shape=circle,label=\"{var}\"];");
        let _ = writeln!(out, "  \"{n:?}\" -> \"{lo:?}\" [style=dashed];");
        let _ = writeln!(out, "  \"{n:?}\" -> \"{hi:?}\";");
        stack.push(lo);
        stack.push(hi);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyadic::Dyadic;
    use crate::var::VarId;

    #[test]
    fn bdd_dot_contains_all_nodes() {
        let mut m = BddManager::new(2);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let f = m.and(x, y);
        let dot = bdd_to_dot(&m, f, "and");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn add_dot_contains_terminals() {
        let mut m: AddManager<Dyadic> = AddManager::new(1);
        let f = m.indicator(VarId(0), Dyadic::from_int(3), Dyadic::ZERO);
        let dot = add_to_dot(&m, f, "ind");
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("x0"));
    }
}
