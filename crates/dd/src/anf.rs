//! Algebraic normal form (ANF) and the Möbius transform.
//!
//! The ANF of a Boolean function is its unique XOR-of-monomials
//! representation `f(x) = ⊕_{m ⊆ vars} c_m · Π_{i∈m} x_i`; the coefficient
//! vector is the Möbius transform of the truth table. The masking literature
//! lives in ANF terms: the *algebraic degree* bounds how many shares a
//! threshold implementation needs (`n ≥ t·d + 1` shares for degree `t`), and
//! direct TI sharings are constructed monomial by monomial
//! (see `walshcheck-gadgets::ti_general`).
//!
//! [`anf_from_bdd`] computes the sparse ANF directly on the BDD with the
//! butterfly recursion `f = f₀ ⊕ x·(f₀ ⊕ f₁)`, memoized per node — the
//! XOR-domain analogue of the sparse Walsh transform in [`crate::spectral`].

use crate::fasthash::{FastMap, FastSet};
use std::rc::Rc;

use crate::bdd::{Bdd, BddManager};
use crate::var::VarSet;

/// A sparse ANF: the set of monomials with coefficient 1, each a variable
/// mask (bit `i` = variable `i`; the empty mask is the constant term).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Anf {
    monomials: FastSet<u128>,
}

impl Anf {
    /// The zero function.
    pub fn zero() -> Self {
        Anf::default()
    }

    /// The constant-one function.
    pub fn one() -> Self {
        Anf {
            monomials: [0].into_iter().collect(),
        }
    }

    /// Builds an ANF from an iterator of monomial masks (duplicates cancel,
    /// as XOR demands).
    pub fn from_monomials<I: IntoIterator<Item = u128>>(monomials: I) -> Self {
        let mut set = FastSet::default();
        for m in monomials {
            if !set.insert(m) {
                set.remove(&m);
            }
        }
        Anf { monomials: set }
    }

    /// The monomials present (unordered).
    pub fn monomials(&self) -> impl Iterator<Item = u128> + '_ {
        self.monomials.iter().copied()
    }

    /// Number of monomials.
    pub fn len(&self) -> usize {
        self.monomials.len()
    }

    /// Whether this is the zero function.
    pub fn is_empty(&self) -> bool {
        self.monomials.is_empty()
    }

    /// The algebraic degree (0 for constants; 0 for the zero function).
    pub fn degree(&self) -> u32 {
        self.monomials
            .iter()
            .map(|m| m.count_ones())
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the ANF on an assignment (bit `i` = variable `i`).
    pub fn eval(&self, assignment: u128) -> bool {
        self.monomials
            .iter()
            .filter(|&&m| m & assignment == m)
            .count()
            % 2
            == 1
    }

    /// XOR of two ANFs.
    pub fn xor(&self, other: &Anf) -> Anf {
        let mut set = self.monomials.clone();
        for &m in &other.monomials {
            if !set.insert(m) {
                set.remove(&m);
            }
        }
        Anf { monomials: set }
    }

    /// The set of variables appearing in some monomial.
    pub fn support(&self) -> VarSet {
        VarSet(self.monomials.iter().fold(0u128, |a, &m| a | m))
    }

    /// Rebuilds the function as a BDD.
    pub fn to_bdd(&self, m: &mut BddManager) -> Bdd {
        let mut acc = Bdd::FALSE;
        let mut sorted: Vec<u128> = self.monomials.iter().copied().collect();
        sorted.sort();
        for mono in sorted {
            let term = m.cube(VarSet(mono), mono);
            acc = m.xor(acc, term);
        }
        acc
    }
}

/// Sparse ANF of `f` via the Möbius/Reed–Muller transform on the BDD:
/// `anf(f) = anf(f₀) ⊕ x·(anf(f₀) ⊕ anf(f₁))`, memoized per node.
pub fn anf_from_bdd(m: &BddManager, f: Bdd) -> Anf {
    let mut memo: FastMap<Bdd, Rc<FastSet<u128>>> = FastMap::default();
    Anf {
        monomials: (*rec(m, f, &mut memo)).clone(),
    }
}

fn rec(m: &BddManager, f: Bdd, memo: &mut FastMap<Bdd, Rc<FastSet<u128>>>) -> Rc<FastSet<u128>> {
    if f == Bdd::FALSE {
        return Rc::new(FastSet::default());
    }
    if f == Bdd::TRUE {
        return Rc::new([0].into_iter().collect());
    }
    if let Some(r) = memo.get(&f) {
        return Rc::clone(r);
    }
    let (var, lo, hi) = m.node(f).expect("non-terminal");
    let a0 = rec(m, lo, memo);
    let a1 = rec(m, hi, memo);
    let bit = 1u128 << var.0;
    // f = f0 ⊕ x·(f0 ⊕ f1): start from f0, add x·(f0 Δ f1).
    let mut out: FastSet<u128> = (*a0).clone();
    for &mono in a0.symmetric_difference(&a1) {
        let lifted = mono | bit;
        if !out.insert(lifted) {
            out.remove(&lifted);
        }
    }
    let rc = Rc::new(out);
    memo.insert(f, Rc::clone(&rc));
    rc
}

/// Dense reference Möbius transform of a truth table (test oracle).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn dense_moebius(bits: &[bool]) -> Vec<bool> {
    assert!(
        bits.len().is_power_of_two(),
        "truth table length must be 2^n"
    );
    let mut v = bits.to_vec();
    let n = v.len();
    let mut h = 1;
    while h < n {
        for i in (0..n).step_by(h * 2) {
            for j in i..i + h {
                v[j + h] ^= v[j];
            }
        }
        h *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarId;

    #[test]
    fn anf_of_basic_functions() {
        let mut m = BddManager::new(3);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let z = m.var(VarId(2));
        let xy = m.and(x, y);
        let f = m.xor(xy, z);
        let anf = anf_from_bdd(&m, f);
        let mut mons: Vec<u128> = anf.monomials().collect();
        mons.sort();
        assert_eq!(mons, vec![0b011, 0b100]);
        assert_eq!(anf.degree(), 2);
        // OR has all three monomials: x ⊕ y ⊕ xy.
        let g = m.or(x, y);
        let anf = anf_from_bdd(&m, g);
        let mut mons: Vec<u128> = anf.monomials().collect();
        mons.sort();
        assert_eq!(mons, vec![0b001, 0b010, 0b011]);
    }

    #[test]
    fn anf_of_constants() {
        let m = BddManager::new(2);
        assert!(anf_from_bdd(&m, Bdd::FALSE).is_empty());
        let one = anf_from_bdd(&m, Bdd::TRUE);
        assert_eq!(one.monomials().collect::<Vec<_>>(), vec![0]);
        assert_eq!(one.degree(), 0);
    }

    #[test]
    fn anf_matches_dense_moebius() {
        let mut m = BddManager::new(4);
        let w = m.var(VarId(0));
        let x = m.var(VarId(1));
        let y = m.var(VarId(2));
        let z = m.var(VarId(3));
        let wx = m.and(w, x);
        let yz = m.or(y, z);
        let f = m.ite(wx, yz, x);
        let table: Vec<bool> = (0..16u128).map(|a| m.eval(f, a)).collect();
        let dense = dense_moebius(&table);
        let anf = anf_from_bdd(&m, f);
        for (mono, &coeff) in dense.iter().enumerate() {
            assert_eq!(
                anf.monomials().any(|x| x == mono as u128),
                coeff,
                "monomial {mono:b}"
            );
        }
    }

    #[test]
    fn anf_eval_and_round_trip() {
        let mut m = BddManager::new(3);
        let x = m.var(VarId(0));
        let y = m.var(VarId(1));
        let z = m.var(VarId(2));
        let t = m.nand(x, y);
        let f = m.xnor(t, z);
        let anf = anf_from_bdd(&m, f);
        for a in 0..8u128 {
            assert_eq!(anf.eval(a), m.eval(f, a), "a={a:b}");
        }
        let back = anf.to_bdd(&mut m);
        assert_eq!(back, f);
    }

    #[test]
    fn anf_xor_and_support() {
        let a = Anf::from_monomials([0b01u128, 0b10]);
        let b = Anf::from_monomials([0b10u128, 0b100]);
        let c = a.xor(&b);
        let mut mons: Vec<u128> = c.monomials().collect();
        mons.sort();
        assert_eq!(mons, vec![0b001, 0b100]);
        assert_eq!(c.support(), VarSet(0b101));
        // Duplicates in the constructor cancel.
        assert!(Anf::from_monomials([5u128, 5]).is_empty());
    }

    #[test]
    fn dense_moebius_is_an_involution() {
        let table = vec![
            false, true, true, false, true, true, false, false, true, false, false, false, true,
            true, true, false,
        ];
        let once = dense_moebius(&table);
        let twice = dense_moebius(&once);
        assert_eq!(twice, table);
    }
}
