//! Fast non-cryptographic hashing for the DD kernel's hot paths.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and DoS-resistant,
//! which is wasted work here: every hot map in this workspace is keyed by
//! arena handles, variable indices or spectral coordinates — small integers
//! the process itself produced, not attacker-controlled strings. This module
//! provides the multiplicative word-at-a-time hasher (in the spirit of
//! rustc's FxHash / wyhash's folding step) used by the unique tables and
//! apply caches of [`crate::add::AddManager`] / [`crate::bdd::BddManager`],
//! plus [`FastMap`] / [`FastSet`] aliases that drop it into any `HashMap`
//! call site.
//!
//! Determinism note: swapping hashers can only change *iteration order* of a
//! map, never its contents. Every result-bearing path in the verifier is
//! already iteration-order independent (witness selection takes the minimal
//! coordinate, spectra compare by content), so the swap is observable only
//! as time. The one deliberate non-guarantee is the same as `std`'s: two
//! different keys may collide — the tables resolve collisions, never assume
//! injectivity.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the fast multiplicative hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the fast multiplicative hasher.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// The odd multiplier of rustc's FxHash (derived from the golden ratio);
/// any odd constant with a roughly even bit mix works.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Finalization mix (splitmix64): spreads the entropy of the high bits into
/// the low bits, which power-of-two tables index by.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of a `(lo, hi)` child pair — the unique-table key of one variable's
/// subtable (the variable selects the subtable, so it is not part of the
/// key).
#[inline]
pub(crate) fn hash_pair(lo: u32, hi: u32) -> u64 {
    mix64((lo as u64) | ((hi as u64) << 32))
}

/// Word-at-a-time multiplicative hasher; see the module docs.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The final multiply leaves the low bits weak; finish with a full
        // mix so both hashbrown's control bytes (top 7) and its bucket
        // index (low bits) see good entropy.
        mix64(self.hash)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" differ.
            self.add(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add(i as u8 as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&(3u32, 7u32)), hash_of(&(3u32, 7u32)));
        assert_ne!(hash_of(&(3u32, 7u32)), hash_of(&(7u32, 3u32)));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
    }

    #[test]
    fn fast_map_round_trips() {
        let mut m: FastMap<u128, u32> = FastMap::default();
        for i in 0..1000u128 {
            m.insert(i << 64 | i, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u128 {
            assert_eq!(m.get(&(i << 64 | i)), Some(&(i as u32)));
        }
    }

    #[test]
    fn low_bits_are_usable_for_power_of_two_tables() {
        // Sequential keys must not collapse onto a few low-bit buckets.
        let mut buckets = [0u32; 16];
        for i in 0..4096u64 {
            buckets[(mix64(i) & 15) as usize] += 1;
        }
        for &b in &buckets {
            assert!((128..=384).contains(&b), "skewed bucket: {b}");
        }
    }
}
