//! CUDD-style hash tables for the DD kernel: per-variable open-addressed
//! unique subtables and fixed-size direct-mapped ("computed table") apply
//! caches.
//!
//! # Unique subtables
//!
//! Hash-consing needs an *exact* map `(var, lo, hi) → node` — a missed
//! lookup would silently break the structural-equality-is-handle-equality
//! invariant. Following CUDD, the map is split into one open-addressed
//! subtable per variable: the variable selects the subtable, so the stored
//! key shrinks to `(lo, hi)` and growth is *incremental* — filling up one
//! variable's subtable rehashes only that variable's nodes, not the whole
//! forest. Each subtable stores bare `u32` node indices in a power-of-two
//! slot array probed linearly; key comparison reads `(lo, hi)` back out of
//! the caller's node arena through a closure, so the table itself stays
//! ignorant of node layout (and usable by both the ADD and BDD managers).
//!
//! # Apply caches
//!
//! Memoizing `apply(op, f, g)` does *not* need an exact map: a lost entry
//! only costs a recomputation, which — thanks to hash consing — produces
//! the very same handle. The caches here exploit that: a fixed slab of
//! slots, each key hashing to exactly one slot, colliding entries simply
//! overwriting each other. No probing, no growth, no wholesale flush when
//! "full", no per-entry allocation — a lookup is one indexed load and
//! three compares. This is CUDD's computed table, and it is what replaced
//! the grow-then-flush `HashMap` caches that previously dominated the
//! MAPI profile.
//!
//! Determinism: because every value in these caches is a canonical handle,
//! cache hits and misses are observationally equivalent — see DESIGN.md §12
//! for the argument that verdicts, witnesses and capacity-quarantine
//! behaviour are bit-for-bit unaffected by collisions.

use crate::fasthash::mix64;

/// Sentinel for an empty unique-table slot / vacant cache entry. Node
/// handles can never reach this value: ADD handles keep bit 31 free for
/// the terminal tag, and a BDD arena of `u32::MAX` nodes (48 GiB) trips
/// the node budget or the allocator first.
const EMPTY: u32 = u32::MAX;

/// Smallest slot-array size allocated once a subtable holds anything.
const MIN_SUBTABLE_SLOTS: usize = 16;

/// One variable's slice of the unique table: an open-addressed,
/// power-of-two, linearly probed set of node indices.
///
/// Capacity grows by doubling when occupancy passes 2/3 — the classic
/// trade of a little memory for short probe sequences. The table never
/// shrinks; managers are rebuilt wholesale on garbage collection.
#[derive(Debug, Default)]
pub(crate) struct Subtable {
    /// Power-of-two slot array (empty `Box<[]>` until first insert).
    slots: Box<[u32]>,
    /// Number of occupied slots.
    len: usize,
}

impl Subtable {
    /// Number of nodes stored.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Looks up the node whose key hashes to `hash` and satisfies `eq`.
    ///
    /// `eq` receives a stored node index and must compare the actual key
    /// (the node's children) — the hash only picks the starting slot.
    #[inline]
    pub(crate) fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let v = self.slots[i];
            if v == EMPTY {
                return None;
            }
            if eq(v) {
                return Some(v);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `value`, whose key hashes to `hash` and is known absent
    /// (callers always probe with [`Subtable::get`] first — that is the
    /// hash-consing contract).
    ///
    /// `rehash` maps a stored node index back to its key's hash; it is
    /// only called when this insert triggers a growth rehash.
    #[inline]
    pub(crate) fn insert(&mut self, hash: u64, value: u32, mut rehash: impl FnMut(u32) -> u64) {
        // Grow at 2/3 occupancy (checking before the insert keeps at least
        // one slot empty, which the unbounded probe loop in `get` relies
        // on).
        if (self.len + 1) * 3 > self.slots.len() * 2 {
            self.grow(&mut rehash);
        }
        Self::place(&mut self.slots, hash, value);
        self.len += 1;
    }

    /// Writes `value` into the first free slot of its probe sequence.
    #[inline]
    fn place(slots: &mut [u32], hash: u64, value: u32) {
        let mask = slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = value;
    }

    /// Doubles the slot array and re-places every stored index.
    #[cold]
    fn grow(&mut self, rehash: &mut impl FnMut(u32) -> u64) {
        let new_cap = (self.slots.len() * 2).max(MIN_SUBTABLE_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap].into_boxed_slice());
        for &v in old.iter() {
            if v != EMPTY {
                Self::place(&mut self.slots, rehash(v), v);
            }
        }
    }

    /// Heap bytes held by the slot array.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }
}

/// Rounds an entry-count limit down to a power of two, floored at 16.
///
/// Rounding *down* keeps the fixed slab within the byte budget the caller
/// derived the limit from.
pub(crate) fn slots_for(limit: usize) -> usize {
    let limit = limit.max(MIN_SUBTABLE_SLOTS);
    if limit.is_power_of_two() {
        limit
    } else {
        limit.next_power_of_two() >> 1
    }
}

/// One direct-mapped cache entry for a binary operation: 16 bytes, no
/// padding. `op == EMPTY` marks a vacant slot (real op tags are small).
#[derive(Clone, Copy)]
struct BinEntry {
    op: u32,
    f: u32,
    g: u32,
    r: u32,
}

const BIN_VACANT: BinEntry = BinEntry {
    op: EMPTY,
    f: 0,
    g: 0,
    r: 0,
};

/// Bytes per [`BinaryApplyCache`] entry (used for byte accounting).
pub(crate) const BINARY_ENTRY_BYTES: usize = std::mem::size_of::<BinEntry>();

/// Smallest slab a lossy cache materializes on first use.
const INITIAL_CACHE_SLOTS: usize = 1 << 10;

/// Direct-mapped lossy cache for binary `apply` results.
///
/// The slab grows lazily: engines configure multi-megabyte caches up front,
/// but a workload only pays for zeroing what its own `put` traffic earns —
/// starting at [`INITIAL_CACHE_SLOTS`] and growing 8× (dropping the old
/// entries, which lossiness permits) until the committed `slot_count` is
/// reached. Tiny gadget checks therefore never touch more than a few KiB.
#[derive(Debug)]
pub(crate) struct BinaryApplyCache {
    slots: Box<[BinEntry]>,
    slot_count: usize,
    puts: usize,
}

impl std::fmt::Debug for BinEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinEntry").field("op", &self.op).finish()
    }
}

impl BinaryApplyCache {
    /// A cache committing to `slots_for(limit)` slots (materialized lazily).
    pub(crate) fn new(limit: usize) -> Self {
        Self {
            slots: Box::default(),
            slot_count: slots_for(limit),
            puts: 0,
        }
    }

    /// Materializes the initial slab or steps it 8× toward `slot_count`,
    /// dropping all entries (which a lossy cache may always do).
    #[cold]
    fn grow(&mut self) {
        let n = if self.slots.is_empty() {
            INITIAL_CACHE_SLOTS.min(self.slot_count)
        } else {
            (self.slots.len() * 8).min(self.slot_count)
        };
        self.slots = vec![BIN_VACANT; n].into_boxed_slice();
        self.puts = 0;
    }

    /// The single slot index `(op, f, g)` maps to.
    #[inline]
    fn index(&self, op: u32, f: u32, g: u32) -> usize {
        let key = (f as u64) | ((g as u64) << 32);
        (mix64(key ^ ((op as u64) << 17)) as usize) & (self.slots.len() - 1)
    }

    /// The cached result of `(op, f, g)`, if its slot still holds it.
    #[inline]
    pub(crate) fn get(&self, op: u32, f: u32, g: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let e = self.slots[self.index(op, f, g)];
        (e.op == op && e.f == f && e.g == g).then_some(e.r)
    }

    /// Records `(op, f, g) → r`, overwriting whatever occupied the slot.
    #[inline]
    pub(crate) fn put(&mut self, op: u32, f: u32, g: u32, r: u32) {
        if self.slots.len() < self.slot_count && self.puts >= self.slots.len() {
            self.grow();
        }
        self.puts += 1;
        let i = self.index(op, f, g);
        self.slots[i] = BinEntry { op, f, g, r };
    }

    /// Vacates every slot (a materialized slab is retained).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(BIN_VACANT);
        self.puts = 0;
    }

    /// Re-commits to `slots_for(limit)` slots, dropping all entries; the
    /// slab re-materializes under subsequent `put` traffic.
    pub(crate) fn resize(&mut self, limit: usize) {
        self.slot_count = slots_for(limit);
        self.slots = Box::default();
        self.puts = 0;
    }

    /// Fixed footprint of the committed slab in bytes (whether or not the
    /// lazy allocation has happened yet).
    pub(crate) fn bytes(&self) -> usize {
        self.slot_count * BINARY_ENTRY_BYTES
    }

    /// Number of slots (always a power of two).
    #[cfg(test)]
    pub(crate) fn slot_count(&self) -> usize {
        self.slot_count
    }
}

/// One direct-mapped cache entry for a unary operation: 12 bytes.
#[derive(Clone, Copy, Debug)]
struct UnEntry {
    op: u32,
    f: u32,
    r: u32,
}

const UN_VACANT: UnEntry = UnEntry {
    op: EMPTY,
    f: 0,
    r: 0,
};

/// Bytes per [`UnaryApplyCache`] entry (used for byte accounting).
pub(crate) const UNARY_ENTRY_BYTES: usize = std::mem::size_of::<UnEntry>();

/// Direct-mapped lossy cache for unary `apply` results (lazily grown slab,
/// see [`BinaryApplyCache`]).
#[derive(Debug)]
pub(crate) struct UnaryApplyCache {
    slots: Box<[UnEntry]>,
    slot_count: usize,
    puts: usize,
}

impl UnaryApplyCache {
    /// A cache committing to `slots_for(limit)` slots (materialized lazily).
    pub(crate) fn new(limit: usize) -> Self {
        Self {
            slots: Box::default(),
            slot_count: slots_for(limit),
            puts: 0,
        }
    }

    /// See [`BinaryApplyCache::grow`].
    #[cold]
    fn grow(&mut self) {
        let n = if self.slots.is_empty() {
            INITIAL_CACHE_SLOTS.min(self.slot_count)
        } else {
            (self.slots.len() * 8).min(self.slot_count)
        };
        self.slots = vec![UN_VACANT; n].into_boxed_slice();
        self.puts = 0;
    }

    #[inline]
    fn index(&self, op: u32, f: u32) -> usize {
        (mix64((f as u64) | ((op as u64) << 32)) as usize) & (self.slots.len() - 1)
    }

    /// The cached result of `(op, f)`, if its slot still holds it.
    #[inline]
    pub(crate) fn get(&self, op: u32, f: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let e = self.slots[self.index(op, f)];
        (e.op == op && e.f == f).then_some(e.r)
    }

    /// Records `(op, f) → r`, overwriting whatever occupied the slot.
    #[inline]
    pub(crate) fn put(&mut self, op: u32, f: u32, r: u32) {
        if self.slots.len() < self.slot_count && self.puts >= self.slots.len() {
            self.grow();
        }
        self.puts += 1;
        let i = self.index(op, f);
        self.slots[i] = UnEntry { op, f, r };
    }

    /// Vacates every slot (a materialized slab is retained).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(UN_VACANT);
        self.puts = 0;
    }

    /// Re-commits to `slots_for(limit)` slots, dropping all entries; the
    /// slab re-materializes under subsequent `put` traffic.
    pub(crate) fn resize(&mut self, limit: usize) {
        self.slot_count = slots_for(limit);
        self.slots = Box::default();
        self.puts = 0;
    }

    /// Fixed footprint of the committed slab in bytes.
    pub(crate) fn bytes(&self) -> usize {
        self.slot_count * UNARY_ENTRY_BYTES
    }
}

/// One direct-mapped cache entry for `ite(f, g, h)`: 16 bytes. Vacancy is
/// marked by `f == EMPTY` (never a valid handle, see [`EMPTY`]).
#[derive(Clone, Copy, Debug)]
struct TernEntry {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

const TERN_VACANT: TernEntry = TernEntry {
    f: EMPTY,
    g: 0,
    h: 0,
    r: 0,
};

/// Direct-mapped lossy cache for ternary (if-then-else) results (lazily
/// grown slab, see [`BinaryApplyCache`]).
#[derive(Debug)]
pub(crate) struct TernaryApplyCache {
    slots: Box<[TernEntry]>,
    slot_count: usize,
    puts: usize,
}

impl TernaryApplyCache {
    /// A cache committing to `slots_for(limit)` slots (materialized lazily).
    pub(crate) fn new(limit: usize) -> Self {
        Self {
            slots: Box::default(),
            slot_count: slots_for(limit),
            puts: 0,
        }
    }

    /// See [`BinaryApplyCache::grow`].
    #[cold]
    fn grow(&mut self) {
        let n = if self.slots.is_empty() {
            INITIAL_CACHE_SLOTS.min(self.slot_count)
        } else {
            (self.slots.len() * 8).min(self.slot_count)
        };
        self.slots = vec![TERN_VACANT; n].into_boxed_slice();
        self.puts = 0;
    }

    #[inline]
    fn index(&self, f: u32, g: u32, h: u32) -> usize {
        let key =
            mix64((f as u64) | ((g as u64) << 32)) ^ (h as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (mix64(key) as usize) & (self.slots.len() - 1)
    }

    /// The cached result of `ite(f, g, h)`, if its slot still holds it.
    #[inline]
    pub(crate) fn get(&self, f: u32, g: u32, h: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let e = self.slots[self.index(f, g, h)];
        (e.f == f && e.g == g && e.h == h).then_some(e.r)
    }

    /// Records `ite(f, g, h) → r`, overwriting whatever occupied the slot.
    #[inline]
    pub(crate) fn put(&mut self, f: u32, g: u32, h: u32, r: u32) {
        if self.slots.len() < self.slot_count && self.puts >= self.slots.len() {
            self.grow();
        }
        self.puts += 1;
        let i = self.index(f, g, h);
        self.slots[i] = TernEntry { f, g, h, r };
    }

    /// Vacates every slot (a materialized slab is retained).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(TERN_VACANT);
        self.puts = 0;
    }

    /// Fixed footprint of the committed slab in bytes.
    pub(crate) fn bytes(&self) -> usize {
        self.slot_count * std::mem::size_of::<TernEntry>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasthash::hash_pair;

    #[test]
    fn subtable_get_insert_grow() {
        // Model the arena externally: keys[i] is node i's (lo, hi).
        let mut keys: Vec<(u32, u32)> = Vec::new();
        let mut t = Subtable::default();
        for i in 0..500u32 {
            let key = (i * 3, i * 7 + 1);
            let h = hash_pair(key.0, key.1);
            assert_eq!(t.get(h, |v| keys[v as usize] == key), None);
            keys.push(key);
            t.insert(h, i, |v| hash_pair(keys[v as usize].0, keys[v as usize].1));
        }
        assert_eq!(t.len(), 500);
        for (i, key) in keys.iter().enumerate() {
            let h = hash_pair(key.0, key.1);
            assert_eq!(t.get(h, |v| keys[v as usize] == *key), Some(i as u32));
        }
        // Absent keys miss even after growth shuffled slots.
        assert_eq!(t.get(hash_pair(1, 2), |v| keys[v as usize] == (1, 2)), None);
        assert!(t.heap_bytes() >= 500 * 4);
    }

    #[test]
    fn slots_for_rounds_down_to_power_of_two() {
        assert_eq!(slots_for(0), 16);
        assert_eq!(slots_for(16), 16);
        assert_eq!(slots_for(17), 16);
        assert_eq!(slots_for(1 << 20), 1 << 20);
        assert_eq!(slots_for((1 << 20) + 1), 1 << 20);
        assert_eq!(slots_for((1 << 21) - 1), 1 << 20);
    }

    #[test]
    fn binary_cache_is_lossy_but_never_wrong() {
        let mut c = BinaryApplyCache::new(16);
        assert_eq!(c.slot_count(), 16);
        c.put(1, 10, 20, 99);
        assert_eq!(c.get(1, 10, 20), Some(99));
        assert_eq!(c.get(2, 10, 20), None);
        assert_eq!(c.get(1, 20, 10), None);
        // Flood with other keys: the original may be evicted, but a hit
        // must still return the right value.
        for i in 0..1000u32 {
            c.put(1, i, i + 1, i * 2);
        }
        for i in 0..1000u32 {
            if let Some(r) = c.get(1, i, i + 1) {
                assert_eq!(r, i * 2);
            }
        }
        c.clear();
        assert_eq!(c.get(1, 10, 20), None);
        assert_eq!(c.bytes(), 16 * BINARY_ENTRY_BYTES);
    }

    #[test]
    fn unary_and_ternary_caches_round_trip() {
        let mut u = UnaryApplyCache::new(16);
        u.put(7, 3, 42);
        assert_eq!(u.get(7, 3), Some(42));
        assert_eq!(u.get(8, 3), None);
        u.clear();
        assert_eq!(u.get(7, 3), None);

        let mut t = TernaryApplyCache::new(16);
        t.put(1, 2, 3, 4);
        assert_eq!(t.get(1, 2, 3), Some(4));
        assert_eq!(t.get(1, 3, 2), None);
        t.clear();
        assert_eq!(t.get(1, 2, 3), None);
    }

    #[test]
    fn entry_sizes_are_packed() {
        assert_eq!(BINARY_ENTRY_BYTES, 16);
        assert_eq!(UNARY_ENTRY_BYTES, 12);
        assert_eq!(std::mem::size_of::<TernEntry>(), 16);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Random interleavings of lookups and inserts against a `HashMap`
        /// model, with a deliberately coarse hash (callers own the hash, so
        /// the table must survive arbitrary clustering): every probe answer
        /// must match the model exactly, across several growth rounds.
        #[test]
        fn subtable_matches_hashmap_model_under_collisions(
            ops in proptest::collection::vec((0u32..600, proptest::prelude::any::<bool>()), 1..400),
            hash_bits in 0u32..8,
        ) {
            use std::collections::HashMap;
            // Only `hash_bits` of hash entropy: with 0 bits every key lands
            // in the same probe chain.
            let coarse = |k: u32| u64::from(k) & ((1u64 << hash_bits) - 1);
            let mut keys: Vec<u32> = Vec::new();
            let mut t = Subtable::default();
            let mut model: HashMap<u32, u32> = HashMap::new();
            for (key, do_insert) in ops {
                let h = coarse(key);
                let got = t.get(h, |v| keys[v as usize] == key);
                proptest::prop_assert_eq!(got, model.get(&key).copied());
                if do_insert && got.is_none() {
                    let idx = keys.len() as u32;
                    keys.push(key);
                    t.insert(h, idx, |v| coarse(keys[v as usize]));
                    model.insert(key, idx);
                }
            }
            proptest::prop_assert_eq!(t.len(), model.len());
            for (&key, &idx) in &model {
                let h = coarse(key);
                proptest::prop_assert_eq!(t.get(h, |v| keys[v as usize] == key), Some(idx));
            }
        }

        /// The direct-mapped caches against a `HashMap` model: a probe may
        /// miss (lossy), but a hit must return what the model holds for the
        /// most recent `put` of that exact key.
        #[test]
        fn lossy_caches_match_hashmap_model_when_they_hit(
            ops in proptest::collection::vec((0u32..4, 0u32..40, 0u32..40, 0u32..1000), 1..300)
        ) {
            use std::collections::HashMap;
            let mut c = BinaryApplyCache::new(16);
            let mut model: HashMap<(u32, u32, u32), u32> = HashMap::new();
            for (op, f, g, r) in ops {
                if let Some(hit) = c.get(op, f, g) {
                    proptest::prop_assert_eq!(Some(hit), model.get(&(op, f, g)).copied());
                }
                c.put(op, f, g, r);
                model.insert((op, f, g), r);
                proptest::prop_assert_eq!(c.get(op, f, g), Some(r));
            }
        }
    }
}
