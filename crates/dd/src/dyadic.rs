//! Exact dyadic rational arithmetic.
//!
//! Normalized Walsh/correlation coefficients of Boolean functions are dyadic
//! rationals `m · 2^e` with bounded denominators. Floating point would lose
//! exactness for wide circuits (denominators can exceed 2^53), so the spectral
//! engines carry coefficients as [`Dyadic`] values: an odd (or zero) `i128`
//! mantissa and a binary exponent.
//!
//! ```
//! use walshcheck_dd::dyadic::Dyadic;
//!
//! let half = Dyadic::new(1, -1);
//! let quarter = half * half;
//! assert_eq!(quarter, Dyadic::new(1, -2));
//! assert_eq!(half + half, Dyadic::ONE);
//! assert!((half - half).is_zero());
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact dyadic rational `mantissa · 2^exponent`.
///
/// The representation is canonical: the mantissa is odd, or zero with a zero
/// exponent. Canonicality makes derived `Eq`/`Hash` structural equality agree
/// with numeric equality, which the ADD managers rely on for hash-consing
/// terminal values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dyadic {
    mantissa: i128,
    exponent: i32,
}

impl Dyadic {
    /// The additive identity.
    pub const ZERO: Dyadic = Dyadic {
        mantissa: 0,
        exponent: 0,
    };
    /// The multiplicative identity.
    pub const ONE: Dyadic = Dyadic {
        mantissa: 1,
        exponent: 0,
    };
    /// Minus one, the smallest possible correlation.
    pub const MINUS_ONE: Dyadic = Dyadic {
        mantissa: -1,
        exponent: 0,
    };

    /// Creates `mantissa · 2^exponent`, normalizing the representation.
    ///
    /// ```
    /// use walshcheck_dd::dyadic::Dyadic;
    /// assert_eq!(Dyadic::new(4, -3), Dyadic::new(1, -1));
    /// assert_eq!(Dyadic::new(0, 17), Dyadic::ZERO);
    /// ```
    pub fn new(mantissa: i128, exponent: i32) -> Self {
        let mut d = Dyadic { mantissa, exponent };
        d.normalize();
        d
    }

    /// Creates the integer `n`.
    pub fn from_int(n: i64) -> Self {
        Dyadic::new(n as i128, 0)
    }

    /// `2^exponent`.
    pub fn pow2(exponent: i32) -> Self {
        Dyadic {
            mantissa: 1,
            exponent,
        }
    }

    /// The normalized mantissa (odd, or zero).
    pub fn mantissa(&self) -> i128 {
        self.mantissa
    }

    /// The binary exponent of the normalized representation.
    pub fn exponent(&self) -> i32 {
        self.exponent
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    /// Whether the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.mantissa == 1 && self.exponent == 0
    }

    /// The absolute value.
    pub fn abs(&self) -> Self {
        Dyadic {
            mantissa: self.mantissa.abs(),
            exponent: self.exponent,
        }
    }

    /// The sign of the value: `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.mantissa.signum() as i32
    }

    /// Lossy conversion to `f64` (for reporting only; may round for very
    /// wide denominators).
    pub fn to_f64(&self) -> f64 {
        self.mantissa as f64 * (self.exponent as f64).exp2()
    }

    /// Halves the value exactly.
    pub fn half(&self) -> Self {
        if self.mantissa == 0 {
            Dyadic::ZERO
        } else {
            Dyadic {
                mantissa: self.mantissa,
                exponent: self.exponent - 1,
            }
        }
    }

    /// Doubles the value exactly.
    pub fn double(&self) -> Self {
        if self.mantissa == 0 {
            Dyadic::ZERO
        } else {
            Dyadic {
                mantissa: self.mantissa,
                exponent: self.exponent + 1,
            }
        }
    }

    /// Multiplies by `2^k` exactly.
    pub fn scale2(&self, k: i32) -> Self {
        if self.mantissa == 0 {
            Dyadic::ZERO
        } else {
            Dyadic {
                mantissa: self.mantissa,
                exponent: self.exponent + k,
            }
        }
    }

    /// Returns the integer value if the dyadic is an integer that fits `i128`.
    pub fn to_int(&self) -> Option<i128> {
        if self.mantissa == 0 {
            Some(0)
        } else if self.exponent >= 0 && self.exponent < 127 {
            self.mantissa.checked_shl(self.exponent as u32)
        } else {
            None
        }
    }

    fn normalize(&mut self) {
        if self.mantissa == 0 {
            self.exponent = 0;
        } else {
            let tz = self.mantissa.trailing_zeros() as i32;
            self.mantissa >>= tz;
            self.exponent += tz;
        }
    }
}

impl Add for Dyadic {
    type Output = Dyadic;

    fn add(self, rhs: Dyadic) -> Dyadic {
        if self.mantissa == 0 {
            return rhs;
        }
        if rhs.mantissa == 0 {
            return self;
        }
        // Align to the smaller exponent; at most ~128 bits of shift are
        // meaningful for the workloads (denominators bounded by circuit
        // width), anything larger would overflow and panics in debug.
        let (lo, hi) = if self.exponent <= rhs.exponent {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let shift = (hi.exponent - lo.exponent) as u32;
        let hi_m = hi
            .mantissa
            .checked_shl(shift)
            .expect("dyadic addition overflow: exponent spread too large");
        Dyadic::new(lo.mantissa + hi_m, lo.exponent)
    }
}

impl AddAssign for Dyadic {
    fn add_assign(&mut self, rhs: Dyadic) {
        *self = *self + rhs;
    }
}

impl Sub for Dyadic {
    type Output = Dyadic;

    fn sub(self, rhs: Dyadic) -> Dyadic {
        self + (-rhs)
    }
}

impl SubAssign for Dyadic {
    fn sub_assign(&mut self, rhs: Dyadic) {
        *self = *self - rhs;
    }
}

impl Mul for Dyadic {
    type Output = Dyadic;

    fn mul(self, rhs: Dyadic) -> Dyadic {
        if self.mantissa == 0 || rhs.mantissa == 0 {
            return Dyadic::ZERO;
        }
        let m = self
            .mantissa
            .checked_mul(rhs.mantissa)
            .expect("dyadic multiplication overflow");
        // Product of two odd mantissas is odd: already normalized.
        Dyadic {
            mantissa: m,
            exponent: self.exponent + rhs.exponent,
        }
    }
}

impl MulAssign for Dyadic {
    fn mul_assign(&mut self, rhs: Dyadic) {
        *self = *self * rhs;
    }
}

impl Neg for Dyadic {
    type Output = Dyadic;

    fn neg(self) -> Dyadic {
        Dyadic {
            mantissa: -self.mantissa,
            exponent: self.exponent,
        }
    }
}

impl Sum for Dyadic {
    fn sum<I: Iterator<Item = Dyadic>>(iter: I) -> Dyadic {
        iter.fold(Dyadic::ZERO, |a, b| a + b)
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        let diff = *self - *other;
        diff.mantissa.cmp(&0)
    }
}

impl fmt::Display for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exponent >= 0 {
            match self.to_int() {
                Some(n) => write!(f, "{n}"),
                None => write!(f, "{}*2^{}", self.mantissa, self.exponent),
            }
        } else {
            write!(f, "{}/2^{}", self.mantissa, -self.exponent)
        }
    }
}

impl From<i64> for Dyadic {
    fn from(n: i64) -> Self {
        Dyadic::from_int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_canonical() {
        assert_eq!(Dyadic::new(8, 0), Dyadic::new(1, 3));
        assert_eq!(Dyadic::new(-6, -1), Dyadic::new(-3, 0));
        assert_eq!(Dyadic::new(0, 42), Dyadic::ZERO);
        assert_eq!(Dyadic::ZERO.exponent(), 0);
    }

    #[test]
    fn addition_aligns_exponents() {
        let a = Dyadic::new(1, -3); // 1/8
        let b = Dyadic::new(3, -2); // 3/4
        assert_eq!(a + b, Dyadic::new(7, -3)); // 7/8
        assert_eq!(b + a, Dyadic::new(7, -3));
    }

    #[test]
    fn addition_cancels_exactly() {
        let a = Dyadic::new(5, -7);
        assert!(!(a - a.half()).is_zero());
        assert!((a - a).is_zero());
        assert_eq!(a + (-a), Dyadic::ZERO);
    }

    #[test]
    fn multiplication_adds_exponents() {
        let a = Dyadic::new(3, -2);
        let b = Dyadic::new(5, 1);
        assert_eq!(a * b, Dyadic::new(15, -1));
        assert_eq!(a * Dyadic::ZERO, Dyadic::ZERO);
        assert_eq!(a * Dyadic::ONE, a);
    }

    #[test]
    fn ordering_matches_value() {
        let vals = [
            Dyadic::MINUS_ONE,
            Dyadic::new(-1, -1),
            Dyadic::ZERO,
            Dyadic::new(1, -2),
            Dyadic::new(1, -1),
            Dyadic::ONE,
            Dyadic::from_int(2),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dyadic::from_int(5).to_string(), "5");
        assert_eq!(Dyadic::new(3, -2).to_string(), "3/2^2");
        assert_eq!(Dyadic::new(-1, -1).to_string(), "-1/2^1");
        assert_eq!(Dyadic::ZERO.to_string(), "0");
    }

    #[test]
    fn int_round_trip() {
        for n in [-17i64, -1, 0, 1, 2, 1023] {
            assert_eq!(Dyadic::from_int(n).to_int(), Some(n as i128));
        }
        assert_eq!(Dyadic::new(1, -1).to_int(), None);
    }

    #[test]
    fn half_double_scale() {
        let a = Dyadic::new(3, 4);
        assert_eq!(a.half().double(), a);
        assert_eq!(a.scale2(-4), Dyadic::new(3, 0));
        assert_eq!(Dyadic::ZERO.half(), Dyadic::ZERO);
        assert_eq!(Dyadic::ZERO.double(), Dyadic::ZERO);
    }

    #[test]
    fn sum_iterator() {
        let total: Dyadic = (0..8).map(|_| Dyadic::new(1, -3)).sum();
        assert_eq!(total, Dyadic::ONE);
    }
}
